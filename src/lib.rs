//! FinSQL reproduction workspace root.
//!
//! This crate only exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the functionality
//! lives in the member crates, re-exported here for convenience.

#![forbid(unsafe_code)]

pub use augment;
pub use bull;
pub use crossenc;
pub use finsql_core;
pub use simllm;
pub use sqlengine;
pub use sqlkit;
pub use textenc;
