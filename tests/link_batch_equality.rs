//! Batched-linking equivalence: `CrossEncoder::link_batch` over the
//! precomputed [`SchemaFeatureMatrix`] must reproduce the per-question
//! `link` output *bitwise* — same element order and bit-identical f32
//! scores — for arbitrary question subsets, at every batch size, in both
//! per-question inference modes, on every database's trained linker.
//!
//! Bitwise equality (not approximate) is the property the whole serving
//! layer leans on: the ranking feeds the projection key that lets
//! questions share prompt schemas, and the answer cache assumes a
//! batched answer is *the* answer.

use bull::{DbId, Lang, Split};
use crossenc::{InferenceMode, LinkedSchema};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use proptest::prelude::*;
use simllm::profiles::LLAMA2_13B;
use std::sync::OnceLock;

fn dataset() -> &'static bull::BullDataset {
    static DS: OnceLock<bull::BullDataset> = OnceLock::new();
    DS.get_or_init(|| bull::build(bull::DEFAULT_SEED))
}

fn system() -> &'static FinSql {
    static SYS: OnceLock<FinSql> = OnceLock::new();
    SYS.get_or_init(|| FinSql::build(dataset(), &LLAMA2_13B, FinSqlConfig::standard(Lang::En)))
}

/// Asserts two linked schemas are bitwise equal: identical index order
/// and identical f32 score bits at every rank.
fn assert_bitwise_eq(a: &LinkedSchema, b: &LinkedSchema, q: &str) {
    let key = |v: &[(usize, f32)]| -> Vec<(usize, u32)> {
        v.iter().map(|(i, s)| (*i, s.to_bits())).collect()
    };
    assert_eq!(key(&a.tables), key(&b.tables), "table ranking diverged on {q:?}");
    assert_eq!(a.columns.len(), b.columns.len());
    for (ca, cb) in a.columns.iter().zip(&b.columns) {
        assert_eq!(key(ca), key(cb), "column ranking diverged on {q:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `link_batch` equals per-question `link` bitwise, on arbitrary
    /// question subsets (duplicates included) of every database, against
    /// both the serial and the parallel per-question reference.
    #[test]
    fn link_batch_matches_link_bitwise(
        indices in proptest::collection::vec(0usize..200, 1..16),
        db_pick in 0usize..3,
    ) {
        let db = DbId::ALL[db_pick];
        let sys = system();
        let rt = sys.runtime(db);
        let dev = dataset().examples_for(db, Split::Dev);
        let questions: Vec<&str> =
            indices.iter().map(|i| dev[i % dev.len()].question(Lang::En)).collect();
        let batched = sys.linker.link_batch(&questions, &rt.link_matrix);
        prop_assert_eq!(batched.len(), questions.len());
        for (q, got) in questions.iter().zip(&batched) {
            for mode in [InferenceMode::Serial, InferenceMode::Parallel] {
                let reference = sys.linker.link(q, &rt.views, mode);
                assert_bitwise_eq(got, &reference, q);
            }
        }
    }

    /// Batch shape is invisible: chunking the same question list at any
    /// size produces the same linked schemas as one whole-list sweep.
    #[test]
    fn link_batch_is_invariant_to_batch_size(chunk in 1usize..20) {
        let db = DbId::Fund;
        let sys = system();
        let rt = sys.runtime(db);
        let dev = dataset().examples_for(db, Split::Dev);
        let questions: Vec<&str> = dev.iter().take(24).map(|e| e.question(Lang::En)).collect();
        let whole = sys.linker.link_batch(&questions, &rt.link_matrix);
        let mut chunked = Vec::with_capacity(questions.len());
        for c in questions.chunks(chunk) {
            chunked.extend(sys.linker.link_batch(c, &rt.link_matrix));
        }
        prop_assert_eq!(whole.len(), chunked.len());
        for ((q, a), b) in questions.iter().zip(&whole).zip(&chunked) {
            assert_bitwise_eq(a, b, q);
        }
    }
}

/// The runtime's cached matrix is interchangeable with a freshly-built
/// one — building is deterministic, so caching it in [`DbRuntime`] can
/// never drift from the views it was built over.
#[test]
fn cached_matrix_equals_freshly_built_matrix() {
    let sys = system();
    for db in DbId::ALL {
        let rt = sys.runtime(db);
        let fresh = sys.linker.schema_matrix(&rt.views);
        let dev = dataset().examples_for(db, Split::Dev);
        let questions: Vec<&str> = dev.iter().take(16).map(|e| e.question(Lang::En)).collect();
        let via_cached = sys.linker.link_batch(&questions, &rt.link_matrix);
        let via_fresh = sys.linker.link_batch(&questions, &fresh);
        for ((q, a), b) in questions.iter().zip(&via_cached).zip(&via_fresh) {
            assert_bitwise_eq(a, b, q);
        }
    }
}
