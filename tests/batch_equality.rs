//! Batched-engine equivalence tests: the batched answer path must be
//! byte-identical to the per-question path — for arbitrary question
//! subsets, at every batch size, through the coalescing scheduler, and
//! through the cache — and the interleaved micro-batched evaluation must
//! reproduce the serial per-database EX counts exactly at every worker
//! count and batch size.

use bull::{DbId, Lang, Split};
use finsql_core::batch::{BatchConfig, BatchScheduler};
use finsql_core::cache::AnswerCache;
use finsql_core::eval::{evaluate_ex_all_interleaved_batched, evaluate_ex_all_limit};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use proptest::prelude::*;
use simllm::profiles::LLAMA2_13B;
use std::sync::{Arc, OnceLock};

fn dataset() -> &'static bull::BullDataset {
    static DS: OnceLock<bull::BullDataset> = OnceLock::new();
    DS.get_or_init(|| bull::build(bull::DEFAULT_SEED))
}

fn system() -> &'static Arc<FinSql> {
    static SYS: OnceLock<Arc<FinSql>> = OnceLock::new();
    SYS.get_or_init(|| {
        Arc::new(FinSql::build(dataset(), &LLAMA2_13B, FinSqlConfig::standard(Lang::En)))
    })
}

/// The per-question reference answer.
fn serial_answer(db: DbId, q: &str) -> String {
    let sys = system();
    let mut rng = sys.question_rng(db, q);
    sys.answer(db, q, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `answer_batch` equals `answer` byte for byte on arbitrary question
    /// subsets (duplicates included) of every database.
    #[test]
    fn answer_batch_matches_answer_on_arbitrary_subsets(
        indices in proptest::collection::vec(0usize..200, 1..12),
        db_pick in 0usize..3,
    ) {
        let db = DbId::ALL[db_pick];
        let dev = dataset().examples_for(db, Split::Dev);
        let questions: Vec<&str> =
            indices.iter().map(|i| dev[i % dev.len()].question(Lang::En)).collect();
        let batched = system().answer_batch(db, &questions);
        prop_assert_eq!(batched.len(), questions.len());
        for (q, a) in questions.iter().zip(&batched) {
            prop_assert_eq!(&serial_answer(db, q), a, "diverged on {:?}", q);
        }
    }

    /// `answer_batch_mixed` equals `answer` byte for byte on arbitrary
    /// interleavings of databases — the grouping, per-db sub-batching and
    /// scatter-back are invisible to every request, with and without a
    /// cache in front.
    #[test]
    fn mixed_db_batches_match_serial_answers(
        picks in proptest::collection::vec((0usize..3, 0usize..200), 1..12),
        cached in any::<bool>(),
    ) {
        let requests: Vec<(DbId, &str)> = picks
            .iter()
            .map(|&(dbi, qi)| {
                let db = DbId::ALL[dbi];
                let dev = dataset().examples_for(db, Split::Dev);
                (db, dev[qi % dev.len()].question(Lang::En))
            })
            .collect();
        let cache = cached.then(AnswerCache::unbounded);
        let got = system().answer_batch_mixed(cache.as_ref(), &requests, None);
        prop_assert_eq!(got.len(), requests.len());
        for ((db, q), a) in requests.iter().zip(&got) {
            let want = serial_answer(*db, q);
            prop_assert_eq!(want.as_str(), &**a, "diverged on {:?} {:?}", db, q);
        }
    }
}

/// Fixed batch sizes spanning degenerate (1), underfull, prime-ragged and
/// whole-set (64) chunkings all reproduce the reference answers, as does
/// the cache-first path both cold and warm.
#[test]
fn every_batch_size_and_the_cached_path_are_exact() {
    let db = DbId::Stock;
    let dev = dataset().examples_for(db, Split::Dev);
    let questions: Vec<&str> = dev.iter().take(64).map(|e| e.question(Lang::En)).collect();
    let reference: Vec<String> = questions.iter().map(|q| serial_answer(db, q)).collect();
    for &bs in &[1usize, 3, 7, 64] {
        let mut got = Vec::with_capacity(questions.len());
        for chunk in questions.chunks(bs) {
            got.extend(system().answer_batch(db, chunk));
        }
        assert_eq!(got, reference, "batch size {bs} diverged");
    }
    let cache = AnswerCache::unbounded();
    for pass in ["cold", "warm"] {
        let mut got: Vec<std::sync::Arc<str>> = Vec::with_capacity(questions.len());
        for chunk in questions.chunks(7) {
            got.extend(system().answer_batch_cached(&cache, db, chunk, None));
        }
        let got: Vec<&str> = got.iter().map(|a| &**a).collect();
        let want: Vec<&str> = reference.iter().map(String::as_str).collect();
        assert_eq!(got, want, "{pass} cached batches diverged");
    }
    assert!(cache.stats().hits >= questions.len() as u64, "warm pass must hit the cache");
}

/// The scheduler front-end — concurrent submitters, coalesced micro-
/// batches, cache-first routing — returns exactly the reference answer
/// for every request, cold and warm, at several worker counts.
#[test]
fn scheduler_coalescing_is_invisible_to_callers() {
    let db = DbId::Fund;
    let dev = dataset().examples_for(db, Split::Dev);
    let questions: Vec<&str> = dev.iter().take(32).map(|e| e.question(Lang::En)).collect();
    let reference: Vec<String> = questions.iter().map(|q| serial_answer(db, q)).collect();
    for workers in [1usize, 3] {
        let cache = Arc::new(AnswerCache::unbounded());
        let scheduler = BatchScheduler::new(
            Arc::clone(system()),
            Some(Arc::clone(&cache)),
            None,
            BatchConfig { max_batch: 7, workers, ..BatchConfig::default() },
        );
        for pass in ["cold", "warm"] {
            // Submit from several threads at once so the workers actually
            // get concurrent requests to coalesce.
            let got: Vec<Arc<str>> = std::thread::scope(|scope| {
                let handles: Vec<_> = questions
                    .iter()
                    .map(|q| scope.spawn(|| scheduler.answer(db, q)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("submitter panicked")).collect()
            });
            let got: Vec<&str> = got.iter().map(|a| &**a).collect();
            let want: Vec<&str> = reference.iter().map(String::as_str).collect();
            assert_eq!(got, want, "{workers}-worker scheduler diverged on {pass} pass");
        }
        assert!(
            cache.stats().hits >= questions.len() as u64,
            "warm pass must be served from the cache"
        );
    }
}

/// The scheduler coalesces requests across databases into one micro-
/// batch; every request must still get its reference answer when the
/// submitters interleave all three databases at once, and the warm pass
/// must be served from the cache.
#[test]
fn mixed_db_scheduler_traffic_is_exact() {
    // Round-robin the databases so neighbouring queue entries almost
    // always differ in db — the worst case for coalescing.
    let requests: Vec<(DbId, &str)> = (0..36)
        .map(|i| {
            let db = DbId::ALL[i % DbId::ALL.len()];
            let dev = dataset().examples_for(db, Split::Dev);
            (db, dev[i % dev.len()].question(Lang::En))
        })
        .collect();
    let reference: Vec<String> =
        requests.iter().map(|(db, q)| serial_answer(*db, q)).collect();
    let cache = Arc::new(AnswerCache::unbounded());
    let scheduler = BatchScheduler::new(
        Arc::clone(system()),
        Some(Arc::clone(&cache)),
        None,
        BatchConfig { max_batch: 8, workers: 2, ..BatchConfig::default() },
    );
    for pass in ["cold", "warm"] {
        let got: Vec<Arc<str>> = std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .iter()
                .map(|(db, q)| scope.spawn(|| scheduler.answer(*db, q)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("submitter panicked")).collect()
        });
        let got: Vec<&str> = got.iter().map(|a| &**a).collect();
        let want: Vec<&str> = reference.iter().map(String::as_str).collect();
        assert_eq!(got, want, "mixed-db scheduler diverged on {pass} pass");
    }
    assert!(
        cache.stats().hits >= requests.len() as u64,
        "warm pass must be served from the cache"
    );
}

/// The interleaved micro-batched evaluation reproduces the serial
/// per-database EX counts exactly — the counts PR 2's evaluation path
/// records — at every worker count and batch size combination.
#[test]
fn interleaved_batched_eval_reproduces_serial_counts() {
    const LIMIT: usize = 20;
    let serial = evaluate_ex_all_limit(dataset(), Lang::En, Some(LIMIT), |db, q| {
        serial_answer(db, q)
    });
    for workers in [1usize, 2, 3] {
        for batch in [1usize, 4, 16] {
            let batched = evaluate_ex_all_interleaved_batched(
                dataset(),
                Lang::En,
                workers,
                Some(LIMIT),
                batch,
                |db, qs| system().answer_batch(db, qs),
            );
            assert_eq!(
                serial, batched,
                "per-db counts diverged at workers={workers} batch={batch}"
            );
        }
    }
}
