//! Repository-level integration tests: the full FinSQL pipeline over the
//! real benchmark, exercising every crate together.

use bull::{DbId, Lang, Split};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use simllm::profiles::LLAMA2_13B;
use std::sync::OnceLock;

fn dataset() -> &'static bull::BullDataset {
    static DS: OnceLock<bull::BullDataset> = OnceLock::new();
    DS.get_or_init(|| bull::build(bull::DEFAULT_SEED))
}

fn system() -> &'static FinSql {
    static SYS: OnceLock<FinSql> = OnceLock::new();
    SYS.get_or_init(|| {
        FinSql::build(dataset(), &LLAMA2_13B, FinSqlConfig::standard(Lang::En))
    })
}

#[test]
fn benchmark_matches_paper_shape() {
    let ds = dataset();
    assert_eq!(ds.len(), 4966);
    assert_eq!(ds.db(DbId::Stock).catalog().tables.len(), 31);
    assert_eq!(ds.db(DbId::Fund).catalog().tables.len(), 28);
    assert_eq!(ds.db(DbId::Macro).catalog().tables.len(), 19);
}

#[test]
fn finsql_answers_execute() {
    let ds = dataset();
    let sys = system();
    // Every produced answer must at least be parseable SQL; the vast
    // majority must execute.
    let mut parses = 0;
    let mut executes = 0;
    let dev = ds.examples_for(DbId::Fund, Split::Dev);
    let sample = &dev[..50];
    for e in sample {
        let q = e.question(Lang::En);
        let mut rng = sys.question_rng(DbId::Fund, q);
        let sql = sys.answer(DbId::Fund, q, &mut rng);
        if sqlkit::parse_statement(&sql).is_ok() {
            parses += 1;
        }
        if sqlengine::run_sql(ds.db(DbId::Fund), &sql).is_ok() {
            executes += 1;
        }
    }
    assert_eq!(parses, sample.len(), "calibrated output must always parse");
    assert!(executes >= sample.len() * 9 / 10, "only {executes}/{} executed", sample.len());
}

#[test]
fn finsql_beats_the_unaugmented_uncalibrated_ablation() {
    let ds = dataset();
    let sys = system();
    let mut full = finsql_core::eval::EvalOutcome::default();
    for e in ds.examples_for(DbId::Fund, Split::Dev).iter().take(150) {
        let q = e.question(Lang::En);
        let mut rng = sys.question_rng(DbId::Fund, q);
        if sqlengine::execution_accuracy(ds.db(DbId::Fund), &sys.answer(DbId::Fund, q, &mut rng), &e.sql) {
            full.correct += 1;
        }
        full.total += 1;
    }
    // The headline system must clear 70% EX on this slice (paper: 82.2%
    // overall) — a regression guard for the whole pipeline.
    assert!(full.ex() > 0.70, "EX regressed: {:.3}", full.ex());
}

#[test]
fn answers_are_deterministic_per_question() {
    let ds = dataset();
    let sys = system();
    let e = ds.examples_for(DbId::Stock, Split::Dev)[0];
    let q = e.question(Lang::En);
    let a = {
        let mut rng = sys.question_rng(DbId::Stock, q);
        sys.answer(DbId::Stock, q, &mut rng)
    };
    let b = {
        let mut rng = sys.question_rng(DbId::Stock, q);
        sys.answer(DbId::Stock, q, &mut rng)
    };
    assert_eq!(a, b);
}

#[test]
fn question_rng_differs_between_databases() {
    use rand::RngCore;
    let sys = system();
    let q = "what is the total value";
    let mut fund = sys.question_rng(DbId::Fund, q);
    let mut stock = sys.question_rng(DbId::Stock, q);
    assert_ne!(
        (0..4).map(|_| fund.next_u64()).collect::<Vec<_>>(),
        (0..4).map(|_| stock.next_u64()).collect::<Vec<_>>(),
        "the same phrasing on two databases must draw independently"
    );
}

#[test]
fn parallel_eval_matches_serial_exactly() {
    let ds = dataset();
    let sys = system();
    let predict = |q: &str| {
        let mut rng = sys.question_rng(DbId::Fund, q);
        sys.answer(DbId::Fund, q, &mut rng)
    };
    let serial =
        finsql_core::eval::evaluate_ex_limit(ds, DbId::Fund, Lang::En, Some(40), predict);
    let parallel = finsql_core::eval::evaluate_ex_parallel(
        ds,
        DbId::Fund,
        Lang::En,
        4,
        Some(40),
        predict,
    );
    assert_eq!(serial, parallel, "sharded evaluation must reproduce the serial counts exactly");
    assert_eq!(parallel.total, 40);
}

#[test]
fn interleaved_eval_matches_serial_per_db_at_any_worker_count() {
    let ds = dataset();
    let sys = system();
    let predict = |db: DbId, q: &str| {
        let mut rng = sys.question_rng(db, q);
        sys.answer(db, q, &mut rng)
    };
    let serial = finsql_core::eval::evaluate_ex_all_limit(ds, Lang::En, Some(20), predict);
    for workers in [1, 3, 8] {
        let interleaved = finsql_core::eval::evaluate_ex_all_interleaved(
            ds,
            Lang::En,
            workers,
            Some(20),
            predict,
        );
        for db in DbId::ALL {
            assert_eq!(
                serial.outcome(db),
                interleaved.outcome(db),
                "per-database counts diverged on {db:?} with {workers} workers"
            );
        }
        assert_eq!(serial.pooled(), interleaved.pooled());
    }
}

#[test]
fn cached_eval_matches_uncached_and_warm_pass_hits() {
    use finsql_core::{Answerer, AnswerCache};
    let ds = dataset();
    let sys = system();
    let uncached = finsql_core::eval::evaluate_ex_all_interleaved(
        ds,
        Lang::En,
        4,
        Some(20),
        |db, q| {
            let mut rng = sys.question_rng(db, q);
            sys.answer(db, q, &mut rng)
        },
    );
    let cache = AnswerCache::unbounded();
    for pass in 0..2 {
        let cached = finsql_core::eval::evaluate_ex_all_interleaved(
            ds,
            Lang::En,
            4,
            Some(20),
            |db, q| sys.answer_cached(&cache, db, q, None),
        );
        for db in DbId::ALL {
            assert_eq!(
                uncached.outcome(db),
                cached.outcome(db),
                "cached pass {pass} diverged from uncached on {db:?}"
            );
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.entries, 60, "20 questions per database must be resident");
    assert!(stats.hits >= 60, "the warm pass must be served from the cache");
    assert_eq!(stats.evictions, 0);
}

mod cached_answer_property {
    use super::*;
    use finsql_core::{Answerer, AnswerCache};
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// One cache shared across all sampled cases, capped small so the
    /// draw sequence also exercises eviction and re-computation.
    fn shared_cache() -> &'static AnswerCache {
        static CACHE: OnceLock<AnswerCache> = OnceLock::new();
        CACHE.get_or_init(|| AnswerCache::with_capacity(32))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(
            if cfg!(debug_assertions) { 24 } else { 96 }
        ))]

        /// Arbitrary (database, dev-set index) draws: serving through the
        /// cache must never change an answer.
        #[test]
        fn cached_answer_equals_uncached_answer(
            db_idx in 0usize..3,
            ex_idx in 0usize..40,
        ) {
            let ds = dataset();
            let sys = system();
            let db = DbId::ALL[db_idx];
            let q = ds.examples_for(db, Split::Dev)[ex_idx].question(Lang::En);
            let fresh = {
                let mut rng = sys.question_rng(db, q);
                sys.answer(db, q, &mut rng)
            };
            let cached = sys.answer_cached(shared_cache(), db, q, None);
            prop_assert_eq!(fresh.as_str(), &*cached, "cache changed the answer for {:?}", db);
        }
    }
}

#[test]
fn metrics_count_questions_and_candidates() {
    let ds = dataset();
    let sys = system();
    let metrics = finsql_core::EvalMetrics::new();
    let n = 10;
    finsql_core::eval::evaluate_ex_parallel(ds, DbId::Fund, Lang::En, 2, Some(n), |q| {
        let mut rng = sys.question_rng(DbId::Fund, q);
        sys.answer_with_metrics(DbId::Fund, q, &mut rng, Some(&metrics))
    });
    let snap = metrics.snapshot();
    assert_eq!(snap.questions, n as u64);
    // Every question samples exactly n_candidates candidates.
    assert_eq!(snap.candidates, (n * sys.config.n_candidates) as u64);
    assert!(snap.link_time > std::time::Duration::ZERO);
    assert!(snap.gen_time > std::time::Duration::ZERO);
}

#[test]
fn plugin_roundtrip_through_hub_bytes() {
    let sys = system();
    let plugin = sys.hub.get("fund-en").expect("trained plugin registered");
    let bytes = plugin.to_bytes();
    let back = simllm::LoraPlugin::from_bytes(bytes).unwrap();
    assert_eq!(*plugin, back);
}

#[test]
fn calibration_repairs_noise_end_to_end() {
    let ds = dataset();
    let schema = ds.db(DbId::Stock).catalog();
    let gold = "SELECT chinameabbr FROM lc_stockarchives WHERE listexchange = 'Shanghai Stock Exchange'";
    // Corrupt heavily, then calibrate back.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let rates = simllm::noise::NoiseRates {
        typo: 0.6,
        double_eq: 0.6,
        drop_on: 0.0,
        misalign: 0.0,
        value: 0.0,
    };
    let candidates: Vec<String> =
        (0..7).map(|_| simllm::noise::corrupt(gold, &rates, 1.0, &mut rng)).collect();
    let fixed =
        finsql_core::calibrate(&candidates, schema, &finsql_core::CalibrationConfig::default())
            .unwrap();
    assert!(
        sqlengine::execution_accuracy(ds.db(DbId::Stock), &fixed, gold),
        "calibrated {fixed:?} must match gold"
    );
}
