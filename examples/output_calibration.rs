//! Output calibration (the paper's Algorithm 1) on exactly the invalid
//! SQL of the paper's Figure 12: `==` typos, hallucinated columns,
//! dangling JOIN ON, and wrong table-column bindings — repaired without
//! executing a single query.
//!
//! Run with: `cargo run --release --example output_calibration`

use finsql_core::{calibrate, CalibrationConfig};

fn main() {
    let schema = bull::DbId::Stock.schema();

    // Five LLM samples for one question; each broken differently.
    let candidates = vec![
        // 1. Syntactic mistakes: `==` and a JOIN without its key.
        "SELECT t1.chinameabbr FROM lc_sharestru AS t1 JOIN lc_exgindustry AS t2 ON WHERE t2.firstindustryname == 'Banks'".to_string(),
        // 2. Hallucinated column (the paper's `aquirementrium`).
        "SELECT t1.chinameabbr FROM lc_sharestru AS t1 JOIN lc_exgindustry AS t2 ON t1.compcode = t2.compcode WHERE t2.firstindustryname = 'Banks' AND t1.aquirementrium > 5".to_string(),
        // 3. Wrong table-column binding (chinameabbr is in lc_sharestru).
        "SELECT t2.chinameabbr FROM lc_sharestru AS t1 JOIN lc_exgindustry AS t2 ON t1.compcode = t2.compcode WHERE t1.firstindustryname = 'Banks'".to_string(),
        // 4. A clean sample.
        "SELECT t1.chinameabbr FROM lc_sharestru AS t1 JOIN lc_exgindustry AS t2 ON t1.compcode = t2.compcode WHERE t2.firstindustryname = 'Banks'".to_string(),
        // 5. Unparseable garbage.
        "SELECT FROM WHERE Banks".to_string(),
    ];

    println!("candidates:");
    for c in &candidates {
        println!("  {c}");
    }
    let fixed = calibrate(&candidates, &schema, &CalibrationConfig::default())
        .expect("at least one candidate is repairable");
    println!("\ncalibrated output:\n  {fixed}");
}
