//! Parallel schema linking: from a 420-column database to a concise
//! prompt schema in one parallel Cross-Encoder pass.
//!
//! Run with: `cargo run --release --example schema_linking`

use bull::{DbId, Lang};
use crossenc::model::SchemaViews;
use crossenc::InferenceMode;
use finsql_core::pipeline::train_linker;
use finsql_core::render_schema;
use textenc::approx_token_count;

fn main() {
    let ds = bull::build(bull::DEFAULT_SEED);
    println!("training the Cross-Encoder on the BULL training splits …");
    let linker = train_linker(&ds, Lang::En, &DbId::ALL, bull::DEFAULT_SEED);

    let schema = ds.db(DbId::Stock).catalog();
    let views = SchemaViews::build(schema, Lang::En);
    let question = "Which companies in the Banks industry have the 3 highest closing prices?";

    let t0 = std::time::Instant::now();
    let linked = linker.link(question, &views, InferenceMode::Parallel);
    let parallel_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let _ = linker.link(question, &views, InferenceMode::Serial);
    let serial_time = t1.elapsed();

    println!("\nQ: {question}");
    println!("top tables:");
    for (ti, score) in linked.tables.iter().take(4) {
        println!("  {:<22} {score:.3}", schema.tables[*ti].name);
    }
    let pruned = linked.project(schema, 4, 8);
    let full_tokens = approx_token_count(&render_schema(schema, Lang::En));
    let pruned_tokens = approx_token_count(&render_schema(&pruned, Lang::En));
    println!("\nprompt size: {full_tokens} tokens (full schema) → {pruned_tokens} tokens (linked)");
    println!("linking latency: serial {serial_time:?} vs parallel {parallel_time:?}");
}
