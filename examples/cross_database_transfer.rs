//! Few-shot cross-database transfer via LoRA weights merging (the
//! paper's §7.3 / Figure 13 scenario): a brand-new macro-economy
//! database with only 25 annotated examples, bootstrapped from the fund
//! and stock plugins.
//!
//! Run with: `cargo run --release --example cross_database_transfer`

use augment::{build_training_mix, AugmentationFlags};
use bull::{DbId, Lang, Split};
use finsql_core::peft::{
    fewshot_from_scratch, fewshot_with_merge, plugin_name, train_database_plugin,
};
use simllm::{EmbeddingModel, PluginHub, TrainOpts};

fn main() {
    let ds = bull::build(bull::DEFAULT_SEED);
    let base = EmbeddingModel::pretrained(bull::DEFAULT_SEED);
    let hub = PluginHub::new();

    // Train source-domain plugins (fund and stock) and park them in the
    // plugin hub.
    println!("training source plugins …");
    for db in [DbId::Fund, DbId::Stock] {
        let plugin = train_database_plugin(
            &base,
            &hub,
            &ds,
            db,
            Lang::En,
            AugmentationFlags::default(),
            TrainOpts::default(),
        );
        println!(
            "  {}: {} skeleton prototypes from {} pairs ({} KiB serialized)",
            plugin.name,
            plugin.prototypes.len(),
            plugin.n_examples,
            plugin.to_bytes().len() / 1024
        );
    }

    // A new low-resource database: only 25 macro shots.
    let k = 25;
    let pairs: Vec<(String, String)> = ds
        .examples_for(DbId::Macro, Split::Train)
        .into_iter()
        .take(k)
        .map(|e| (e.question(Lang::En).to_string(), e.sql.clone()))
        .collect();
    let shots = build_training_mix(ds.db(DbId::Macro), &pairs, Lang::En, AugmentationFlags::default());

    // From scratch vs merged-then-continued.
    let scratch = fewshot_from_scratch(&base, &hub, "macro-scratch", &shots, TrainOpts::default());
    let merged = fewshot_with_merge(
        &base,
        &hub,
        &[&plugin_name(DbId::Fund, Lang::En), &plugin_name(DbId::Stock, Lang::En)],
        "macro-merged",
        &shots,
        TrainOpts::default(),
    )
    .expect("source plugins are in the hub");
    println!(
        "\nscratch plugin knows {} skeletons; merged plugin knows {}",
        scratch.prototypes.len(),
        merged.prototypes.len()
    );
    println!("(the merged plugin transfers query structures learned on fund/stock)");
}
