//! Quickstart: build the BULL benchmark, train a FinSQL system, and
//! translate a few questions end to end.
//!
//! Run with: `cargo run --release --example quickstart`

use bull::{DbId, Lang, Split};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use simllm::profiles::LLAMA2_13B;

fn main() {
    // 1. The benchmark: three financial databases plus 4,966 annotated
    //    question-SQL pairs, generated deterministically.
    println!("building BULL …");
    let ds = bull::build(bull::DEFAULT_SEED);
    println!(
        "  {} examples across {} databases\n",
        ds.len(),
        DbId::ALL.len()
    );

    // 2. Train the full FinSQL system: parallel Cross-Encoder schema
    //    linker + one LoRA plugin per database on the augmented mix.
    println!("training FinSQL (LLaMA2 profile, English register) …");
    let system = FinSql::build(&ds, &LLAMA2_13B, FinSqlConfig::standard(Lang::En));
    println!("  plugins in hub: {:?}\n", system.hub.names());

    // 3. Answer dev questions.
    for e in ds.examples_for(DbId::Fund, Split::Dev).iter().take(5) {
        let q = e.question(Lang::En);
        let mut rng = system.question_rng(DbId::Fund, q);
        let sql = system.answer(DbId::Fund, q, &mut rng);
        let ok = sqlengine::execution_accuracy(ds.db(DbId::Fund), &sql, &e.sql);
        println!("Q: {q}");
        println!("   predicted: {sql}");
        println!("   gold:      {}", e.sql);
        println!("   execution match: {ok}\n");
    }
}
