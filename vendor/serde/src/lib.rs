//! Offline vendored `serde` facade.
//!
//! The workspace only uses serde as a derive decoration (no serde_json or
//! other format crate is in the graph), so this facade provides the two
//! trait names for imports plus no-op derive macros behind the same
//! `derive` feature flag as upstream.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
