//! Offline vendored subset of the `parking_lot` API.
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's
//! ergonomics: `lock()`/`read()`/`write()` return guards directly and a
//! poisoned lock (a panic while held) is transparently recovered, since
//! parking_lot has no poisoning.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose `read`/`write` never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn default_is_usable() {
        let l: RwLock<Vec<u32>> = RwLock::default();
        assert!(l.read().is_empty());
    }
}
