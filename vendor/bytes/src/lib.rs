//! Offline vendored subset of the `bytes` crate.
//!
//! Provides `Bytes` (a cheaply cloneable, sliceable shared byte buffer),
//! `BytesMut` (an append buffer), and the `Buf`/`BufMut` traits with the
//! big-endian accessors the plugin codec uses. Semantics mirror the real
//! crate for the covered surface, including `get_*` panicking on
//! underflow (callers guard with `remaining()`).

use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write-side growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// A shared, immutable byte buffer; clones and slices are O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds: {lo}..{hi} of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds: {at} of {}", self.len());
        let head = self.slice(..at);
        self.start += at;
        head
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end: {cnt} of {}", self.len());
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable write buffer, frozen into `Bytes` when complete.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated buffer into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f32(1.5);
        w.put_slice(b"tail");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4 + 4);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.to_vec(), b"tail");
    }

    #[test]
    fn slice_and_split_share_data() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(mid.to_vec(), vec![2, 3, 4]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(head.to_vec(), vec![0, 1]);
        assert_eq!(rest.to_vec(), vec![2, 3, 4, 5]);
        assert_eq!(b.len(), 6, "original untouched");
    }

    #[test]
    fn big_endian_layout_matches_bytes_crate() {
        let mut w = BytesMut::new();
        w.put_u32(1);
        assert_eq!(w.freeze().to_vec(), vec![0, 0, 0, 1]);
    }

    #[test]
    #[should_panic]
    fn get_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u32();
    }
}
