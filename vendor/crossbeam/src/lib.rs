//! Offline vendored subset of the `crossbeam` API.
//!
//! Only the scoped-thread entry point is provided, implemented on top of
//! `std::thread::scope` (stabilised in Rust 1.63, long after crossbeam's
//! scoped threads were designed). The call-site API is identical:
//! `crossbeam::scope(|s| { s.spawn(|_| ...); }).expect("...")`.

use std::any::Any;

pub mod thread {
    use super::Any;

    /// A scope handle passed to the closure and to every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a scope; every thread spawned in the scope is joined
    /// before `scope` returns. Unlike crossbeam, a panicking child thread
    /// propagates its panic here (after all threads joined) instead of
    /// surfacing as `Err` — callers `.expect()` the result either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_see_stack_data_and_join() {
        let data = [1, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                hits.fetch_add(1, Ordering::Relaxed);
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn join_returns_thread_result() {
        let out = super::scope(|s| s.spawn(|_| 6 * 7).join().unwrap()).unwrap();
        assert_eq!(out, 42);
    }
}
