//! Runner configuration consumed by the `proptest!` macro.

/// Controls how many cases each property test runs. `Copy` so the macro's
/// move-closure body can capture it while the harness keeps using it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}
