//! Offline vendored subset of the `proptest` API.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of proptest its property tests use: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_filter`/`prop_recursive`, tuple/range/
//! string-pattern strategies, `collection::vec`, `option::of`, `Just`,
//! `any::<bool>()`, `prop_oneof!`, and the `proptest!` test macro with
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (reproducible across runs), and there is **no shrinking**
//! — a failing case reports its index and message directly. String
//! strategies support the regex subset the tests use: character classes
//! with ranges, `.`, and `{m,n}`/`{n}` repetition.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, 1..25)`: vectors of 1..25 elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Some` three times out of four.
    pub struct OptionStrategy<S>(S);

    /// `of(inner)`: `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for types with a canonical strategy.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy of `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Fair coin.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $name:ident),* $(,)?) => {$(
            /// Full-range integer strategy.
            pub struct $name;
            impl Strategy for $name {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = $name;
                fn arbitrary() -> $name { $name }
            }
        )*};
    }

    impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
                        i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64);
}

mod string;

pub mod prelude {
    //! The glob import the tests use.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

use rand::SeedableRng;

/// Deterministic per-(test, case) generator. Public for the macro only.
#[doc(hidden)]
pub fn __new_case_rng(test_path: &str, case: u32) -> rand::rngs::StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    rand::rngs::StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::__new_case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            return ::std::result::Result::Ok(());
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!("proptest case {}/{} failed: {}", __case, __config.cases, __msg);
                    }
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body; failure reports the case instead of
/// panicking at the assertion site.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "{}: `{:?}` != `{:?}`", ::std::format!($($fmt)+), __l, __r));
        }
    }};
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
