//! Regex-subset sampler backing `&str` strategies.
//!
//! Supported syntax: literal characters, `.` (printable ASCII), character
//! classes `[...]` with ranges and literal members, and `{n}` / `{m,n}`
//! quantifiers on the preceding atom. This covers every pattern in the
//! workspace's property tests; anything else panics loudly.

use rand::rngs::StdRng;
use rand::Rng;

enum Atom {
    /// Choice among explicit characters.
    Class(Vec<char>),
    /// Any printable ASCII character (`.`).
    AnyPrintable,
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

pub(crate) fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let reps = rng.gen_range(piece.min..=piece.max);
        for _ in 0..reps {
            out.push(match &piece.atom {
                Atom::Class(chars) => chars[rng.gen_range(0..chars.len())],
                Atom::AnyPrintable => char::from(rng.gen_range(0x20u8..=0x7e)),
            });
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let members = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Class(members)
            }
            '.' => {
                i += 1;
                Atom::AnyPrintable
            }
            '\\' => {
                i += 2;
                Atom::Class(vec![*chars
                    .get(i - 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))])
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().unwrap_or_else(|_| panic!("bad bound in {pattern:?}")),
                    hi.parse().unwrap_or_else(|_| panic!("bad bound in {pattern:?}")),
                ),
                None => {
                    let n = body.parse().unwrap_or_else(|_| panic!("bad bound in {pattern:?}"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    let mut members = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body[i] == '\\' {
            i += 1;
            members.push(*body.get(i).unwrap_or_else(|| panic!("dangling escape in {pattern:?}")));
            i += 1;
        } else if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range in class of pattern {pattern:?}");
            members.extend((lo..=hi).filter(|c| c.is_ascii() || lo == hi));
            i += 3;
        } else {
            members.push(body[i]);
            i += 1;
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn identifier_pattern_respects_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_pattern("[a-z][a-z0-9_]{0,10}", &mut r);
            assert!((1..=11).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn class_with_literals_and_space() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_pattern("[a-zA-Z0-9 ']{0,12}", &mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '\''));
        }
    }

    #[test]
    fn dot_is_printable_ascii() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_pattern(".{0,40}", &mut r);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| ('\u{20}'..='\u{7e}').contains(&c)));
        }
    }

    #[test]
    fn exact_count_and_bare_class() {
        let mut r = rng();
        let s = sample_pattern("[a-c]", &mut r);
        assert_eq!(s.len(), 1);
        let t = sample_pattern("x{3}", &mut r);
        assert_eq!(t, "xxx");
    }

    #[test]
    fn nonzero_minimum_is_respected() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_pattern("[a-z%]{1,8}", &mut r);
            assert!((1..=8).contains(&s.len()));
        }
    }
}
