//! The `Strategy` trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for producing values of one type from a seeded generator.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms produced values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate (resampling up to a bound).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, f }
    }

    /// Builds a recursive strategy: `f` maps the strategy for depth `d`
    /// to the strategy for depth `d + 1`; each level falls back to the
    /// leaf half the time, bounding expected depth. `size`/`branch` are
    /// accepted for upstream signature compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union::new(vec![leaf.clone(), f(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_filter` adapter: resamples until the predicate passes.
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected 1000 consecutive samples", self.reason);
    }
}

// Ranges are strategies over their element type.
impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

// String literals are regex-subset strategies producing `String`.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn map_filter_compose() {
        let s = (0i64..100).prop_map(|v| v * 2).prop_filter("even half", |v| *v >= 100);
        let mut r = rng();
        for _ in 0..200 {
            let v = s.sample(&mut r);
            assert!((100..200).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut r = rng();
        let seen: std::collections::HashSet<u8> = (0..100).map(|_| u.sample(&mut r)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn recursion_terminates_and_varies_depth() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i64..10).prop_map(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut r = rng();
        let depths: Vec<usize> = (0..200).map(|_| depth(&s.sample(&mut r))).collect();
        assert!(depths.iter().all(|d| *d <= 4));
        assert!(depths.contains(&0) && depths.iter().any(|d| *d > 0));
    }

    #[test]
    fn tuples_sample_elementwise() {
        let s = (0u32..5, Just("x"), -1.0f64..1.0);
        let mut r = rng();
        let (a, b, c) = s.sample(&mut r);
        assert!(a < 5 && b == "x" && (-1.0..1.0).contains(&c));
    }
}
