//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small slice of `rand` it actually uses: a seedable deterministic
//! generator (`rngs::StdRng`), the `Rng`/`RngCore`/`SeedableRng` traits
//! with `gen_range`/`gen_bool`, and `seq::SliceRandom`.
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64. The upstream
//! crate documents `StdRng` streams as unstable across versions, and
//! nothing in the workspace depends on exact draw values — only on
//! determinism for a fixed seed, which this implementation provides.

/// The core of every generator: uniformly distributed raw words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range. The output type
    /// is a free parameter (as upstream) so the caller's expected type can
    /// drive inference of the range's element type.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        // 53-bit uniform in [0, 1).
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(word: u64) -> f32 {
    ((word >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }
}

/// Range sampling, the subset of `rand`'s `SampleRange`/`SampleUniform`
/// machinery the workspace uses. Implemented for half-open and inclusive
/// ranges over the primitive integer and float types.
pub trait SampleRange<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Types uniformly sampleable from a range. The blanket `SampleRange`
/// impls below are generic over this trait (one impl per range shape, as
/// upstream) so type inference can unify an integer literal's type with
/// `gen_range`'s output type before integer fallback kicks in.
pub trait SampleUniform: Sized {
    fn sample_half_open<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Unbiased integer sampling in `[0, bound)` by rejection.
fn uniform_u64<G: RngCore>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty => $unsigned:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore>(rng: &mut G, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                let off = uniform_u64(rng, span);
                (lo as $unsigned).wrapping_add(off as $unsigned) as $t
            }
            fn sample_inclusive<G: RngCore>(rng: &mut G, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64(rng, span + 1);
                (lo as $unsigned).wrapping_add(off as $unsigned) as $t
            }
        }
    )*};
}

impl_int_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleUniform for f64 {
    fn sample_half_open<G: RngCore>(rng: &mut G, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive<G: RngCore>(rng: &mut G, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<G: RngCore>(rng: &mut G, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
    fn sample_inclusive<G: RngCore>(rng: &mut G, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers: Fisher–Yates shuffle and uniform choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((65_000..75_000).contains(&hits), "p=0.7 gave {hits}/100000");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should not stay in place");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
