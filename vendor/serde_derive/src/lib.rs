//! Offline vendored no-op `serde` derive macros.
//!
//! The workspace decorates types with `#[derive(Serialize, Deserialize)]`
//! for forward compatibility but never invokes serde serialisation (the
//! plugin codec is hand-rolled over `bytes`). With no crates.io access,
//! these derives expand to nothing: the annotation stays legal and costs
//! nothing. If real serialisation is ever needed, swap the vendored
//! `serde`/`serde_derive` pair for the upstream crates.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
