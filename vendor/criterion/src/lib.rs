//! Offline vendored subset of the `criterion` bench API.
//!
//! The build container has no crates.io access, so this crate provides the
//! surface the workspace's `harness = false` benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with a plain wall-clock measurement loop instead of upstream's
//! statistical machinery. Each benchmark warms up briefly, then reports
//! the mean iteration time over a fixed measurement window.
//!
//! `--bench` (passed by `cargo bench`) is accepted and ignored; any other
//! CLI argument is treated as a substring filter on benchmark names, like
//! upstream.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_secs(1);

/// Entry point handed to each `criterion_group!` target.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&self.filter, name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// A named set of benchmarks reported under a common prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&self.parent.filter, &full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&self.parent.filter, &full, |b| f(b, input));
        self
    }

    /// Ends the group. Reporting is immediate, so this is a no-op kept for
    /// API compatibility.
    pub fn finish(self) {}
}

/// A benchmark label of the form `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`: warm up for a fixed window, then time batches
    /// until the measurement window elapses and record the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        let mut batch = 1u64;
        while warm_start.elapsed() < WARMUP {
            for _ in 0..batch {
                std_black_box(routine());
            }
            batch = (batch * 2).min(1 << 20);
        }
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            for _ in 0..batch {
                std_black_box(routine());
            }
            iters += batch;
        }
        let total = start.elapsed();
        self.mean = Some(total / u32::try_from(iters.max(1)).unwrap_or(u32::MAX));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(filter: &Option<String>, name: &str, mut f: F) {
    if let Some(needle) = filter {
        if !name.contains(needle.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher { mean: None };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("{name:<40} time: [{}]", fmt_duration(mean)),
        None => println!("{name:<40} time: [no iter() call]"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    let mut out = String::new();
    if nanos >= 1_000_000_000 {
        let _ = write!(out, "{:.4} s", nanos as f64 / 1e9);
    } else if nanos >= 1_000_000 {
        let _ = write!(out, "{:.4} ms", nanos as f64 / 1e6);
    } else if nanos >= 1_000 {
        let _ = write!(out, "{:.4} µs", nanos as f64 / 1e3);
    } else {
        let _ = write!(out, "{nanos} ns");
    }
    out
}

/// Binds a group name to a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_parameter() {
        assert_eq!(BenchmarkId::new("serial", 31).0, "serial/31");
    }

    #[test]
    fn duration_formatting_picks_unit() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.5000 ms");
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
