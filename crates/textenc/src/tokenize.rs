//! Word-level tokenisation and LLM-token estimation.

/// Splits text into lower-cased word tokens: alphanumeric runs, with
/// non-ASCII (e.g. CJK) characters emitted as single-character tokens —
/// the standard character-granularity treatment for Chinese text.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            cur.push(ch.to_ascii_lowercase());
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if !ch.is_whitespace() && !ch.is_ascii_punctuation() {
                // CJK and other non-ASCII symbols: one token per char.
                out.push(ch.to_string());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Splits a database identifier into word parts: `lc_sharestru` →
/// `["lc", "sharestru"]`, `tradingDay` → `["trading", "day"]`. This is the
/// mechanism behind the Token-Preprocessing baseline, which inserts spaces
/// to separate words within schema tokens.
pub fn tokenize_identifier(ident: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = ident.chars().collect();
    for (i, &ch) in chars.iter().enumerate() {
        if ch == '_' || ch == '-' || ch == '.' {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            continue;
        }
        // camelCase boundary.
        if ch.is_ascii_uppercase()
            && i > 0
            && chars[i - 1].is_ascii_lowercase()
            && !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        cur.push(ch.to_ascii_lowercase());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Approximates the LLM token count of a text. The paper notes ~1000
/// tokens ≈ 700 English words for the GPT tokenizers; we apply that ratio
/// to word tokens, and count each CJK character as one token (roughly what
/// GPT tokenizers do for Chinese).
pub fn approx_token_count(text: &str) -> usize {
    let mut words = 0usize;
    let mut cjk = 0usize;
    for t in tokenize(text) {
        if t.chars().next().is_some_and(|c| c as u32 > 127) {
            cjk += 1;
        } else {
            words += 1;
        }
    }
    // 1000 tokens per 700 words → 10/7 tokens per word.
    (words * 10).div_ceil(7) + cjk
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_words() {
        assert_eq!(tokenize("Show the NAV of fund 'Alpha'"), vec![
            "show", "the", "nav", "of", "fund", "alpha"
        ]);
    }

    #[test]
    fn tokenizes_cjk_per_char() {
        assert_eq!(tokenize("基金 nav"), vec!["基", "金", "nav"]);
    }

    #[test]
    fn identifier_splitting() {
        assert_eq!(tokenize_identifier("lc_sharestru"), vec!["lc", "sharestru"]);
        assert_eq!(tokenize_identifier("tradingDay"), vec!["trading", "day"]);
        assert_eq!(tokenize_identifier("NAV"), vec!["nav"]);
        assert_eq!(tokenize_identifier("first_industry_name"), vec!["first", "industry", "name"]);
    }

    #[test]
    fn token_count_matches_paper_ratio() {
        // 700 words should be ~1000 tokens.
        let text = vec!["word"; 700].join(" ");
        let n = approx_token_count(&text);
        assert!((990..=1010).contains(&n), "got {n}");
    }

    #[test]
    fn empty_text_has_zero_tokens() {
        assert_eq!(approx_token_count(""), 0);
        assert!(tokenize("").is_empty());
    }
}
