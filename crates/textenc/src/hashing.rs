//! Feature hashing: sparse bag-of-features vectors over a fixed-size
//! hashed space, the input representation for both learned models.

/// A sparse feature vector: sorted `(index, weight)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u32, f32)>,
}

impl SparseVec {
    /// Builds a vector from unsorted (possibly duplicated) entries,
    /// summing duplicates.
    pub fn from_entries(mut raw: Vec<(u32, f32)>) -> Self {
        raw.sort_unstable_by_key(|(i, _)| *i);
        let mut entries: Vec<(u32, f32)> = Vec::with_capacity(raw.len());
        for (i, w) in raw {
            match entries.last_mut() {
                Some((li, lw)) if *li == i => *lw += w,
                _ => entries.push((i, w)),
            }
        }
        SparseVec { entries }
    }

    /// The sorted (index, weight) pairs.
    pub fn entries(&self) -> &[(u32, f32)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Dot product with a dense weight vector.
    pub fn dot(&self, dense: &[f32]) -> f32 {
        self.entries.iter().map(|(i, w)| w * dense.get(*i as usize).copied().unwrap_or(0.0)).sum()
    }

    /// Dot product with another sparse vector.
    pub fn dot_sparse(&self, other: &SparseVec) -> f32 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f32>().sqrt()
    }

    /// L2-normalises in place (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for (_, w) in &mut self.entries {
                *w /= n;
            }
        }
    }
}

/// Hashes string features into a fixed-size index space (a power of two).
#[derive(Debug, Clone, Copy)]
pub struct FeatureHasher {
    mask: u32,
}

impl FeatureHasher {
    /// Creates a hasher with `2^bits` buckets. `bits` must be ≤ 30.
    pub fn new(bits: u32) -> Self {
        assert!((1..=30).contains(&bits), "bits must be in 1..=30");
        FeatureHasher { mask: (1u32 << bits) - 1 }
    }

    /// Dimensionality of the hashed space.
    pub fn dim(&self) -> usize {
        self.mask as usize + 1
    }

    /// Hash a single feature string to its bucket (FNV-1a).
    pub fn bucket(&self, feature: &str) -> u32 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in feature.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Fold high bits in before masking for better low-bit mixing.
        ((h ^ (h >> 32)) as u32) & self.mask
    }

    /// Hashes a bag of features into a sparse vector (unit weight each).
    pub fn hash_bag<I, S>(&self, features: I) -> SparseVec
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let raw: Vec<(u32, f32)> =
            features.into_iter().map(|f| (self.bucket(f.as_ref()), 1.0)).collect();
        SparseVec::from_entries(raw)
    }

    /// Hashes a bag of weighted features.
    pub fn hash_weighted<I, S>(&self, features: I) -> SparseVec
    where
        I: IntoIterator<Item = (S, f32)>,
        S: AsRef<str>,
    {
        let raw: Vec<(u32, f32)> =
            features.into_iter().map(|(f, w)| (self.bucket(f.as_ref()), w)).collect();
        SparseVec::from_entries(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn duplicates_sum() {
        let v = SparseVec::from_entries(vec![(3, 1.0), (1, 2.0), (3, 1.5)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 2.5)]);
    }

    #[test]
    fn dot_products() {
        let a = SparseVec::from_entries(vec![(0, 1.0), (2, 2.0)]);
        let b = SparseVec::from_entries(vec![(2, 3.0), (5, 1.0)]);
        assert_eq!(a.dot_sparse(&b), 6.0);
        let dense = vec![1.0, 0.0, 0.5];
        assert_eq!(a.dot(&dense), 2.0);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut v = SparseVec::from_entries(vec![(0, 3.0), (1, 4.0)]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        // Zero vector stays zero.
        let mut z = SparseVec::default();
        z.normalize();
        assert_eq!(z.nnz(), 0);
    }

    #[test]
    fn hasher_is_deterministic_and_bounded() {
        let h = FeatureHasher::new(10);
        assert_eq!(h.dim(), 1024);
        let b1 = h.bucket("nav");
        let b2 = h.bucket("nav");
        assert_eq!(b1, b2);
        assert!(b1 < 1024);
    }

    #[test]
    fn hash_bag_counts_repeats() {
        let h = FeatureHasher::new(12);
        let v = h.hash_bag(["a", "b", "a"]);
        let wa = v
            .entries()
            .iter()
            .find(|(i, _)| *i == h.bucket("a"))
            .map(|(_, w)| *w)
            .unwrap();
        assert_eq!(wa, 2.0);
    }

    proptest! {
        #[test]
        fn dot_sparse_is_symmetric(
            a in proptest::collection::vec((0u32..64, -2.0f32..2.0), 0..20),
            b in proptest::collection::vec((0u32..64, -2.0f32..2.0), 0..20),
        ) {
            let va = SparseVec::from_entries(a);
            let vb = SparseVec::from_entries(b);
            prop_assert!((va.dot_sparse(&vb) - vb.dot_sparse(&va)).abs() < 1e-4);
        }

        #[test]
        fn buckets_stay_in_range(s in ".{0,40}", bits in 1u32..16) {
            let h = FeatureHasher::new(bits);
            prop_assert!((h.bucket(&s) as usize) < h.dim());
        }
    }
}
