//! API-cost accounting — the paper's Table 2 price model.
//!
//! GPT-based baselines report a *Cost Per SQL* computed from input/output
//! token counts at the published per-1K-token prices.

use crate::tokenize::approx_token_count;

/// Per-1K-token API prices in USD (paper, Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApiPrice {
    pub model: &'static str,
    pub input_per_1k: f64,
    pub output_per_1k: f64,
    /// Context window in tokens; prompts beyond this are unservable (the
    /// paper's DIN-SQL + GPT-4 row).
    pub context_limit: usize,
}

/// GPT-4 with the 8k context window.
pub const GPT_4_8K: ApiPrice =
    ApiPrice { model: "GPT-4-8k", input_per_1k: 0.03, output_per_1k: 0.06, context_limit: 8192 };

/// GPT-4 with the 32k context window.
pub const GPT_4_32K: ApiPrice =
    ApiPrice { model: "GPT-4-32k", input_per_1k: 0.06, output_per_1k: 0.12, context_limit: 32768 };

/// GPT-3.5-turbo-1106.
pub const GPT_35_TURBO: ApiPrice = ApiPrice {
    model: "GPT-3.5-turbo-1106",
    input_per_1k: 0.001,
    output_per_1k: 0.002,
    context_limit: 16385,
};

impl ApiPrice {
    /// Cost in USD of a single call with the given token counts.
    pub fn call_cost(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        input_tokens as f64 / 1000.0 * self.input_per_1k
            + output_tokens as f64 / 1000.0 * self.output_per_1k
    }
}

/// Accumulates token usage across calls and reports cost-per-query.
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    pub input_tokens: usize,
    pub output_tokens: usize,
    pub calls: usize,
    pub queries: usize,
    /// Calls whose prompt exceeded the context limit.
    pub over_limit: usize,
}

impl CostMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one API call given the raw prompt/completion text.
    pub fn record_call(&mut self, price: &ApiPrice, prompt: &str, completion: &str) {
        let it = approx_token_count(prompt);
        if it > price.context_limit {
            self.over_limit += 1;
        }
        self.input_tokens += it;
        self.output_tokens += approx_token_count(completion);
        self.calls += 1;
    }

    /// Marks the end of one user query (a query may involve several calls,
    /// e.g. DIN-SQL's decomposed prompting).
    pub fn finish_query(&mut self) {
        self.queries += 1;
    }

    /// Average USD cost per query at the given prices.
    pub fn cost_per_query(&self, price: &ApiPrice) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        price.call_cost(self.input_tokens, self.output_tokens) / self.queries as f64
    }

    /// True when any prompt exceeded the model's context window.
    pub fn any_over_limit(&self) -> bool {
        self.over_limit > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_prices() {
        assert_eq!(GPT_4_8K.call_cost(1000, 1000), 0.09);
        assert_eq!(GPT_4_32K.call_cost(1000, 0), 0.06);
        assert!((GPT_35_TURBO.call_cost(1000, 500) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn meter_averages_over_queries() {
        let mut m = CostMeter::new();
        let prompt = vec!["word"; 70].join(" "); // ~100 tokens
        m.record_call(&GPT_4_8K, &prompt, "SELECT one");
        m.finish_query();
        m.record_call(&GPT_4_8K, &prompt, "SELECT two");
        m.finish_query();
        assert_eq!(m.queries, 2);
        let c = m.cost_per_query(&GPT_4_8K);
        assert!(c > 0.0 && c < 0.01, "cost {c}");
    }

    #[test]
    fn over_limit_detection() {
        let mut m = CostMeter::new();
        let huge = vec!["word"; 7000].join(" "); // ~10k tokens > 8192
        m.record_call(&GPT_4_8K, &huge, "");
        assert!(m.any_over_limit());
        let mut ok = CostMeter::new();
        ok.record_call(&GPT_4_32K, &huge, "");
        assert!(!ok.any_over_limit());
    }
}
