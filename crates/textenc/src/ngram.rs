//! Character and word n-gram extraction.

use crate::tokenize::tokenize;

/// Character n-grams of a string, lower-cased, with `#` boundary padding
/// (so prefixes/suffixes are distinguishable features).
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram order must be positive");
    let padded: Vec<char> = std::iter::once('#')
        .chain(text.chars().flat_map(|c| c.to_lowercase()))
        .chain(std::iter::once('#'))
        .collect();
    if padded.len() < n {
        return vec![padded.iter().collect()];
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

/// Word n-grams over the tokenised text, joined with spaces.
pub fn word_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram order must be positive");
    let tokens = tokenize(text);
    if tokens.is_empty() {
        return Vec::new();
    }
    if tokens.len() < n {
        return vec![tokens.join(" ")];
    }
    tokens.windows(n).map(|w| w.join(" ")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_trigrams() {
        let grams = char_ngrams("nav", 3);
        assert_eq!(grams, vec!["#na", "nav", "av#"]);
    }

    #[test]
    fn short_strings_pad() {
        assert_eq!(char_ngrams("a", 3), vec!["#a#"]);
    }

    #[test]
    fn word_bigrams() {
        assert_eq!(word_ngrams("show fund nav", 2), vec!["show fund", "fund nav"]);
    }

    #[test]
    fn word_ngrams_of_short_text() {
        assert_eq!(word_ngrams("nav", 2), vec!["nav"]);
        assert!(word_ngrams("", 2).is_empty());
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(char_ngrams("NAV", 3), char_ngrams("nav", 3));
    }
}
