//! Text-encoding substrate: tokenisation, n-gram extraction, feature
//! hashing and token-cost accounting.
//!
//! Both learned components of the reproduction — the Cross-Encoder schema
//! linker and the simulated LLM's embedding model — consume sparse
//! feature vectors produced here. The cost module implements the paper's
//! Table 2 price model for computing Cost-per-SQL of the GPT baselines.

#![forbid(unsafe_code)]

pub mod cost;
pub mod hashing;
pub mod ngram;
pub mod tokenize;

pub use cost::{ApiPrice, CostMeter, GPT_35_TURBO, GPT_4_32K, GPT_4_8K};
pub use hashing::{FeatureHasher, SparseVec};
pub use ngram::{char_ngrams, word_ngrams};
pub use tokenize::{approx_token_count, tokenize, tokenize_identifier};
