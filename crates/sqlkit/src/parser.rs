//! Recursive-descent parser for the analytic SELECT dialect.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::lex;
use crate::token::{Symbol, Token, TokenKind};

/// Parses a complete SQL statement. Trailing semicolons are accepted;
/// anything after them is an error.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0, input_len: sql.len() };
    let stmt = p.parse_select_stmt()?;
    if p.peek_symbol(Symbol::Semicolon) {
        p.advance();
    }
    if let Some(t) = p.peek() {
        return Err(ParseError::new(
            format!("unexpected trailing token: {:?}", t.kind),
            t.pos,
        ));
    }
    Ok(Statement::Select(stmt))
}

/// Parses just the query (used by subquery parsing and tests).
pub fn parse_query(sql: &str) -> Result<SelectStmt> {
    match parse_statement(sql)? {
        Statement::Select(q) => Ok(q),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kind(&self) -> Option<&TokenKind> {
        self.peek().map(|t| &t.kind)
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        self.tokens.get(self.pos - 1)
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::new(msg, t.pos),
            None => ParseError::eof(msg, self.input_len),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek_kind(), Some(k) if k.is_keyword(kw))
    }

    fn peek_symbol(&self, sym: Symbol) -> bool {
        matches!(self.peek_kind(), Some(k) if k.is_symbol(sym))
    }

    /// Consumes the keyword if present; returns whether it was consumed.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_symbol(&mut self, sym: Symbol) -> bool {
        if self.peek_symbol(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected keyword {kw}")))
        }
    }

    fn expect_symbol(&mut self, sym: Symbol) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected '{sym}'")))
        }
    }

    /// Consumes an identifier (bare or quoted).
    fn expect_ident(&mut self) -> Result<String> {
        match self.peek_kind().cloned() {
            Some(TokenKind::Ident(s)) | Some(TokenKind::QuotedIdent(s)) => {
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error_here("expected identifier")),
        }
    }

    // ---- query structure -------------------------------------------------

    fn parse_select_stmt(&mut self) -> Result<SelectStmt> {
        let body = self.parse_set_expr()?;
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            self.parse_order_by_list()?
        } else {
            Vec::new()
        };
        let limit = if self.eat_keyword("LIMIT") { Some(self.parse_limit()?) } else { None };
        Ok(SelectStmt { body, order_by, limit })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = SetExpr::Select(Box::new(self.parse_select_block()?));
        loop {
            let op = if self.peek_keyword("UNION") {
                SetOp::Union
            } else if self.peek_keyword("INTERSECT") {
                SetOp::Intersect
            } else if self.peek_keyword("EXCEPT") {
                SetOp::Except
            } else {
                break;
            };
            self.advance();
            let all = self.eat_keyword("ALL");
            let right = SetExpr::Select(Box::new(self.parse_select_block()?));
            left = SetExpr::SetOp { op, all, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_select_block(&mut self) -> Result<Select> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.parse_select_item()?];
        while self.eat_symbol(Symbol::Comma) {
            items.push(self.parse_select_item()?);
        }
        let from = if self.eat_keyword("FROM") { Some(self.parse_from()?) } else { None };
        let selection = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            let mut keys = vec![self.parse_expr()?];
            while self.eat_symbol(Symbol::Comma) {
                keys.push(self.parse_expr()?);
            }
            keys
        } else {
            Vec::new()
        };
        let having = if self.eat_keyword("HAVING") { Some(self.parse_expr()?) } else { None };
        Ok(Select { distinct, items, from, selection, group_by, having })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol(Symbol::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `ident.*`
        if let Some(TokenKind::Ident(name)) = self.peek_kind().cloned() {
            if self.tokens.get(self.pos + 1).is_some_and(|t| t.kind.is_symbol(Symbol::Dot))
                && self.tokens.get(self.pos + 2).is_some_and(|t| t.kind.is_symbol(Symbol::Star))
            {
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let Some(TokenKind::Ident(_)) = self.peek_kind() {
            // Implicit alias only when followed by a clause boundary —
            // keeps `SELECT a b` unambiguous enough for this dialect.
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from(&mut self) -> Result<FromClause> {
        let base = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            let join_type = if self.peek_keyword("JOIN") {
                self.advance();
                JoinType::Inner
            } else if self.peek_keyword("INNER") {
                self.advance();
                self.expect_keyword("JOIN")?;
                JoinType::Inner
            } else if self.peek_keyword("LEFT") {
                self.advance();
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinType::Left
            } else if self.peek_keyword("RIGHT") {
                self.advance();
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinType::Right
            } else if self.peek_keyword("CROSS") {
                self.advance();
                self.expect_keyword("JOIN")?;
                JoinType::Cross
            } else if self.peek_symbol(Symbol::Comma) {
                self.advance();
                JoinType::Cross
            } else {
                break;
            };
            let table = self.parse_table_ref()?;
            // `ON` may legitimately be absent for CROSS joins, and is
            // tolerated as absent (or dangling) otherwise so the repair
            // pass can fix LLM output.
            let on = if self.eat_keyword("ON") {
                if self.at_clause_boundary() {
                    None
                } else {
                    Some(self.parse_expr()?)
                }
            } else {
                None
            };
            joins.push(Join { join_type, table, on });
        }
        Ok(FromClause { base, joins })
    }

    /// True when the next token starts a new clause (or input ends) —
    /// used to detect a dangling `ON`.
    fn at_clause_boundary(&self) -> bool {
        match self.peek_kind() {
            None => true,
            Some(k) => {
                ["WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "LEFT", "RIGHT",
                 "CROSS", "UNION", "INTERSECT", "EXCEPT"]
                .iter()
                .any(|kw| k.is_keyword(kw))
                    || k.is_symbol(Symbol::Semicolon)
                    || k.is_symbol(Symbol::RParen)
            }
        }
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let name = self.expect_ident()?;
        // `AS` is optional before an alias.
        let has_alias =
            self.eat_keyword("AS") || matches!(self.peek_kind(), Some(TokenKind::Ident(_)));
        let alias = if has_alias { Some(self.expect_ident()?) } else { None };
        Ok(TableRef { name, alias })
    }

    fn parse_order_by_list(&mut self) -> Result<Vec<OrderByItem>> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let desc = if self.eat_keyword("DESC") {
                true
            } else {
                self.eat_keyword("ASC");
                false
            };
            items.push(OrderByItem { expr, desc });
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_limit(&mut self) -> Result<Limit> {
        let count = self.parse_u64()?;
        let offset = if self.eat_keyword("OFFSET") { self.parse_u64()? } else { 0 };
        Ok(Limit { count, offset })
    }

    fn parse_u64(&mut self) -> Result<u64> {
        match self.peek_kind().cloned() {
            Some(TokenKind::Number(n)) => {
                let v = n
                    .parse::<u64>()
                    .map_err(|_| self.error_here("expected a non-negative integer"))?;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.error_here("expected a number")),
        }
    }

    // ---- expressions ------------------------------------------------------
    //
    // Precedence (low → high): OR, AND, NOT, comparison/IN/BETWEEN/LIKE/IS,
    // + -, * / %, unary -, atoms.

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary { op: BinaryOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary { op: BinaryOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            // `NOT EXISTS (...)` folds into the Exists node.
            if self.peek_keyword("EXISTS") {
                self.advance();
                let sub = self.parse_parenthesised_query()?;
                return Ok(Expr::Exists { subquery: Box::new(sub), negated: true });
            }
            let operand = self.parse_not()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, operand: Box::new(operand) });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        if self.peek_keyword("EXISTS") {
            self.advance();
            let sub = self.parse_parenthesised_query()?;
            return Ok(Expr::Exists { subquery: Box::new(sub), negated: false });
        }
        let left = self.parse_additive()?;
        // Postfix predicates.
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_symbol(Symbol::LParen)?;
            if self.peek_keyword("SELECT") {
                let sub = self.parse_select_stmt()?;
                self.expect_symbol(Symbol::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.parse_additive()?];
            while self.eat_symbol(Symbol::Comma) {
                list.push(self.parse_additive()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if negated {
            return Err(self.error_here("expected IN, BETWEEN or LIKE after NOT"));
        }
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek_kind() {
            Some(TokenKind::Symbol(Symbol::Eq)) | Some(TokenKind::Symbol(Symbol::DoubleEq)) => {
                Some(BinaryOp::Eq)
            }
            Some(TokenKind::Symbol(Symbol::Neq)) => Some(BinaryOp::Neq),
            Some(TokenKind::Symbol(Symbol::Lt)) => Some(BinaryOp::Lt),
            Some(TokenKind::Symbol(Symbol::Le)) => Some(BinaryOp::Le),
            Some(TokenKind::Symbol(Symbol::Gt)) => Some(BinaryOp::Gt),
            Some(TokenKind::Symbol(Symbol::Ge)) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.peek_symbol(Symbol::Plus) {
                BinaryOp::Add
            } else if self.peek_symbol(Symbol::Minus) {
                BinaryOp::Sub
            } else {
                break;
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.peek_symbol(Symbol::Star) {
                BinaryOp::Mul
            } else if self.peek_symbol(Symbol::Slash) {
                BinaryOp::Div
            } else if self.peek_symbol(Symbol::Percent) {
                BinaryOp::Mod
            } else {
                break;
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, operand: Box::new(operand) });
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr> {
        match self.peek_kind().cloned() {
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                if n.contains('.') {
                    let v = n.parse::<f64>().map_err(|_| self.error_here("bad float literal"))?;
                    Ok(Expr::Literal(Literal::Float(v)))
                } else {
                    let v = n.parse::<i64>().map_err(|_| self.error_here("bad int literal"))?;
                    Ok(Expr::Literal(Literal::Int(v)))
                }
            }
            Some(TokenKind::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(TokenKind::Keyword(kw)) => match kw.as_str() {
                "NULL" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Null))
                }
                "TRUE" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Bool(true)))
                }
                "FALSE" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Bool(false)))
                }
                "CASE" => self.parse_case(),
                _ => Err(self.error_here(format!("unexpected keyword {kw}"))),
            },
            Some(TokenKind::Symbol(Symbol::LParen)) => {
                self.pos += 1;
                if self.peek_keyword("SELECT") {
                    let sub = self.parse_select_stmt()?;
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::Subquery(Box::new(sub)));
                }
                let inner = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(inner)
            }
            Some(TokenKind::Ident(_)) | Some(TokenKind::QuotedIdent(_)) => {
                let name = self.expect_ident()?;
                // Function call?
                if self.peek_symbol(Symbol::LParen) {
                    self.pos += 1;
                    if name.eq_ignore_ascii_case("count") && self.eat_symbol(Symbol::Star) {
                        self.expect_symbol(Symbol::RParen)?;
                        return Ok(Expr::CountStar);
                    }
                    let distinct = self.eat_keyword("DISTINCT");
                    let mut args = Vec::new();
                    if !self.peek_symbol(Symbol::RParen) {
                        args.push(self.parse_expr()?);
                        while self.eat_symbol(Symbol::Comma) {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::Function { name: name.to_ascii_uppercase(), distinct, args });
                }
                // Qualified column?
                if self.eat_symbol(Symbol::Dot) {
                    let column = self.expect_ident()?;
                    return Ok(Expr::Column(ColumnRef { table: Some(name), column }));
                }
                Ok(Expr::Column(ColumnRef { table: None, column: name }))
            }
            _ => Err(self.error_here("expected expression")),
        }
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_keyword("CASE")?;
        let operand = if self.peek_keyword("WHEN") { None } else { Some(Box::new(self.parse_expr()?)) };
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let cond = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.error_here("CASE requires at least one WHEN branch"));
        }
        let else_result =
            if self.eat_keyword("ELSE") { Some(Box::new(self.parse_expr()?)) } else { None };
        self.expect_keyword("END")?;
        Ok(Expr::Case { operand, branches, else_result })
    }

    fn parse_parenthesised_query(&mut self) -> Result<SelectStmt> {
        self.expect_symbol(Symbol::LParen)?;
        let q = self.parse_select_stmt()?;
        self.expect_symbol(Symbol::RParen)?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> SelectStmt {
        parse_query(sql).unwrap_or_else(|e| panic!("failed to parse {sql:?}: {e}"))
    }

    fn only_select(q: &SelectStmt) -> &Select {
        match &q.body {
            SetExpr::Select(s) => s,
            _ => panic!("expected a plain select"),
        }
    }

    #[test]
    fn parses_minimal_select() {
        let q = parse("SELECT a FROM t");
        let s = only_select(&q);
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.from.as_ref().unwrap().base.name, "t");
    }

    #[test]
    fn parses_distinct_and_wildcard() {
        let q = parse("SELECT DISTINCT * FROM t");
        let s = only_select(&q);
        assert!(s.distinct);
        assert!(matches!(s.items[0], SelectItem::Wildcard));
    }

    #[test]
    fn parses_qualified_wildcard() {
        let q = parse("SELECT t1.* FROM t t1");
        let s = only_select(&q);
        assert!(matches!(&s.items[0], SelectItem::QualifiedWildcard(n) if n == "t1"));
    }

    #[test]
    fn parses_aliases() {
        let q = parse("SELECT secucode AS code, chiname name FROM lc_sharestru AS t1");
        let s = only_select(&q);
        match &s.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("code")),
            _ => panic!(),
        }
        match &s.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("name")),
            _ => panic!(),
        }
        assert_eq!(s.from.as_ref().unwrap().base.alias.as_deref(), Some("t1"));
    }

    #[test]
    fn parses_joins_with_on() {
        let q = parse(
            "SELECT a.x FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id",
        );
        let s = only_select(&q);
        let from = s.from.as_ref().unwrap();
        assert_eq!(from.joins.len(), 2);
        assert_eq!(from.joins[0].join_type, JoinType::Inner);
        assert_eq!(from.joins[1].join_type, JoinType::Left);
        assert!(from.joins[0].on.is_some());
    }

    #[test]
    fn tolerates_dangling_on() {
        // Malformed LLM output the calibration step repairs.
        let q = parse("SELECT a.x FROM a JOIN b ON WHERE a.x > 1");
        let s = only_select(&q);
        assert!(s.from.as_ref().unwrap().joins[0].on.is_none());
        assert!(s.selection.is_some());
    }

    #[test]
    fn parses_comma_join_as_cross() {
        let q = parse("SELECT * FROM a, b WHERE a.id = b.id");
        let s = only_select(&q);
        assert_eq!(s.from.as_ref().unwrap().joins[0].join_type, JoinType::Cross);
    }

    #[test]
    fn parses_where_precedence() {
        let q = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
        let s = only_select(&q);
        match s.selection.as_ref().unwrap() {
            Expr::Binary { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let q = parse("SELECT 1 + 2 * 3");
        let s = only_select(&q);
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinaryOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_group_by_having() {
        let q = parse(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 5 ORDER BY dept DESC LIMIT 3 OFFSET 1",
        );
        let s = only_select(&q);
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(Limit { count: 3, offset: 1 }));
    }

    #[test]
    fn parses_aggregates() {
        let q = parse("SELECT COUNT(*), COUNT(DISTINCT x), SUM(y), AVG(z) FROM t");
        let s = only_select(&q);
        assert!(matches!(s.items[0], SelectItem::Expr { expr: Expr::CountStar, .. }));
        match &s.items[1] {
            SelectItem::Expr { expr: Expr::Function { name, distinct, .. }, .. } => {
                assert_eq!(name, "COUNT");
                assert!(*distinct);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_in_list_and_subquery() {
        let q = parse("SELECT a FROM t WHERE x IN (1, 2, 3) AND y NOT IN (SELECT y FROM u)");
        let s = only_select(&q);
        match s.selection.as_ref().unwrap() {
            Expr::Binary { left, right, .. } => {
                assert!(matches!(**left, Expr::InList { negated: false, .. }));
                assert!(matches!(**right, Expr::InSubquery { negated: true, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_between_like_isnull() {
        let q = parse(
            "SELECT a FROM t WHERE x BETWEEN 1 AND 5 AND n LIKE '%fund%' AND z IS NOT NULL",
        );
        let s = only_select(&q);
        let mut found = (false, false, false);
        fn scan(e: &Expr, found: &mut (bool, bool, bool)) {
            match e {
                Expr::Between { .. } => found.0 = true,
                Expr::Like { .. } => found.1 = true,
                Expr::IsNull { negated: true, .. } => found.2 = true,
                Expr::Binary { left, right, .. } => {
                    scan(left, found);
                    scan(right, found);
                }
                _ => {}
            }
        }
        scan(s.selection.as_ref().unwrap(), &mut found);
        assert_eq!(found, (true, true, true));
    }

    #[test]
    fn parses_scalar_subquery() {
        let q = parse("SELECT a FROM t WHERE x > (SELECT AVG(x) FROM t)");
        let s = only_select(&q);
        match s.selection.as_ref().unwrap() {
            Expr::Binary { right, .. } => assert!(matches!(**right, Expr::Subquery(_))),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_exists() {
        let q = parse("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u) AND NOT EXISTS (SELECT 2 FROM v)");
        let s = only_select(&q);
        match s.selection.as_ref().unwrap() {
            Expr::Binary { left, right, .. } => {
                assert!(matches!(**left, Expr::Exists { negated: false, .. }));
                assert!(matches!(**right, Expr::Exists { negated: true, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_union() {
        let q = parse("SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY a LIMIT 10");
        match &q.body {
            SetExpr::SetOp { op: SetOp::Union, all: true, .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(q.order_by.len(), 1);
    }

    #[test]
    fn parses_case_expression() {
        let q = parse("SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END FROM t");
        let s = only_select(&q);
        assert!(matches!(
            s.items[0],
            SelectItem::Expr { expr: Expr::Case { .. }, .. }
        ));
    }

    #[test]
    fn accepts_double_equals_as_eq() {
        // `==` is normalised at parse time so downstream code never sees it.
        let q = parse("SELECT a FROM t WHERE x == 5");
        let s = only_select(&q);
        assert!(matches!(
            s.selection.as_ref().unwrap(),
            Expr::Binary { op: BinaryOp::Eq, .. }
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_statement("SELECT a FROM t WHERE").is_err());
        assert!(parse_statement("SELECT a FROM t 123 456").is_err());
    }

    #[test]
    fn eof_errors_are_flagged() {
        let err = parse_statement("SELECT a FROM").unwrap_err();
        assert!(err.at_end, "error should be at end: {err:?}");
        let err = parse_statement("SELECT a FRO t").unwrap_err();
        assert!(!err.at_end);
    }

    #[test]
    fn referenced_tables_and_columns() {
        let q = parse(
            "SELECT a.x, b.y FROM a JOIN b ON a.id = b.id WHERE a.z IN (SELECT z FROM c)",
        );
        let tables: Vec<_> = q.referenced_tables().iter().map(|t| t.name.clone()).collect();
        assert_eq!(tables, vec!["a", "b", "c"]);
        let cols = q.referenced_columns();
        assert!(cols.iter().any(|c| c.column == "x"));
        assert!(cols.iter().any(|c| c.column == "id"));
    }

    #[test]
    fn parses_semicolon_terminated() {
        assert!(parse_statement("SELECT 1;").is_ok());
    }
}
