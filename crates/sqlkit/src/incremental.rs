//! Incremental prefix-validity checking, the mechanism behind the
//! PICARD-style constrained-decoding baseline.
//!
//! PICARD rejects decoder tokens that cannot be extended into valid SQL.
//! Our equivalent asks, for a textual prefix: *can some suffix make this
//! parse?* The parser distinguishes "syntax error mid-input" (dead prefix)
//! from "unexpected end of input" (extensible prefix), which is exactly
//! the signal needed.

use crate::catalog::CatalogSchema;
use crate::parser::parse_statement;

/// The verdict on a SQL prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixValidity {
    /// The prefix is already a complete, valid statement.
    Complete,
    /// The prefix is not complete but some continuation is valid.
    Extensible,
    /// No continuation can make the prefix valid.
    Dead,
}

/// Classifies a SQL prefix.
pub fn check_prefix(prefix: &str) -> PrefixValidity {
    match parse_statement(prefix) {
        Ok(_) => PrefixValidity::Complete,
        Err(e) if e.at_end => PrefixValidity::Extensible,
        Err(_) => PrefixValidity::Dead,
    }
}

/// Schema-aware validity: a *complete* statement is additionally required
/// to reference only tables and columns that exist. This is the filter the
/// PICARD baseline applies to whole candidates (token-level schema checks
/// reduce to this at candidate granularity).
pub fn check_against_schema(sql: &str, schema: &CatalogSchema) -> bool {
    let Ok(crate::ast::Statement::Select(q)) = parse_statement(sql) else {
        return false;
    };
    // Every referenced table must exist.
    let tables = q.referenced_tables();
    if tables.iter().any(|t| schema.table(&t.name).is_none()) {
        return false;
    }
    // Build alias scope (query-wide; fine for the dialect's workloads).
    let mut scope: Vec<(String, String)> = Vec::new();
    for t in &tables {
        scope.push((t.effective_name().to_ascii_lowercase(), t.name.clone()));
    }
    // Every column must exist in its qualifying table, or in some table in
    // scope when unqualified.
    for c in q.referenced_columns() {
        let ok = match &c.table {
            Some(q) => scope
                .iter()
                .find(|(eff, _)| eff == &q.to_ascii_lowercase())
                .map(|(_, real)| schema.has_column(real, &c.column))
                .unwrap_or(false),
            None => scope.iter().any(|(_, real)| schema.has_column(real, &c.column)),
        };
        if !ok {
            return false;
        }
    }
    // Dangling join conditions are invalid.
    let mut dangling = false;
    q.walk_selects(&mut |s| {
        if let Some(from) = &s.from {
            for j in &from.joins {
                if j.on.is_none() && j.join_type != crate::ast::JoinType::Cross {
                    dangling = true;
                }
            }
        }
    });
    !dangling
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CatalogColumn, CatalogTable, ColType};

    #[test]
    fn complete_statement() {
        assert_eq!(check_prefix("SELECT a FROM t"), PrefixValidity::Complete);
    }

    #[test]
    fn extensible_prefixes() {
        for p in ["SELECT", "SELECT a FROM", "SELECT a FROM t WHERE", "SELECT a FROM t WHERE x ="] {
            assert_eq!(check_prefix(p), PrefixValidity::Extensible, "prefix: {p}");
        }
    }

    #[test]
    fn dead_prefixes() {
        for p in ["SELECT FROM FROM", "WHERE x", "SELECT a a a a FROM"] {
            assert_eq!(check_prefix(p), PrefixValidity::Dead, "prefix: {p}");
        }
    }

    fn schema() -> CatalogSchema {
        CatalogSchema {
            db_id: "s".into(),
            tables: vec![CatalogTable {
                name: "t".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![CatalogColumn::new("a", ColType::Int, "", "")],
            }],
            foreign_keys: vec![],
        }
    }

    #[test]
    fn schema_check_accepts_valid() {
        assert!(check_against_schema("SELECT a FROM t", &schema()));
        assert!(check_against_schema("SELECT t.a FROM t", &schema()));
    }

    #[test]
    fn schema_check_rejects_unknown_table_or_column() {
        assert!(!check_against_schema("SELECT a FROM missing", &schema()));
        assert!(!check_against_schema("SELECT ghost FROM t", &schema()));
        assert!(!check_against_schema("SELECT u.a FROM t", &schema()));
    }

    #[test]
    fn schema_check_rejects_dangling_join() {
        let mut s = schema();
        s.tables.push(CatalogTable {
            name: "u".into(),
            desc_en: String::new(),
            desc_cn: String::new(),
            columns: vec![CatalogColumn::new("a", ColType::Int, "", "")],
        });
        assert!(!check_against_schema("SELECT t.a FROM t JOIN u ON", &s));
    }
}
