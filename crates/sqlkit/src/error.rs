//! Error types for lexing and parsing.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ParseError>;

/// An error produced while lexing or parsing SQL text.
///
/// `pos` is a byte offset into the original input; `at_end` distinguishes
/// "ran out of input" (a *valid prefix* for incremental checking) from a
/// genuine syntax error in the middle of the text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset of the offending token in the input.
    pub pos: usize,
    /// True when the error is an unexpected end of input.
    pub at_end: bool,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>, pos: usize) -> Self {
        ParseError { message: message.into(), pos, at_end: false }
    }

    pub(crate) fn eof(message: impl Into<String>, pos: usize) -> Self {
        ParseError { message: message.into(), pos, at_end: true }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.at_end {
            write!(f, "unexpected end of input at byte {}: {}", self.pos, self.message)
        } else {
            write!(f, "syntax error at byte {}: {}", self.pos, self.message)
        }
    }
}

impl std::error::Error for ParseError {}
