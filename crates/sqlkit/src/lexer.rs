//! Hand-written SQL lexer.

use crate::error::{ParseError, Result};
use crate::token::{keyword_of, Symbol, Token, TokenKind};

/// Lexes `input` into a token stream.
///
/// The lexer is forgiving in exactly the ways the FinSQL calibration pass
/// needs: it accepts `==` (emitted as [`Symbol::DoubleEq`]) and `<>` as
/// `!=`, so that malformed LLM output still lexes and can be repaired
/// downstream rather than rejected outright.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '(' => push_sym(&mut tokens, Symbol::LParen, &mut i),
            ')' => push_sym(&mut tokens, Symbol::RParen, &mut i),
            ',' => push_sym(&mut tokens, Symbol::Comma, &mut i),
            ';' => push_sym(&mut tokens, Symbol::Semicolon, &mut i),
            '+' => push_sym(&mut tokens, Symbol::Plus, &mut i),
            '-' => {
                // `--` starts a line comment.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    push_sym(&mut tokens, Symbol::Minus, &mut i);
                }
            }
            '*' => push_sym(&mut tokens, Symbol::Star, &mut i),
            '/' => push_sym(&mut tokens, Symbol::Slash, &mut i),
            '%' => push_sym(&mut tokens, Symbol::Percent, &mut i),
            '.' => push_sym(&mut tokens, Symbol::Dot, &mut i),
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Symbol(Symbol::DoubleEq), pos: start });
                    i += 2;
                } else {
                    push_sym(&mut tokens, Symbol::Eq, &mut i);
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Symbol(Symbol::Neq), pos: start });
                    i += 2;
                } else {
                    return Err(ParseError::new("unexpected character '!'", start));
                }
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(&b'=') => {
                        tokens.push(Token { kind: TokenKind::Symbol(Symbol::Le), pos: start });
                        i += 2;
                    }
                    Some(&b'>') => {
                        tokens.push(Token { kind: TokenKind::Symbol(Symbol::Neq), pos: start });
                        i += 2;
                    }
                    _ => push_sym(&mut tokens, Symbol::Lt, &mut i),
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Symbol(Symbol::Ge), pos: start });
                    i += 2;
                } else {
                    push_sym(&mut tokens, Symbol::Gt, &mut i);
                }
            }
            '\'' => {
                let (text, next) = lex_string(input, i)?;
                tokens.push(Token { kind: TokenKind::Str(text), pos: start });
                i = next;
            }
            '"' | '`' => {
                let quote = c;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::eof("unterminated quoted identifier", start));
                }
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(input[i + 1..j].to_string()),
                    pos: start,
                });
                i = j + 1;
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                let mut seen_dot = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !seen_dot && bytes.get(j + 1).is_some_and(|n| n.is_ascii_digit()) {
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token { kind: TokenKind::Number(input[i..j].to_string()), pos: start });
                i = j;
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_alphanumeric() || d == '_' {
                        j += char_len(bytes[j]);
                    } else {
                        break;
                    }
                }
                let word = &input[i..j];
                let kind = match keyword_of(word) {
                    Some(kw) => TokenKind::Keyword(kw.to_string()),
                    None => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token { kind, pos: start });
                i = j;
            }
            _ => {
                // Non-ASCII alphabetic (e.g. CJK in the cn register) is
                // treated as identifier material.
                if c as u32 > 127 {
                    let mut j = i;
                    while j < bytes.len() {
                        let rest = &input[j..];
                        // INVARIANT: j < bytes.len() and j advances by
                        // len_utf8, so rest is non-empty and starts on a
                        // char boundary.
                        let ch = rest.chars().next().unwrap();
                        if ch.is_alphanumeric() || ch == '_' || ch as u32 > 127 {
                            j += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token { kind: TokenKind::Ident(input[i..j].to_string()), pos: start });
                    i = j;
                } else {
                    return Err(ParseError::new(format!("unexpected character '{c}'"), start));
                }
            }
        }
    }
    Ok(tokens)
}

/// Byte length of the UTF-8 character starting with byte `b`.
fn char_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

/// Lexes a single-quoted string starting at byte `start`; returns the
/// unescaped contents and the byte offset just past the closing quote.
fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            // `''` escapes a quote.
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            let ch_len = char_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(ParseError::eof("unterminated string literal", start))
}

fn push_sym(tokens: &mut Vec<Token>, sym: Symbol, i: &mut usize) {
    tokens.push(Token { kind: TokenKind::Symbol(sym), pos: *i });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_select() {
        let ks = kinds("SELECT a, b FROM t WHERE x = 1");
        assert_eq!(ks.len(), 10);
        assert!(ks[0].is_keyword("SELECT"));
        assert!(matches!(&ks[1], TokenKind::Ident(s) if s == "a"));
        assert!(ks[2].is_symbol(Symbol::Comma));
        assert!(ks[4].is_keyword("FROM"));
        assert!(matches!(&ks[9], TokenKind::Number(n) if n == "1"));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let ks = kinds("select distinct");
        assert!(ks[0].is_keyword("SELECT"));
        assert!(ks[1].is_keyword("DISTINCT"));
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("<= >= != <> = == < >");
        let syms: Vec<_> = ks
            .iter()
            .map(|k| match k {
                TokenKind::Symbol(s) => *s,
                _ => panic!("not a symbol"),
            })
            .collect();
        assert_eq!(
            syms,
            vec![
                Symbol::Le,
                Symbol::Ge,
                Symbol::Neq,
                Symbol::Neq,
                Symbol::Eq,
                Symbol::DoubleEq,
                Symbol::Lt,
                Symbol::Gt
            ]
        );
    }

    #[test]
    fn lexes_string_with_escape() {
        let ks = kinds("'it''s'");
        assert_eq!(ks, vec![TokenKind::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_reports_eof() {
        let err = lex("SELECT 'oops").unwrap_err();
        assert!(err.at_end);
    }

    #[test]
    fn lexes_decimal_numbers() {
        let ks = kinds("3.25 10 0.5");
        assert_eq!(
            ks,
            vec![
                TokenKind::Number("3.25".into()),
                TokenKind::Number("10".into()),
                TokenKind::Number("0.5".into())
            ]
        );
    }

    #[test]
    fn dot_after_number_without_digit_is_symbol() {
        let ks = kinds("t1.col");
        assert_eq!(ks.len(), 3);
        assert!(ks[1].is_symbol(Symbol::Dot));
    }

    #[test]
    fn lexes_quoted_identifiers() {
        let ks = kinds("\"weird col\" `another`");
        assert_eq!(
            ks,
            vec![
                TokenKind::QuotedIdent("weird col".into()),
                TokenKind::QuotedIdent("another".into())
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        let ks = kinds("SELECT -- the columns\n a");
        assert_eq!(ks.len(), 2);
    }

    #[test]
    fn lexes_non_ascii_identifier() {
        let ks = kinds("基金名称");
        assert_eq!(ks, vec![TokenKind::Ident("基金名称".into())]);
    }

    #[test]
    fn rejects_unexpected_character() {
        assert!(lex("SELECT @").is_err());
    }
}
