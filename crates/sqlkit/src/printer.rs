//! Canonical SQL pretty-printer.
//!
//! Printing is the inverse of parsing up to whitespace and case
//! normalisation: `parse(to_sql(parse(x))) == parse(x)` (verified by a
//! property test in the crate's test suite).

use crate::ast::*;
use std::fmt::Write;

/// Renders a statement to canonical SQL text.
pub fn to_sql(stmt: &Statement) -> String {
    match stmt {
        Statement::Select(q) => query_to_sql(q),
    }
}

/// Renders a query to canonical SQL text.
pub fn query_to_sql(q: &SelectStmt) -> String {
    let mut out = String::new();
    write_set_expr(&mut out, &q.body);
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, item) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(&mut out, &item.expr);
            if item.desc {
                out.push_str(" DESC");
            } else {
                out.push_str(" ASC");
            }
        }
    }
    if let Some(limit) = &q.limit {
        // INVARIANT: fmt::Write into a String is infallible.
        write!(out, " LIMIT {}", limit.count).unwrap();
        if limit.offset > 0 {
            // INVARIANT: fmt::Write into a String is infallible.
            write!(out, " OFFSET {}", limit.offset).unwrap();
        }
    }
    out
}

fn write_set_expr(out: &mut String, body: &SetExpr) {
    match body {
        SetExpr::Select(s) => write_select(out, s),
        SetExpr::SetOp { op, all, left, right } => {
            write_set_expr(out, left);
            out.push(' ');
            out.push_str(match op {
                SetOp::Union => "UNION",
                SetOp::Intersect => "INTERSECT",
                SetOp::Except => "EXCEPT",
            });
            if *all {
                out.push_str(" ALL");
            }
            out.push(' ');
            write_set_expr(out, right);
        }
    }
}

fn write_select(out: &mut String, s: &Select) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in s.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(t) => {
                out.push_str(t);
                out.push_str(".*");
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(out, expr);
                if let Some(a) = alias {
                    out.push_str(" AS ");
                    out.push_str(a);
                }
            }
        }
    }
    if let Some(from) = &s.from {
        out.push_str(" FROM ");
        write_table_ref(out, &from.base);
        for j in &from.joins {
            out.push_str(match j.join_type {
                JoinType::Inner => " JOIN ",
                JoinType::Left => " LEFT JOIN ",
                JoinType::Right => " RIGHT JOIN ",
                JoinType::Cross => " CROSS JOIN ",
            });
            write_table_ref(out, &j.table);
            if let Some(on) = &j.on {
                out.push_str(" ON ");
                write_expr(out, on);
            }
        }
    }
    if let Some(w) = &s.selection {
        out.push_str(" WHERE ");
        write_expr(out, w);
    }
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, g) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, g);
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        write_expr(out, h);
    }
}

fn write_table_ref(out: &mut String, t: &TableRef) {
    out.push_str(&t.name);
    if let Some(a) = &t.alias {
        out.push_str(" AS ");
        out.push_str(a);
    }
}

/// Operator precedence used to decide parenthesisation.
fn precedence(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Or => 1,
        BinaryOp::And => 2,
        BinaryOp::Eq
        | BinaryOp::Neq
        | BinaryOp::Lt
        | BinaryOp::Le
        | BinaryOp::Gt
        | BinaryOp::Ge => 3,
        BinaryOp::Add | BinaryOp::Sub => 4,
        BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 5,
    }
}

fn write_expr(out: &mut String, e: &Expr) {
    write_expr_prec(out, e, 0)
}

fn write_expr_prec(out: &mut String, e: &Expr, parent_prec: u8) {
    match e {
        Expr::Column(c) => {
            if let Some(t) = &c.table {
                out.push_str(t);
                out.push('.');
            }
            out.push_str(&c.column);
        }
        Expr::Literal(l) => write_literal(out, l),
        Expr::Unary { op, operand } => {
            match op {
                UnaryOp::Neg => {
                    // `--x` would lex as a line comment: parenthesise any
                    // operand whose rendering starts with a minus.
                    let mut inner = String::new();
                    write_expr_prec(&mut inner, operand, 6);
                    out.push('-');
                    if inner.starts_with('-') {
                        out.push('(');
                        out.push_str(&inner);
                        out.push(')');
                    } else {
                        out.push_str(&inner);
                    }
                    return;
                }
                UnaryOp::Not => out.push_str("NOT "),
            }
            write_expr_prec(out, operand, 6);
        }
        Expr::Binary { op, left, right } => {
            let prec = precedence(*op);
            let needs_parens = prec < parent_prec;
            if needs_parens {
                out.push('(');
            }
            write_expr_prec(out, left, prec);
            out.push(' ');
            out.push_str(op.sql());
            out.push(' ');
            // Right side binds one tighter for left-associative printing.
            write_expr_prec(out, right, prec + 1);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::Function { name, distinct, args } => {
            out.push_str(name);
            out.push('(');
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a);
            }
            out.push(')');
        }
        Expr::CountStar => out.push_str("COUNT(*)"),
        Expr::InList { expr, list, negated } => {
            write_expr_prec(out, expr, 6);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            for (i, v) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, v);
            }
            out.push(')');
        }
        Expr::InSubquery { expr, subquery, negated } => {
            write_expr_prec(out, expr, 6);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            out.push_str(&query_to_sql(subquery));
            out.push(')');
        }
        Expr::Between { expr, low, high, negated } => {
            write_expr_prec(out, expr, 6);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" BETWEEN ");
            write_expr_prec(out, low, 4);
            out.push_str(" AND ");
            write_expr_prec(out, high, 4);
        }
        Expr::Like { expr, pattern, negated } => {
            write_expr_prec(out, expr, 6);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" LIKE ");
            write_expr_prec(out, pattern, 6);
        }
        Expr::IsNull { expr, negated } => {
            write_expr_prec(out, expr, 6);
            if *negated {
                out.push_str(" IS NOT NULL");
            } else {
                out.push_str(" IS NULL");
            }
        }
        Expr::Exists { subquery, negated } => {
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            out.push_str(&query_to_sql(subquery));
            out.push(')');
        }
        Expr::Subquery(q) => {
            out.push('(');
            out.push_str(&query_to_sql(q));
            out.push(')');
        }
        Expr::Case { operand, branches, else_result } => {
            out.push_str("CASE");
            if let Some(op) = operand {
                out.push(' ');
                write_expr(out, op);
            }
            for (cond, res) in branches {
                out.push_str(" WHEN ");
                write_expr(out, cond);
                out.push_str(" THEN ");
                write_expr(out, res);
            }
            if let Some(e) = else_result {
                out.push_str(" ELSE ");
                write_expr(out, e);
            }
            out.push_str(" END");
        }
    }
}

fn write_literal(out: &mut String, l: &Literal) {
    match l {
        Literal::Int(v) => {
            // INVARIANT: fmt::Write into a String is infallible.
            write!(out, "{v}").unwrap();
        }
        Literal::Float(v) => {
            // Keep a decimal point so the literal re-lexes as a float.
            if v.fract() == 0.0 && v.is_finite() {
                // INVARIANT: fmt::Write into a String is infallible.
                write!(out, "{v:.1}").unwrap();
            } else {
                // INVARIANT: fmt::Write into a String is infallible.
                write!(out, "{v}").unwrap();
            }
        }
        Literal::Str(s) => {
            out.push('\'');
            out.push_str(&s.replace('\'', "''"));
            out.push('\'');
        }
        Literal::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
        Literal::Null => out.push_str("NULL"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn round_trip(sql: &str) -> String {
        to_sql(&parse_statement(sql).unwrap())
    }

    #[test]
    fn prints_basic_query() {
        assert_eq!(
            round_trip("select a , b from t where x = 1"),
            "SELECT a, b FROM t WHERE x = 1"
        );
    }

    #[test]
    fn printing_is_idempotent() {
        let cases = [
            "SELECT DISTINCT a.x AS v FROM a AS t1 JOIN b AS t2 ON t1.id = t2.id WHERE t1.y > 3.5 GROUP BY a.x HAVING COUNT(*) > 2 ORDER BY v DESC LIMIT 5",
            "SELECT COUNT(DISTINCT x) FROM t WHERE n LIKE '%fund%' AND z IS NOT NULL",
            "SELECT a FROM t WHERE x IN (SELECT x FROM u WHERE y = 'it''s')",
            "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY a ASC LIMIT 10",
            "SELECT CASE WHEN x > 0 THEN 'p' ELSE 'n' END FROM t",
            "SELECT a FROM t WHERE x BETWEEN 1 AND 5 OR NOT EXISTS (SELECT 1 FROM u)",
        ];
        for sql in cases {
            let once = round_trip(sql);
            let twice = round_trip(&once);
            assert_eq!(once, twice, "not idempotent for {sql}");
        }
    }

    #[test]
    fn parenthesises_or_under_and() {
        let sql = "SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3";
        let printed = round_trip(sql);
        assert!(printed.contains("(x = 1 OR y = 2) AND"), "got: {printed}");
        // Semantics preserved.
        assert_eq!(round_trip(&printed), printed);
    }

    #[test]
    fn string_escape_round_trips() {
        assert_eq!(round_trip("SELECT 'it''s'"), "SELECT 'it''s'");
    }

    #[test]
    fn float_keeps_decimal_point() {
        assert_eq!(round_trip("SELECT 2.0"), "SELECT 2.0");
    }

    #[test]
    fn normalises_double_equals() {
        assert_eq!(round_trip("SELECT a FROM t WHERE x == 1"), "SELECT a FROM t WHERE x = 1");
    }

    #[test]
    fn prints_offset_only_when_nonzero() {
        assert_eq!(round_trip("SELECT a FROM t LIMIT 5 OFFSET 0"), "SELECT a FROM t LIMIT 5");
        assert_eq!(
            round_trip("SELECT a FROM t LIMIT 5 OFFSET 2"),
            "SELECT a FROM t LIMIT 5 OFFSET 2"
        );
    }
}
