//! SQL repair passes — `f1` (typo repair) and `f3` (table–column
//! alignment) of the paper's Algorithm 1.
//!
//! The passes operate on the AST where possible and on raw text only for
//! pre-parse normalisation. They never execute SQL: the whole point of the
//! paper's calibration design is to avoid touching the (huge) production
//! databases.

use crate::ast::*;
use crate::catalog::CatalogSchema;
use crate::fuzzy::best_match;

/// Minimum similarity for fuzzy identifier replacement.
const FUZZY_THRESHOLD: f64 = 0.4;

/// Pre-parse textual normalisation: `== → =`, stray trailing semicolons
/// and markdown fences the model sometimes emits.
pub fn normalize_text(sql: &str) -> String {
    let mut s = sql.trim().to_string();
    // Strip markdown code fences.
    if s.starts_with("```") {
        s = s.trim_start_matches("```sql").trim_start_matches("```").to_string();
    }
    if let Some(stripped) = s.strip_suffix("```") {
        s = stripped.to_string();
    }
    let s = s.replace("==", "=");
    s.trim().trim_end_matches(';').trim().to_string()
}

/// Applies every structural repair to a parsed statement in place:
///
/// 1. invalid table names → fuzzy-matched schema tables,
/// 2. dangling `JOIN … ON` → the declared foreign key between the joined
///    tables (the paper's "JOIN ON keyword used without specifying the
///    corresponding foreign key"),
/// 3. invalid column names → fuzzy-matched columns, preferring the
///    columns of tables in scope.
///
/// Returns the number of individual fixes applied.
pub fn repair_statement(stmt: &mut SelectStmt, schema: &CatalogSchema) -> usize {
    let mut fixes = 0;
    fixes += fix_table_names(stmt, schema);
    fixes += fix_dangling_joins(stmt, schema);
    fixes += fix_column_names(stmt, schema);
    fixes
}

/// Replaces table names that do not exist in the schema with their fuzzy
/// nearest neighbour.
fn fix_table_names(stmt: &mut SelectStmt, schema: &CatalogSchema) -> usize {
    let table_names: Vec<&str> = schema.tables.iter().map(|t| t.name.as_str()).collect();
    let mut fixes = 0;
    visit_selects_mut(&mut stmt.body, &mut |s| {
        if let Some(from) = &mut s.from {
            for t in std::iter::once(&mut from.base).chain(from.joins.iter_mut().map(|j| &mut j.table)) {
                if schema.table(&t.name).is_none() {
                    if let Some(m) = best_match(&t.name, table_names.iter().copied(), FUZZY_THRESHOLD)
                    {
                        t.name = m.to_string();
                        fixes += 1;
                    }
                }
            }
        }
    });
    fixes
}

/// Fills in missing join conditions from declared foreign keys.
fn fix_dangling_joins(stmt: &mut SelectStmt, schema: &CatalogSchema) -> usize {
    let mut fixes = 0;
    visit_selects_mut(&mut stmt.body, &mut |s| {
        let Some(from) = &mut s.from else { return };
        // Tables in scope before each join, in declaration order.
        let mut prior: Vec<TableRef> = vec![from.base.clone()];
        for join in &mut from.joins {
            if join.on.is_none() && join.join_type != JoinType::Cross {
                // Find an FK between the joined table and any prior table.
                let mut found = None;
                for p in &prior {
                    if let Some(fk) = schema.foreign_key_between(&p.name, &join.table.name) {
                        // Qualify with the in-query names (aliases win).
                        let (pt, jt) = (p.effective_name(), join.table.effective_name());
                        let (pc, jc) = if fk.from_table.eq_ignore_ascii_case(&p.name) {
                            (&fk.from_column, &fk.to_column)
                        } else {
                            (&fk.to_column, &fk.from_column)
                        };
                        found = Some(Expr::Binary {
                            op: BinaryOp::Eq,
                            left: Box::new(Expr::Column(ColumnRef::qualified(pt, pc.clone()))),
                            right: Box::new(Expr::Column(ColumnRef::qualified(jt, jc.clone()))),
                        });
                        break;
                    }
                }
                if let Some(on) = found {
                    join.on = Some(on);
                    fixes += 1;
                }
            }
            prior.push(join.table.clone());
        }
    });
    fixes
}

/// Replaces hallucinated column names with their fuzzy nearest neighbour,
/// preferring columns of the tables in the enclosing FROM clause.
fn fix_column_names(stmt: &mut SelectStmt, schema: &CatalogSchema) -> usize {
    let mut fixes = 0;
    visit_selects_mut(&mut stmt.body, &mut |s| {
        // Resolve which real tables are in scope (alias → table).
        let mut scope: Vec<(String, String)> = Vec::new(); // (effective, real)
        if let Some(from) = &s.from {
            for t in std::iter::once(&from.base).chain(from.joins.iter().map(|j| &j.table)) {
                scope.push((t.effective_name().to_ascii_lowercase(), t.name.clone()));
            }
        }
        let scope_cols: Vec<String> = scope
            .iter()
            .filter_map(|(_, real)| schema.table(real))
            .flat_map(|t| t.columns.iter().map(|c| c.name.clone()))
            .collect();
        let all_cols: Vec<&str> = schema.all_column_names();
        let mut fix_col = |c: &mut ColumnRef| {
            let exists = match &c.table {
                Some(q) => {
                    let real = scope
                        .iter()
                        .find(|(eff, _)| eff == &q.to_ascii_lowercase())
                        .map(|(_, real)| real.clone())
                        .unwrap_or_else(|| q.clone());
                    schema.has_column(&real, &c.column)
                }
                None => scope_cols.iter().any(|sc| sc.eq_ignore_ascii_case(&c.column)),
            };
            if exists {
                return;
            }
            // Prefer in-scope columns; fall back to the whole schema.
            let replacement = best_match(
                &c.column,
                scope_cols.iter().map(|s| s.as_str()),
                FUZZY_THRESHOLD,
            )
            .or_else(|| best_match(&c.column, all_cols.iter().copied(), FUZZY_THRESHOLD));
            if let Some(r) = replacement {
                if !r.eq_ignore_ascii_case(&c.column) {
                    c.column = r.to_string();
                    fixes += 1;
                }
            }
        };
        visit_select_columns_mut(s, &mut fix_col);
    });
    fixes
}

/// `f3` of Algorithm 1: makes every `table.column` qualification point at
/// a FROM-clause table that really contains the column. Returns the number
/// of re-qualifications.
pub fn align_tables(stmt: &mut SelectStmt, schema: &CatalogSchema) -> usize {
    let mut fixes = 0;
    visit_selects_mut(&mut stmt.body, &mut |s| {
        let mut scope: Vec<(String, String)> = Vec::new(); // (effective name, real table)
        if let Some(from) = &s.from {
            for t in std::iter::once(&from.base).chain(from.joins.iter().map(|j| &j.table)) {
                scope.push((t.effective_name().to_string(), t.name.clone()));
            }
        }
        if scope.is_empty() {
            return;
        }
        let mut align = |c: &mut ColumnRef| {
            let Some(q) = &c.table else {
                // Unqualified: qualify it when exactly the FROM clause can
                // disambiguate it (more than one table in scope).
                if scope.len() > 1 {
                    if let Some((eff, _)) = scope
                        .iter()
                        .find(|(_, real)| schema.has_column(real, &c.column))
                    {
                        c.table = Some(eff.clone());
                        fixes += 1;
                    }
                }
                return;
            };
            let resolved = scope.iter().find(|(eff, _)| eff.eq_ignore_ascii_case(q));
            let ok = match resolved {
                Some((_, real)) => schema.has_column(real, &c.column),
                None => false,
            };
            if ok {
                return;
            }
            // Search the FROM clause for a table that has this column.
            if let Some((eff, _)) =
                scope.iter().find(|(_, real)| schema.has_column(real, &c.column))
            {
                c.table = Some(eff.clone());
                fixes += 1;
            }
        };
        visit_select_columns_mut(s, &mut align);
    });
    fixes
}

/// Applies `f` to every SELECT block in the statement body, including
/// blocks nested in subqueries.
pub fn visit_selects_mut(body: &mut SetExpr, f: &mut impl FnMut(&mut Select)) {
    match body {
        SetExpr::Select(s) => {
            f(s);
            let mut visit_sub = |e: &mut Expr| visit_expr_subqueries_mut(e, f);
            for item in &mut s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    visit_sub(expr);
                }
            }
            if let Some(w) = &mut s.selection {
                visit_sub(w);
            }
            if let Some(h) = &mut s.having {
                visit_sub(h);
            }
            if let Some(from) = &mut s.from {
                for j in &mut from.joins {
                    if let Some(on) = &mut j.on {
                        visit_sub(on);
                    }
                }
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            visit_selects_mut(left, f);
            visit_selects_mut(right, f);
        }
    }
}

fn visit_expr_subqueries_mut(e: &mut Expr, f: &mut impl FnMut(&mut Select)) {
    match e {
        Expr::Unary { operand, .. } => visit_expr_subqueries_mut(operand, f),
        Expr::Binary { left, right, .. } => {
            visit_expr_subqueries_mut(left, f);
            visit_expr_subqueries_mut(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                visit_expr_subqueries_mut(a, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            visit_expr_subqueries_mut(expr, f);
            for v in list {
                visit_expr_subqueries_mut(v, f);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            visit_expr_subqueries_mut(expr, f);
            visit_selects_mut(&mut subquery.body, f);
        }
        Expr::Between { expr, low, high, .. } => {
            visit_expr_subqueries_mut(expr, f);
            visit_expr_subqueries_mut(low, f);
            visit_expr_subqueries_mut(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            visit_expr_subqueries_mut(expr, f);
            visit_expr_subqueries_mut(pattern, f);
        }
        Expr::IsNull { expr, .. } => visit_expr_subqueries_mut(expr, f),
        Expr::Exists { subquery, .. } | Expr::Subquery(subquery) => {
            visit_selects_mut(&mut subquery.body, f);
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                visit_expr_subqueries_mut(op, f);
            }
            for (c, r) in branches {
                visit_expr_subqueries_mut(c, f);
                visit_expr_subqueries_mut(r, f);
            }
            if let Some(el) = else_result {
                visit_expr_subqueries_mut(el, f);
            }
        }
        Expr::Column(_) | Expr::Literal(_) | Expr::CountStar => {}
    }
}

/// Applies `f` to every column reference in one SELECT block (not
/// descending into subqueries — they have their own scopes).
pub fn visit_select_columns_mut(s: &mut Select, f: &mut impl FnMut(&mut ColumnRef)) {
    for item in &mut s.items {
        if let SelectItem::Expr { expr, .. } = item {
            visit_expr_columns_mut(expr, f);
        }
    }
    if let Some(from) = &mut s.from {
        for j in &mut from.joins {
            if let Some(on) = &mut j.on {
                visit_expr_columns_mut(on, f);
            }
        }
    }
    if let Some(w) = &mut s.selection {
        visit_expr_columns_mut(w, f);
    }
    for g in &mut s.group_by {
        visit_expr_columns_mut(g, f);
    }
    if let Some(h) = &mut s.having {
        visit_expr_columns_mut(h, f);
    }
}

fn visit_expr_columns_mut(e: &mut Expr, f: &mut impl FnMut(&mut ColumnRef)) {
    match e {
        Expr::Column(c) => f(c),
        Expr::Unary { operand, .. } => visit_expr_columns_mut(operand, f),
        Expr::Binary { left, right, .. } => {
            visit_expr_columns_mut(left, f);
            visit_expr_columns_mut(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                visit_expr_columns_mut(a, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            visit_expr_columns_mut(expr, f);
            for v in list {
                visit_expr_columns_mut(v, f);
            }
        }
        Expr::InSubquery { expr, .. } => visit_expr_columns_mut(expr, f),
        Expr::Between { expr, low, high, .. } => {
            visit_expr_columns_mut(expr, f);
            visit_expr_columns_mut(low, f);
            visit_expr_columns_mut(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            visit_expr_columns_mut(expr, f);
            visit_expr_columns_mut(pattern, f);
        }
        Expr::IsNull { expr, .. } => visit_expr_columns_mut(expr, f),
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                visit_expr_columns_mut(op, f);
            }
            for (c, r) in branches {
                visit_expr_columns_mut(c, f);
                visit_expr_columns_mut(r, f);
            }
            if let Some(el) = else_result {
                visit_expr_columns_mut(el, f);
            }
        }
        Expr::Literal(_) | Expr::CountStar | Expr::Exists { .. } | Expr::Subquery(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CatalogColumn, CatalogTable, ColType, ForeignKey};
    use crate::parser::parse_statement;
    use crate::printer::to_sql;

    fn schema() -> CatalogSchema {
        CatalogSchema {
            db_id: "test".into(),
            tables: vec![
                CatalogTable {
                    name: "lc_sharestru".into(),
                    desc_en: "share structure".into(),
                    desc_cn: "share structure".into(),
                    columns: vec![
                        CatalogColumn::new("compcode", ColType::Int, "company code", "cc"),
                        CatalogColumn::new("chinameabbr", ColType::Text, "company abbr", "abbr"),
                        CatalogColumn::new("aquireramount", ColType::Float, "acquirer amount", "aa"),
                    ],
                },
                CatalogTable {
                    name: "lc_exgindustry".into(),
                    desc_en: "exchange industry".into(),
                    desc_cn: "industry".into(),
                    columns: vec![
                        CatalogColumn::new("compcode", ColType::Int, "company code", "cc"),
                        CatalogColumn::new("firstindustryname", ColType::Text, "industry", "ind"),
                    ],
                },
            ],
            foreign_keys: vec![ForeignKey {
                from_table: "lc_exgindustry".into(),
                from_column: "compcode".into(),
                to_table: "lc_sharestru".into(),
                to_column: "compcode".into(),
            }],
        }
    }

    fn roundtrip_repair(sql: &str) -> String {
        let s = schema();
        let Statement::Select(mut q) = parse_statement(&normalize_text(sql)).unwrap();
        repair_statement(&mut q, &s);
        to_sql(&Statement::Select(q))
    }

    #[test]
    fn normalizes_double_equals_and_semicolon() {
        assert_eq!(
            normalize_text("SELECT a FROM t WHERE x == 1;"),
            "SELECT a FROM t WHERE x = 1"
        );
    }

    #[test]
    fn strips_markdown_fences() {
        assert_eq!(normalize_text("```sql\nSELECT 1\n```"), "SELECT 1");
    }

    #[test]
    fn fixes_figure12_typo_column() {
        // Paper Figure 12, example 2: `aquirementrium` is nonexistent; the
        // true column is `aquireramount`.
        let fixed = roundtrip_repair("SELECT aquirementrium FROM lc_sharestru");
        assert!(fixed.contains("aquireramount"), "got: {fixed}");
    }

    #[test]
    fn fixes_dangling_join_on_from_fk() {
        let fixed =
            roundtrip_repair("SELECT t1.chinameabbr FROM lc_sharestru AS t1 JOIN lc_exgindustry AS t2 ON WHERE t2.firstindustryname = 'Banks'");
        assert!(
            fixed.contains("ON t1.compcode = t2.compcode"),
            "got: {fixed}"
        );
    }

    #[test]
    fn fixes_misspelled_table() {
        let fixed = roundtrip_repair("SELECT chinameabbr FROM lc_sharestro");
        assert!(fixed.contains("FROM lc_sharestru"), "got: {fixed}");
    }

    #[test]
    fn alignment_requalifies_figure12_mixup() {
        // Paper Figure 12, example 3: chinameabbr and firstindustryname were
        // qualified with the wrong tables.
        let s = schema();
        let Statement::Select(mut q) = parse_statement(
            "SELECT t2.chinameabbr FROM lc_sharestru AS t1 JOIN lc_exgindustry AS t2 ON t1.compcode = t2.compcode WHERE t1.firstindustryname = 'Banks'",
        )
        .unwrap();
        let fixes = align_tables(&mut q, &s);
        assert_eq!(fixes, 2);
        let sql = to_sql(&Statement::Select(q));
        assert!(sql.contains("t1.chinameabbr"), "got: {sql}");
        assert!(sql.contains("t2.firstindustryname"), "got: {sql}");
    }

    #[test]
    fn alignment_qualifies_ambiguous_bare_columns() {
        let s = schema();
        let Statement::Select(mut q) = parse_statement(
            "SELECT chinameabbr FROM lc_sharestru AS t1 JOIN lc_exgindustry AS t2 ON t1.compcode = t2.compcode",
        )
        .unwrap();
        align_tables(&mut q, &s);
        let sql = to_sql(&Statement::Select(q));
        assert!(sql.contains("t1.chinameabbr"), "got: {sql}");
    }

    #[test]
    fn valid_sql_is_untouched() {
        let sql = "SELECT chinameabbr FROM lc_sharestru WHERE compcode = 5";
        let s = schema();
        let Statement::Select(mut q) = parse_statement(sql).unwrap();
        assert_eq!(repair_statement(&mut q, &s), 0);
        assert_eq!(to_sql(&Statement::Select(q)), sql);
    }

    #[test]
    fn cross_join_needs_no_on() {
        let s = schema();
        let Statement::Select(mut q) =
            parse_statement("SELECT t1.chinameabbr FROM lc_sharestru t1 CROSS JOIN lc_exgindustry t2").unwrap();
        assert_eq!(fix_dangling_joins(&mut q, &s), 0);
    }
}
