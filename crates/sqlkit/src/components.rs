//! Keyword-component extraction — the `f2` of the paper's Algorithm 1.
//!
//! Two generated SQL queries are considered *equivalent* by the
//! non-execution self-consistency step when their keyword components
//! (selected expressions, source tables, predicates, grouping, ordering,
//! limit) agree after normalisation. This module extracts those components
//! and defines the compatibility relation used for clustering.

use crate::ast::*;
use crate::parser::parse_statement;
use crate::printer::query_to_sql;
use std::collections::BTreeSet;

/// The normalised components of a query, keyed by SQL keyword.
///
/// All sets use `BTreeSet<String>` so equality, hashing and debugging are
/// order-insensitive and deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SqlComponents {
    /// Normalised SELECT-list expressions (aliases stripped).
    pub select: BTreeSet<String>,
    pub distinct: bool,
    /// Source table names (aliases resolved away, lower-cased).
    pub tables: BTreeSet<String>,
    /// Conjunctive WHERE predicates, normalised and alias-resolved.
    pub predicates: BTreeSet<String>,
    /// GROUP BY expressions.
    pub group_by: BTreeSet<String>,
    /// HAVING predicates.
    pub having: BTreeSet<String>,
    /// ORDER BY keys with direction.
    pub order_by: Vec<String>,
    /// LIMIT/OFFSET if present.
    pub limit: Option<(u64, u64)>,
    /// Every column mentioned anywhere, as `table.column` when resolvable.
    pub columns: BTreeSet<String>,
    /// String/number literal values appearing in predicates.
    pub values: BTreeSet<String>,
}

/// Extracts components from SQL text. Returns `None` when the SQL does not
/// parse (such candidates are dropped by Algorithm 1).
pub fn extract_components(sql: &str) -> Option<SqlComponents> {
    let Statement::Select(q) = parse_statement(sql).ok()?;
    Some(components_of_query(&q))
}

/// Extracts components from a parsed query.
pub fn components_of_query(q: &SelectStmt) -> SqlComponents {
    let mut out = SqlComponents::default();
    // Alias → table map from every FROM clause in the main body.
    let mut alias_map: Vec<(String, String)> = Vec::new();
    q.walk_selects(&mut |s| {
        if let Some(from) = &s.from {
            record_alias(&mut alias_map, &from.base);
            for j in &from.joins {
                record_alias(&mut alias_map, &j.table);
            }
        }
    });
    let main = first_select(&q.body);
    out.distinct = main.distinct;
    for item in &main.items {
        match item {
            SelectItem::Wildcard => {
                out.select.insert("*".to_string());
            }
            SelectItem::QualifiedWildcard(t) => {
                out.select.insert(format!("{}.*", resolve(&alias_map, t)));
            }
            SelectItem::Expr { expr, .. } => {
                out.select.insert(norm_expr(expr, &alias_map));
            }
        }
    }
    if let Some(from) = &main.from {
        out.tables.insert(from.base.name.to_ascii_lowercase());
        for j in &from.joins {
            out.tables.insert(j.table.name.to_ascii_lowercase());
            // Join conditions count as predicates so a comma-join +
            // WHERE-equality query clusters with its JOIN-ON spelling.
            if let Some(on) = &j.on {
                for p in conjuncts(on) {
                    out.predicates.insert(norm_expr(p, &alias_map));
                }
            }
        }
    }
    if let Some(w) = &main.selection {
        for p in conjuncts(w) {
            out.predicates.insert(norm_expr(p, &alias_map));
        }
    }
    for g in &main.group_by {
        out.group_by.insert(norm_expr(g, &alias_map));
    }
    if let Some(h) = &main.having {
        for p in conjuncts(h) {
            out.having.insert(norm_expr(p, &alias_map));
        }
    }
    for item in &q.order_by {
        let dir = if item.desc { "DESC" } else { "ASC" };
        out.order_by.push(format!("{} {dir}", norm_expr(&item.expr, &alias_map)));
    }
    out.limit = q.limit.map(|l| (l.count, l.offset));
    // Columns and values across the whole statement.
    for c in q.referenced_columns() {
        let resolved = match &c.table {
            Some(t) => format!("{}.{}", resolve(&alias_map, t), c.column.to_ascii_lowercase()),
            None => c.column.to_ascii_lowercase(),
        };
        out.columns.insert(resolved);
    }
    collect_values_stmt(q, &mut out.values);
    out
}

fn record_alias(map: &mut Vec<(String, String)>, t: &TableRef) {
    if let Some(a) = &t.alias {
        map.push((a.to_ascii_lowercase(), t.name.to_ascii_lowercase()));
    }
    // A table's own name also resolves to itself.
    map.push((t.name.to_ascii_lowercase(), t.name.to_ascii_lowercase()));
}

fn resolve(map: &[(String, String)], name: &str) -> String {
    let lower = name.to_ascii_lowercase();
    map.iter().find(|(a, _)| *a == lower).map(|(_, t)| t.clone()).unwrap_or(lower)
}

fn first_select(body: &SetExpr) -> &Select {
    match body {
        SetExpr::Select(s) => s,
        SetExpr::SetOp { left, .. } => first_select(left),
    }
}

/// Splits a boolean expression on top-level ANDs.
pub fn conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn go<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary { op: BinaryOp::And, left, right } => {
                go(left, out);
                go(right, out);
            }
            other => out.push(other),
        }
    }
    go(e, &mut out);
    out
}

/// Normalises an expression to comparable text: identifiers lower-cased,
/// aliases resolved, commutative equality ordered canonically.
fn norm_expr(e: &Expr, alias_map: &[(String, String)]) -> String {
    match e {
        Expr::Column(c) => match &c.table {
            Some(t) => format!("{}.{}", resolve(alias_map, t), c.column.to_ascii_lowercase()),
            None => c.column.to_ascii_lowercase(),
        },
        Expr::Literal(l) => literal_text(l),
        Expr::Unary { op, operand } => {
            let inner = norm_expr(operand, alias_map);
            match op {
                UnaryOp::Neg => format!("-{inner}"),
                UnaryOp::Not => format!("NOT {inner}"),
            }
        }
        Expr::Binary { op, left, right } => {
            let l = norm_expr(left, alias_map);
            let r = norm_expr(right, alias_map);
            if *op == BinaryOp::Eq && l > r {
                // Canonical order for commutative equality so
                // `a.id = b.id` and `b.id = a.id` compare equal.
                format!("{r} = {l}")
            } else {
                format!("{l} {} {r}", op.sql())
            }
        }
        Expr::Function { name, distinct, args } => {
            let args_s: Vec<String> = args.iter().map(|a| norm_expr(a, alias_map)).collect();
            let d = if *distinct { "DISTINCT " } else { "" };
            format!("{}({d}{})", name.to_ascii_uppercase(), args_s.join(", "))
        }
        Expr::CountStar => "COUNT(*)".to_string(),
        Expr::InList { expr, list, negated } => {
            let mut vals: Vec<String> = list.iter().map(|v| norm_expr(v, alias_map)).collect();
            vals.sort();
            let n = if *negated { " NOT" } else { "" };
            format!("{}{n} IN ({})", norm_expr(expr, alias_map), vals.join(", "))
        }
        Expr::InSubquery { expr, subquery, negated } => {
            let n = if *negated { " NOT" } else { "" };
            format!("{}{n} IN ({})", norm_expr(expr, alias_map), query_to_sql(subquery).to_ascii_lowercase())
        }
        Expr::Between { expr, low, high, negated } => {
            let n = if *negated { " NOT" } else { "" };
            format!(
                "{}{n} BETWEEN {} AND {}",
                norm_expr(expr, alias_map),
                norm_expr(low, alias_map),
                norm_expr(high, alias_map)
            )
        }
        Expr::Like { expr, pattern, negated } => {
            let n = if *negated { " NOT" } else { "" };
            format!("{}{n} LIKE {}", norm_expr(expr, alias_map), norm_expr(pattern, alias_map))
        }
        Expr::IsNull { expr, negated } => {
            let n = if *negated { " IS NOT NULL" } else { " IS NULL" };
            format!("{}{n}", norm_expr(expr, alias_map))
        }
        Expr::Exists { subquery, negated } => {
            let n = if *negated { "NOT " } else { "" };
            format!("{n}EXISTS ({})", query_to_sql(subquery).to_ascii_lowercase())
        }
        Expr::Subquery(qq) => format!("({})", query_to_sql(qq).to_ascii_lowercase()),
        Expr::Case { .. } => {
            // CASE is rare in the workload; normalise by printing.
            let mut s = String::new();
            crate::printer::to_sql(&Statement::Select(SelectStmt {
                body: SetExpr::Select(Box::new(Select {
                    distinct: false,
                    items: vec![SelectItem::Expr { expr: e.clone(), alias: None }],
                    from: None,
                    selection: None,
                    group_by: vec![],
                    having: None,
                })),
                order_by: vec![],
                limit: None,
            }))
            .chars()
            .skip("SELECT ".len())
            .for_each(|c| s.push(c));
            s.to_ascii_lowercase()
        }
    }
}

fn literal_text(l: &Literal) -> String {
    match l {
        Literal::Int(v) => v.to_string(),
        Literal::Float(v) => format!("{v}"),
        Literal::Str(s) => format!("'{s}'"),
        Literal::Bool(b) => b.to_string(),
        Literal::Null => "NULL".to_string(),
    }
}

fn collect_values_stmt(q: &SelectStmt, out: &mut BTreeSet<String>) {
    q.walk_selects(&mut |s| {
        if let Some(w) = &s.selection {
            collect_values_expr(w, out);
        }
        if let Some(h) = &s.having {
            collect_values_expr(h, out);
        }
    });
}

fn collect_values_expr(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Literal(l) => {
            if !matches!(l, Literal::Null) {
                out.insert(literal_text(l));
            }
        }
        Expr::Unary { operand, .. } => collect_values_expr(operand, out),
        Expr::Binary { left, right, .. } => {
            collect_values_expr(left, out);
            collect_values_expr(right, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_values_expr(a, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_values_expr(expr, out);
            for v in list {
                collect_values_expr(v, out);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            collect_values_expr(expr, out);
            collect_values_expr(low, out);
            collect_values_expr(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_values_expr(expr, out);
            collect_values_expr(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_values_expr(expr, out),
        Expr::InSubquery { expr, subquery, .. } => {
            collect_values_expr(expr, out);
            collect_values_stmt(subquery, out);
        }
        Expr::Exists { subquery, .. } | Expr::Subquery(subquery) => {
            collect_values_stmt(subquery, out);
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                collect_values_expr(op, out);
            }
            for (c, r) in branches {
                collect_values_expr(c, out);
                collect_values_expr(r, out);
            }
            if let Some(el) = else_result {
                collect_values_expr(el, out);
            }
        }
        Expr::Column(_) | Expr::CountStar => {}
    }
}

impl SqlComponents {
    /// The compatibility relation of Algorithm 1: two candidate queries
    /// fall into the same cluster when their keywords and values agree.
    pub fn compatible_with(&self, other: &SqlComponents) -> bool {
        self.select == other.select
            && self.distinct == other.distinct
            && self.tables == other.tables
            && self.predicates == other.predicates
            && self.group_by == other.group_by
            && self.having == other.having
            && self.order_by == other.order_by
            && self.limit == other.limit
            && self.values == other.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_basic_components() {
        let c = extract_components(
            "SELECT name, nav FROM fund WHERE nav > 1.5 AND mgr = 'Li' ORDER BY nav DESC LIMIT 3",
        )
        .unwrap();
        assert!(c.select.contains("name"));
        assert!(c.tables.contains("fund"));
        assert_eq!(c.predicates.len(), 2);
        assert_eq!(c.order_by, vec!["nav DESC"]);
        assert_eq!(c.limit, Some((3, 0)));
        assert!(c.values.contains("'Li'"));
        assert!(c.values.contains("1.5"));
    }

    #[test]
    fn aliases_are_resolved() {
        let a = extract_components("SELECT t1.name FROM fund AS t1 WHERE t1.nav > 1").unwrap();
        let b = extract_components("SELECT fund.name FROM fund WHERE fund.nav > 1").unwrap();
        assert!(a.compatible_with(&b), "{a:?} vs {b:?}");
    }

    #[test]
    fn join_on_order_is_canonical() {
        let a = extract_components("SELECT a.x FROM a JOIN b ON a.id = b.id").unwrap();
        let b = extract_components("SELECT a.x FROM a JOIN b ON b.id = a.id").unwrap();
        assert!(a.compatible_with(&b));
    }

    #[test]
    fn where_conjunct_order_is_irrelevant() {
        let a = extract_components("SELECT x FROM t WHERE p = 1 AND q = 2").unwrap();
        let b = extract_components("SELECT x FROM t WHERE q = 2 AND p = 1").unwrap();
        assert!(a.compatible_with(&b));
    }

    #[test]
    fn in_list_order_is_irrelevant() {
        let a = extract_components("SELECT x FROM t WHERE y IN (1, 2, 3)").unwrap();
        let b = extract_components("SELECT x FROM t WHERE y IN (3, 1, 2)").unwrap();
        assert!(a.compatible_with(&b));
    }

    #[test]
    fn different_values_are_incompatible() {
        let a = extract_components("SELECT x FROM t WHERE y = 'alpha'").unwrap();
        let b = extract_components("SELECT x FROM t WHERE y = 'beta'").unwrap();
        assert!(!a.compatible_with(&b));
    }

    #[test]
    fn different_limits_are_incompatible() {
        let a = extract_components("SELECT x FROM t LIMIT 3").unwrap();
        let b = extract_components("SELECT x FROM t LIMIT 5").unwrap();
        assert!(!a.compatible_with(&b));
    }

    #[test]
    fn case_insensitive_identifiers() {
        let a = extract_components("SELECT NAME FROM FUND WHERE NAV > 1").unwrap();
        let b = extract_components("select name from fund where nav > 1").unwrap();
        assert!(a.compatible_with(&b));
    }

    #[test]
    fn unparseable_sql_yields_none() {
        assert!(extract_components("SELECT FROM WHERE").is_none());
    }

    #[test]
    fn collects_qualified_columns() {
        let c = extract_components("SELECT t1.a FROM x AS t1 JOIN y ON t1.id = y.id").unwrap();
        assert!(c.columns.contains("x.a"), "{:?}", c.columns);
        assert!(c.columns.contains("y.id"));
    }

    #[test]
    fn conjunct_splitting() {
        let Statement::Select(q) =
            parse_statement("SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3) AND d = 4").unwrap();
        let SetExpr::Select(s) = &q.body else { panic!() };
        let cs = conjuncts(s.selection.as_ref().unwrap());
        assert_eq!(cs.len(), 3);
    }
}
