//! Lightweight catalog (schema) types shared across the workspace.
//!
//! These describe the *shape* of a database — table names, column names,
//! types, human descriptions and foreign keys — without any stored data.
//! The execution engine attaches rows to them; the schema-linking model,
//! prompt builder and calibration passes only need this shape.

use serde::{Deserialize, Serialize};

/// A column's logical type. Matches what the BULL-style financial tables
/// need: identifiers/text, integers, decimals and dates (stored as text in
/// `YYYY-MM-DD` form, compared lexicographically like SQLite does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColType {
    Text,
    Int,
    Float,
    Date,
}

impl ColType {
    /// SQL type name used when rendering `CREATE TABLE` style prompts.
    pub fn sql_name(self) -> &'static str {
        match self {
            ColType::Text => "TEXT",
            ColType::Int => "INTEGER",
            ColType::Float => "REAL",
            ColType::Date => "DATE",
        }
    }
}

/// A column definition: physical (often abbreviated) name, type, and the
/// business description annotators attached to it (the paper notes BULL
/// column names are "abbreviations or vague representations", so the
/// description is what links questions to columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogColumn {
    pub name: String,
    pub ty: ColType,
    /// English business description.
    pub desc_en: String,
    /// Terse register description standing in for the Chinese annotation.
    pub desc_cn: String,
}

impl CatalogColumn {
    pub fn new(name: &str, ty: ColType, desc_en: &str, desc_cn: &str) -> Self {
        CatalogColumn {
            name: name.to_string(),
            ty,
            desc_en: desc_en.to_string(),
            desc_cn: desc_cn.to_string(),
        }
    }

    /// The description in the requested language register.
    pub fn desc(&self, lang: Lang) -> &str {
        match lang {
            Lang::En => &self.desc_en,
            Lang::Cn => &self.desc_cn,
        }
    }
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogTable {
    pub name: String,
    pub desc_en: String,
    pub desc_cn: String,
    pub columns: Vec<CatalogColumn>,
}

impl CatalogTable {
    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Looks up a column by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<&CatalogColumn> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// The description in the requested language register.
    pub fn desc(&self, lang: Lang) -> &str {
        match lang {
            Lang::En => &self.desc_en,
            Lang::Cn => &self.desc_cn,
        }
    }
}

/// A foreign-key relation `from_table.from_column -> to_table.to_column`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub from_table: String,
    pub from_column: String,
    pub to_table: String,
    pub to_column: String,
}

/// A database schema: the `S = (T, C, R)` of the paper's problem
/// formulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogSchema {
    /// Stable identifier (`fund`, `stock`, `macro`).
    pub db_id: String,
    pub tables: Vec<CatalogTable>,
    pub foreign_keys: Vec<ForeignKey>,
}

/// The two language registers of BULL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lang {
    En,
    Cn,
}

impl Lang {
    /// Short suffix used in dataset identifiers (`bull-en` / `bull-cn`).
    pub fn suffix(self) -> &'static str {
        match self {
            Lang::En => "en",
            Lang::Cn => "cn",
        }
    }
}

impl CatalogSchema {
    /// Looks up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Option<&CatalogTable> {
        self.tables.iter().find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Index of a table by (case-insensitive) name.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// True if `table.column` exists.
    pub fn has_column(&self, table: &str, column: &str) -> bool {
        self.table(table).is_some_and(|t| t.column(column).is_some())
    }

    /// All tables containing a column of the given name.
    pub fn tables_with_column(&self, column: &str) -> Vec<&CatalogTable> {
        self.tables.iter().filter(|t| t.column(column).is_some()).collect()
    }

    /// Every column name in the schema (may contain duplicates across
    /// tables).
    pub fn all_column_names(&self) -> Vec<&str> {
        self.tables.iter().flat_map(|t| t.columns.iter().map(|c| c.name.as_str())).collect()
    }

    /// Total number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum::<usize>()
    }

    /// The foreign key joining two tables, if declared (in either
    /// direction).
    pub fn foreign_key_between(&self, a: &str, b: &str) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| {
            (fk.from_table.eq_ignore_ascii_case(a) && fk.to_table.eq_ignore_ascii_case(b))
                || (fk.from_table.eq_ignore_ascii_case(b) && fk.to_table.eq_ignore_ascii_case(a))
        })
    }

    /// Restricts the schema to the given tables, and within each table to
    /// the given columns (plus key columns needed for joins). Used to build
    /// concise prompts after schema linking.
    pub fn project(&self, tables: &[String], columns: &[(String, String)]) -> CatalogSchema {
        let keep_table = |name: &str| tables.iter().any(|t| t.eq_ignore_ascii_case(name));
        let mut out_tables = Vec::new();
        for t in &self.tables {
            if !keep_table(&t.name) {
                continue;
            }
            let mut cols: Vec<CatalogColumn> = t
                .columns
                .iter()
                .filter(|c| {
                    columns.iter().any(|(tb, cn)| {
                        tb.eq_ignore_ascii_case(&t.name) && cn.eq_ignore_ascii_case(&c.name)
                    })
                })
                .cloned()
                .collect();
            // Always keep columns that participate in FKs between kept
            // tables so joins remain expressible.
            for fk in &self.foreign_keys {
                if keep_table(&fk.from_table) && keep_table(&fk.to_table) {
                    let fk_col = if fk.from_table.eq_ignore_ascii_case(&t.name) {
                        Some(&fk.from_column)
                    } else if fk.to_table.eq_ignore_ascii_case(&t.name) {
                        Some(&fk.to_column)
                    } else {
                        None
                    };
                    if let Some(colname) = fk_col {
                        if !cols.iter().any(|c| c.name.eq_ignore_ascii_case(colname)) {
                            if let Some(c) = t.column(colname) {
                                cols.push(c.clone());
                            }
                        }
                    }
                }
            }
            out_tables.push(CatalogTable {
                name: t.name.clone(),
                desc_en: t.desc_en.clone(),
                desc_cn: t.desc_cn.clone(),
                columns: cols,
            });
        }
        let fks = self
            .foreign_keys
            .iter()
            .filter(|fk| keep_table(&fk.from_table) && keep_table(&fk.to_table))
            .cloned()
            .collect();
        CatalogSchema { db_id: self.db_id.clone(), tables: out_tables, foreign_keys: fks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> CatalogSchema {
        CatalogSchema {
            db_id: "toy".into(),
            tables: vec![
                CatalogTable {
                    name: "fund".into(),
                    desc_en: "funds".into(),
                    desc_cn: "funds".into(),
                    columns: vec![
                        CatalogColumn::new("fid", ColType::Int, "fund id", "fund id"),
                        CatalogColumn::new("fname", ColType::Text, "fund name", "fund name"),
                    ],
                },
                CatalogTable {
                    name: "nav".into(),
                    desc_en: "net asset values".into(),
                    desc_cn: "nav".into(),
                    columns: vec![
                        CatalogColumn::new("fid", ColType::Int, "fund id", "fund id"),
                        CatalogColumn::new("nv", ColType::Float, "net value", "net value"),
                    ],
                },
            ],
            foreign_keys: vec![ForeignKey {
                from_table: "nav".into(),
                from_column: "fid".into(),
                to_table: "fund".into(),
                to_column: "fid".into(),
            }],
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = toy();
        assert!(s.table("FUND").is_some());
        assert!(s.has_column("fund", "FNAME"));
        assert!(!s.has_column("fund", "nv"));
    }

    #[test]
    fn tables_with_column_finds_all() {
        let s = toy();
        let ts = s.tables_with_column("fid");
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn fk_lookup_works_both_directions() {
        let s = toy();
        assert!(s.foreign_key_between("fund", "nav").is_some());
        assert!(s.foreign_key_between("nav", "fund").is_some());
        assert!(s.foreign_key_between("fund", "fund").is_none());
    }

    #[test]
    fn projection_keeps_fk_columns() {
        let s = toy();
        let p = s.project(
            &["fund".into(), "nav".into()],
            &[("nav".into(), "nv".into()), ("fund".into(), "fname".into())],
        );
        // fid must survive in both tables because the FK needs it.
        assert!(p.has_column("fund", "fid"));
        assert!(p.has_column("nav", "fid"));
        assert!(p.has_column("nav", "nv"));
        assert_eq!(p.foreign_keys.len(), 1);
    }

    #[test]
    fn projection_drops_unlisted_tables() {
        let s = toy();
        let p = s.project(&["fund".into()], &[("fund".into(), "fname".into())]);
        assert_eq!(p.tables.len(), 1);
        assert!(p.foreign_keys.is_empty());
    }

    #[test]
    fn column_count_sums_tables() {
        assert_eq!(toy().column_count(), 4);
    }
}
