//! Abstract syntax tree for the analytic SELECT dialect.
//!
//! The tree is deliberately close to the textbook SQL grammar: a
//! [`Statement`] wraps a [`SelectStmt`], whose body is a [`SetExpr`] (a
//! plain [`Select`] or a set operation over two bodies), followed by the
//! statement-level `ORDER BY` / `LIMIT`.

use serde::{Deserialize, Serialize};

/// A complete parsed SQL statement. Only queries are supported — the BULL
/// workload (like Spider and BIRD) is read-only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    Select(SelectStmt),
}

/// A query: set-expression body plus trailing ordering and limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStmt {
    pub body: SetExpr,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<Limit>,
}

/// The body of a query: either a single SELECT block or a set operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SetExpr {
    Select(Box<Select>),
    SetOp { op: SetOp, all: bool, left: Box<SetExpr>, right: Box<SetExpr> },
}

/// Set operations between SELECT blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<FromClause>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// An entry of the SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// The FROM clause: a base table followed by zero or more joins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FromClause {
    pub base: TableRef,
    pub joins: Vec<Join>,
}

/// A (possibly aliased) table reference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// Creates an unaliased reference.
    pub fn new(name: impl Into<String>) -> Self {
        TableRef { name: name.into(), alias: None }
    }

    /// The name this table is known by inside the query.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// A join onto the preceding FROM items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    pub join_type: JoinType,
    pub table: TableRef,
    /// `None` models the malformed `JOIN t ON` / bare `JOIN t` output the
    /// calibration pass repairs; the executor rejects it.
    pub on: Option<Expr>,
}

/// Supported join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinType {
    Inner,
    Left,
    Right,
    Cross,
}

/// A key of the ORDER BY clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// `LIMIT n [OFFSET m]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Limit {
    pub count: u64,
    pub offset: u64,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    Column(ColumnRef),
    Literal(Literal),
    Unary { op: UnaryOp, operand: Box<Expr> },
    Binary { op: BinaryOp, left: Box<Expr>, right: Box<Expr> },
    /// Function call: aggregates (`COUNT`, `SUM`, …) and scalar functions.
    Function { name: String, distinct: bool, args: Vec<Expr> },
    /// `COUNT(*)` — kept distinct from `Function` so printing and
    /// component extraction stay exact.
    CountStar,
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    InSubquery { expr: Box<Expr>, subquery: Box<SelectStmt>, negated: bool },
    Between { expr: Box<Expr>, low: Box<Expr>, high: Box<Expr>, negated: bool },
    Like { expr: Box<Expr>, pattern: Box<Expr>, negated: bool },
    IsNull { expr: Box<Expr>, negated: bool },
    Exists { subquery: Box<SelectStmt>, negated: bool },
    /// A parenthesised scalar subquery used as a value.
    Subquery(Box<SelectStmt>),
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_result: Option<Box<Expr>>,
    },
}

/// A column reference, optionally qualified by table name or alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColumnRef {
    /// Creates an unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef { table: None, column: column.into() }
    }

    /// Creates a qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef { table: Some(table.into()), column: column.into() }
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Binary operators, both arithmetic and boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinaryOp {
    /// True for comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Neq | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// The SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}

/// The aggregate function names the dialect recognises.
pub const AGGREGATES: &[&str] = &["COUNT", "SUM", "AVG", "MIN", "MAX"];

/// True if `name` (any case) is an aggregate function.
pub fn is_aggregate(name: &str) -> bool {
    AGGREGATES.iter().any(|a| a.eq_ignore_ascii_case(name))
}

impl SelectStmt {
    /// Walks every SELECT block of the statement (including subqueries),
    /// applying `f` to each.
    pub fn walk_selects<'a>(&'a self, f: &mut impl FnMut(&'a Select)) {
        walk_set_expr(&self.body, f);
        for item in &self.order_by {
            walk_expr_selects(&item.expr, f);
        }
    }

    /// Collects every table referenced anywhere in the statement.
    pub fn referenced_tables(&self) -> Vec<&TableRef> {
        let mut out = Vec::new();
        self.walk_selects(&mut |s| {
            if let Some(from) = &s.from {
                out.push(&from.base);
                for j in &from.joins {
                    out.push(&j.table);
                }
            }
        });
        out
    }

    /// Collects every column reference anywhere in the statement.
    pub fn referenced_columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.walk_selects(&mut |s| {
            for item in &s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    collect_columns(expr, &mut out);
                }
            }
            if let Some(w) = &s.selection {
                collect_columns(w, &mut out);
            }
            for g in &s.group_by {
                collect_columns(g, &mut out);
            }
            if let Some(h) = &s.having {
                collect_columns(h, &mut out);
            }
            if let Some(from) = &s.from {
                for j in &from.joins {
                    if let Some(on) = &j.on {
                        collect_columns(on, &mut out);
                    }
                }
            }
        });
        for item in &self.order_by {
            collect_columns(&item.expr, &mut out);
        }
        out
    }
}

fn walk_set_expr<'a>(body: &'a SetExpr, f: &mut impl FnMut(&'a Select)) {
    match body {
        SetExpr::Select(s) => {
            f(s);
            // Recurse into subqueries reachable from this block.
            let mut visit = |e: &'a Expr| walk_expr_selects(e, f);
            for item in &s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    visit(expr);
                }
            }
            if let Some(w) = &s.selection {
                visit(w);
            }
            if let Some(h) = &s.having {
                visit(h);
            }
            if let Some(from) = &s.from {
                for j in &from.joins {
                    if let Some(on) = &j.on {
                        visit(on);
                    }
                }
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            walk_set_expr(left, f);
            walk_set_expr(right, f);
        }
    }
}

fn walk_expr_selects<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Select)) {
    match expr {
        Expr::Unary { operand, .. } => walk_expr_selects(operand, f),
        Expr::Binary { left, right, .. } => {
            walk_expr_selects(left, f);
            walk_expr_selects(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                walk_expr_selects(a, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            walk_expr_selects(expr, f);
            for e in list {
                walk_expr_selects(e, f);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            walk_expr_selects(expr, f);
            walk_set_expr(&subquery.body, f);
        }
        Expr::Between { expr, low, high, .. } => {
            walk_expr_selects(expr, f);
            walk_expr_selects(low, f);
            walk_expr_selects(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr_selects(expr, f);
            walk_expr_selects(pattern, f);
        }
        Expr::IsNull { expr, .. } => walk_expr_selects(expr, f),
        Expr::Exists { subquery, .. } | Expr::Subquery(subquery) => walk_set_expr(&subquery.body, f),
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                walk_expr_selects(op, f);
            }
            for (c, r) in branches {
                walk_expr_selects(c, f);
                walk_expr_selects(r, f);
            }
            if let Some(e) = else_result {
                walk_expr_selects(e, f);
            }
        }
        Expr::Column(_) | Expr::Literal(_) | Expr::CountStar => {}
    }
}

/// Appends every [`ColumnRef`] inside `expr` (not descending into
/// subqueries, whose columns belong to their own scope).
pub fn collect_columns<'a>(expr: &'a Expr, out: &mut Vec<&'a ColumnRef>) {
    match expr {
        Expr::Column(c) => out.push(c),
        Expr::Unary { operand, .. } => collect_columns(operand, out),
        Expr::Binary { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_columns(a, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_columns(expr, out);
            for e in list {
                collect_columns(e, out);
            }
        }
        Expr::InSubquery { expr, .. } => collect_columns(expr, out),
        Expr::Between { expr, low, high, .. } => {
            collect_columns(expr, out);
            collect_columns(low, out);
            collect_columns(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_columns(expr, out);
            collect_columns(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_columns(expr, out),
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                collect_columns(op, out);
            }
            for (c, r) in branches {
                collect_columns(c, out);
                collect_columns(r, out);
            }
            if let Some(e) = else_result {
                collect_columns(e, out);
            }
        }
        Expr::Literal(_) | Expr::CountStar | Expr::Exists { .. } | Expr::Subquery(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ref_effective_name_prefers_alias() {
        let t = TableRef { name: "lc_sharestru".into(), alias: Some("t1".into()) };
        assert_eq!(t.effective_name(), "t1");
        assert_eq!(TableRef::new("mf_fundnav").effective_name(), "mf_fundnav");
    }

    #[test]
    fn aggregate_detection_ignores_case() {
        assert!(is_aggregate("count"));
        assert!(is_aggregate("SUM"));
        assert!(!is_aggregate("lower"));
    }

    #[test]
    fn comparison_classification() {
        assert!(BinaryOp::Le.is_comparison());
        assert!(!BinaryOp::And.is_comparison());
        assert_eq!(BinaryOp::Neq.sql(), "!=");
    }
}
