//! SQL substrate for the FinSQL reproduction.
//!
//! This crate implements everything the rest of the workspace needs to
//! *understand* SQL text without executing it:
//!
//! - a lexer and recursive-descent parser for an analytic SELECT dialect
//!   ([`lexer`], [`parser`], [`ast`]),
//! - a canonical pretty-printer ([`printer`]),
//! - SQL-skeleton extraction as used by the paper's rule-based
//!   augmentation and DAIL-style example selection ([`skeleton`]),
//! - keyword-component extraction (`f2` of the paper's Algorithm 1) used
//!   by the non-execution self-consistency clustering ([`components`]),
//! - typo repair (`f1` of Algorithm 1) ([`repair`]),
//! - fuzzy identifier matching used both by repair and by table/column
//!   alignment (`f3`) ([`fuzzy`]),
//! - incremental prefix-validity checking used by the PICARD-style
//!   constrained-decoding baseline ([`incremental`]),
//! - lightweight catalog types ([`catalog`]) shared by the execution
//!   engine, the dataset generator and the schema-linking model.
//!
//! The dialect covers the subset of SQL exercised by the BULL-style
//! financial workloads: joins, aggregation, grouping, having, ordering,
//! limits, `IN`/scalar subqueries, `BETWEEN`, `LIKE`, set operations.

#![forbid(unsafe_code)]

pub mod ast;
pub mod catalog;
pub mod components;
pub mod error;
pub mod fuzzy;
pub mod incremental;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod repair;
pub mod skeleton;
pub mod token;

pub use ast::{
    BinaryOp, ColumnRef, Expr, FromClause, Join, JoinType, Limit, Literal, OrderByItem, Select,
    SelectItem, SelectStmt, SetExpr, SetOp, Statement, TableRef, UnaryOp,
};
pub use catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType, ForeignKey};
pub use error::{ParseError, Result};
pub use parser::parse_statement;
pub use printer::to_sql;
pub use skeleton::skeleton_of;
