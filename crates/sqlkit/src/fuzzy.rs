//! Fuzzy identifier matching.
//!
//! When an LLM hallucinates a column like `aquirementrium` (paper,
//! Figure 12) the calibration pass replaces it with the schema column most
//! similar "in terms of characters". We use Levenshtein distance with a
//! relative threshold, breaking ties by longest common prefix.

/// Levenshtein edit distance between two strings (over chars).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalised string similarity in `[0, 1]`.
pub fn similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la == 0 && lb == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / la.max(lb) as f64
}

/// Length of the common prefix of two strings (in chars).
fn common_prefix_len(a: &str, b: &str) -> usize {
    a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count()
}

/// Finds the candidate most similar to `target` (case-insensitively),
/// requiring at least `min_similarity`. Ties break toward the longer
/// common prefix, then lexicographically for determinism.
pub fn best_match<'a, I>(target: &str, candidates: I, min_similarity: f64) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let target_lower = target.to_ascii_lowercase();
    let mut best: Option<(&str, f64, usize)> = None;
    for cand in candidates {
        let cand_lower = cand.to_ascii_lowercase();
        let sim = similarity(&target_lower, &cand_lower);
        if sim < min_similarity {
            continue;
        }
        let prefix = common_prefix_len(&target_lower, &cand_lower);
        let better = match best {
            None => true,
            Some((bc, bs, bp)) => {
                sim > bs || (sim == bs && prefix > bp) || (sim == bs && prefix == bp && cand < bc)
            }
        };
        if better {
            best = Some((cand, sim, prefix));
        }
    }
    best.map(|(c, _, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
    }

    #[test]
    fn similarity_is_normalised() {
        assert_eq!(similarity("abc", "abc"), 1.0);
        assert!(similarity("abc", "xyz") < 0.01);
        assert_eq!(similarity("", ""), 1.0);
    }

    #[test]
    fn recovers_paper_figure12_typo() {
        // Paper: model generated `aquirementrium`; the true column is
        // `aquireramount`.
        let cols = ["aquireramount", "chinameabbr", "firstindustryname", "secucode"];
        assert_eq!(best_match("aquirementrium", cols, 0.4), Some("aquireramount"));
    }

    #[test]
    fn respects_min_similarity() {
        let cols = ["alpha", "beta"];
        assert_eq!(best_match("zzzzzz", cols, 0.6), None);
    }

    #[test]
    fn match_is_case_insensitive() {
        let cols = ["SecuCode"];
        assert_eq!(best_match("secucode", cols, 0.9), Some("SecuCode"));
    }

    #[test]
    fn prefix_breaks_ties() {
        // Both candidates at the same edit distance from the target; prefer
        // the common-prefix one.
        let cols = ["navx", "xnav"];
        assert_eq!(best_match("nav", cols, 0.5), Some("navx"));
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        }

        #[test]
        fn triangle_inequality(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
        }

        #[test]
        fn exact_candidate_always_wins(t in "[a-z]{1,10}") {
            let other = format!("{t}zz");
            let cands = [t.as_str(), other.as_str()];
            prop_assert_eq!(best_match(&t, cands, 0.0), Some(t.as_str()));
        }
    }
}
