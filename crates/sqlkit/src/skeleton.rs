//! SQL-skeleton extraction.
//!
//! A skeleton keeps every SQL keyword and operator but replaces
//! identifiers and literals with `_` placeholders — the representation
//! used by the paper's rule-based augmentation (Figure 7) and by
//! DAIL-SQL-style example selection, which matches queries by structural
//! similarity.

use crate::ast::*;
use crate::parser::parse_statement;

/// Extracts the skeleton of a SQL string. Returns `None` when the SQL does
/// not parse.
pub fn skeleton_of(sql: &str) -> Option<String> {
    match parse_statement(sql).ok()? {
        Statement::Select(q) => Some(query_skeleton(&q)),
    }
}

/// Extracts the skeleton of an already-parsed query.
pub fn query_skeleton(q: &SelectStmt) -> String {
    let mut out = String::new();
    set_expr_skeleton(&mut out, &q.body);
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY");
        for (i, item) in q.order_by.iter().enumerate() {
            out.push_str(if i > 0 { " , " } else { " " });
            expr_skeleton(&mut out, &item.expr);
            out.push_str(if item.desc { " DESC" } else { " ASC" });
        }
    }
    if q.limit.is_some() {
        out.push_str(" LIMIT _");
    }
    out
}

fn set_expr_skeleton(out: &mut String, body: &SetExpr) {
    match body {
        SetExpr::Select(s) => select_skeleton(out, s),
        SetExpr::SetOp { op, all, left, right } => {
            set_expr_skeleton(out, left);
            out.push(' ');
            out.push_str(match op {
                SetOp::Union => "UNION",
                SetOp::Intersect => "INTERSECT",
                SetOp::Except => "EXCEPT",
            });
            if *all {
                out.push_str(" ALL");
            }
            out.push(' ');
            set_expr_skeleton(out, right);
        }
    }
}

fn select_skeleton(out: &mut String, s: &Select) {
    out.push_str("SELECT");
    if s.distinct {
        out.push_str(" DISTINCT");
    }
    for (i, item) in s.items.iter().enumerate() {
        out.push_str(if i > 0 { " , " } else { " " });
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => out.push('*'),
            SelectItem::Expr { expr, .. } => expr_skeleton(out, expr),
        }
    }
    if let Some(from) = &s.from {
        out.push_str(" FROM _");
        for j in &from.joins {
            out.push_str(match j.join_type {
                JoinType::Inner => " JOIN _",
                JoinType::Left => " LEFT JOIN _",
                JoinType::Right => " RIGHT JOIN _",
                JoinType::Cross => " CROSS JOIN _",
            });
            if j.on.is_some() {
                out.push_str(" ON _ = _");
            }
        }
    }
    if let Some(w) = &s.selection {
        out.push_str(" WHERE ");
        expr_skeleton(out, w);
    }
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY");
        for (i, _) in s.group_by.iter().enumerate() {
            out.push_str(if i > 0 { " , _" } else { " _" });
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        expr_skeleton(out, h);
    }
}

fn expr_skeleton(out: &mut String, e: &Expr) {
    match e {
        Expr::Column(_) | Expr::Literal(_) => out.push('_'),
        Expr::Unary { op, operand } => {
            match op {
                UnaryOp::Neg => out.push('-'),
                UnaryOp::Not => out.push_str("NOT "),
            }
            expr_skeleton(out, operand);
        }
        Expr::Binary { op, left, right } => {
            expr_skeleton(out, left);
            out.push(' ');
            out.push_str(op.sql());
            out.push(' ');
            expr_skeleton(out, right);
        }
        Expr::Function { name, distinct, args } => {
            out.push_str(name);
            out.push('(');
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, _) in args.iter().enumerate() {
                out.push_str(if i > 0 { ", _" } else { "_" });
            }
            out.push(')');
        }
        Expr::CountStar => out.push_str("COUNT(*)"),
        Expr::InList { expr, negated, .. } => {
            expr_skeleton(out, expr);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (_)");
        }
        Expr::InSubquery { expr, subquery, negated } => {
            expr_skeleton(out, expr);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            out.push_str(&query_skeleton(subquery));
            out.push(')');
        }
        Expr::Between { expr, negated, .. } => {
            expr_skeleton(out, expr);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" BETWEEN _ AND _");
        }
        Expr::Like { expr, negated, .. } => {
            expr_skeleton(out, expr);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" LIKE _");
        }
        Expr::IsNull { expr, negated } => {
            expr_skeleton(out, expr);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::Exists { subquery, negated } => {
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            out.push_str(&query_skeleton(subquery));
            out.push(')');
        }
        Expr::Subquery(q) => {
            out.push('(');
            out.push_str(&query_skeleton(q));
            out.push(')');
        }
        Expr::Case { branches, else_result, .. } => {
            out.push_str("CASE");
            for _ in branches {
                out.push_str(" WHEN _ THEN _");
            }
            if else_result.is_some() {
                out.push_str(" ELSE _");
            }
            out.push_str(" END");
        }
    }
}

/// Structural similarity between two skeletons in `[0, 1]`: token-level
/// Jaccard similarity over skeleton token multisets combined with a
/// normalised edit-distance term. Used by DAIL-style example selection.
pub fn skeleton_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let ta: Vec<&str> = a.split_whitespace().collect();
    let tb: Vec<&str> = b.split_whitespace().collect();
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    // Multiset intersection size.
    let mut counts = std::collections::HashMap::new();
    for t in &ta {
        *counts.entry(*t).or_insert(0i64) += 1;
    }
    let mut inter = 0i64;
    for t in &tb {
        let c = counts.entry(*t).or_insert(0);
        if *c > 0 {
            inter += 1;
            *c -= 1;
        }
    }
    let jaccard = inter as f64 / (ta.len() + tb.len() - inter as usize) as f64;
    // Token-level edit distance, normalised.
    let dist = token_edit_distance(&ta, &tb);
    let edit = 1.0 - dist as f64 / ta.len().max(tb.len()) as f64;
    0.5 * jaccard + 0.5 * edit
}

/// Levenshtein distance over token sequences.
fn token_edit_distance(a: &[&str], b: &[&str]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ta) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, tb) in b.iter().enumerate() {
            let cost = usize::from(ta != tb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_skeleton() {
        assert_eq!(
            skeleton_of("SELECT name FROM fund WHERE nav > 1.5").unwrap(),
            "SELECT _ FROM _ WHERE _ > _"
        );
    }

    #[test]
    fn skeleton_with_join_group_order() {
        let s = skeleton_of(
            "SELECT a.x, COUNT(*) FROM a JOIN b ON a.id = b.id GROUP BY a.x ORDER BY COUNT(*) DESC LIMIT 3",
        )
        .unwrap();
        assert_eq!(
            s,
            "SELECT _ , COUNT(*) FROM _ JOIN _ ON _ = _ GROUP BY _ ORDER BY COUNT(*) DESC LIMIT _"
        );
    }

    #[test]
    fn skeleton_hides_literals_and_identifiers() {
        let a = skeleton_of("SELECT x FROM t WHERE y = 'abc'").unwrap();
        let b = skeleton_of("SELECT z FROM u WHERE w = 'def'").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn skeleton_of_subquery() {
        let s = skeleton_of("SELECT a FROM t WHERE x IN (SELECT x FROM u)").unwrap();
        assert_eq!(s, "SELECT _ FROM _ WHERE _ IN (SELECT _ FROM _)");
    }

    #[test]
    fn invalid_sql_yields_none() {
        assert!(skeleton_of("SELEC a FROM").is_none());
    }

    #[test]
    fn similarity_bounds() {
        let a = "SELECT _ FROM _ WHERE _ > _";
        let b = "SELECT _ FROM _ WHERE _ > _ ORDER BY _ DESC LIMIT _";
        let s = skeleton_similarity(a, b);
        assert!(s > 0.0 && s < 1.0);
        assert_eq!(skeleton_similarity(a, a), 1.0);
        assert!(skeleton_similarity(a, b) > skeleton_similarity(a, "UNION"));
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = "SELECT _ FROM _";
        let b = "SELECT _ , _ FROM _ WHERE _ = _";
        assert!((skeleton_similarity(a, b) - skeleton_similarity(b, a)).abs() < 1e-12);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(token_edit_distance(&["a", "b"], &["a", "b"]), 0);
        assert_eq!(token_edit_distance(&["a"], &["b"]), 1);
        assert_eq!(token_edit_distance(&[], &["a", "b"]), 2);
    }
}
