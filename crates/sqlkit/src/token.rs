//! Token model for the SQL lexer.

use std::fmt;

/// A lexed token together with its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub pos: usize,
}

/// The kinds of token the dialect distinguishes.
///
/// Keywords are lexed as [`TokenKind::Keyword`] with an upper-cased text so
/// parsing is case-insensitive; everything else that looks like a word is an
/// [`TokenKind::Ident`] preserving the original spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A reserved SQL keyword, stored upper-case (e.g. `SELECT`).
    Keyword(String),
    /// A bare identifier (table, column, alias), original case preserved.
    Ident(String),
    /// A double-quoted or back-quoted identifier.
    QuotedIdent(String),
    /// An integer or decimal literal, original text preserved.
    Number(String),
    /// A single-quoted string literal with quotes stripped and escapes
    /// (`''`) resolved.
    Str(String),
    /// Punctuation and operators.
    Symbol(Symbol),
}

/// Punctuation and operator symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    /// `==` — not valid SQL, but emitted by LLMs; the lexer keeps it so the
    /// repair pass can normalise it.
    DoubleEq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Symbol::LParen => "(",
            Symbol::RParen => ")",
            Symbol::Comma => ",",
            Symbol::Dot => ".",
            Symbol::Semicolon => ";",
            Symbol::Plus => "+",
            Symbol::Minus => "-",
            Symbol::Star => "*",
            Symbol::Slash => "/",
            Symbol::Percent => "%",
            Symbol::Eq => "=",
            Symbol::DoubleEq => "==",
            Symbol::Neq => "!=",
            Symbol::Lt => "<",
            Symbol::Le => "<=",
            Symbol::Gt => ">",
            Symbol::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// The reserved words of the dialect. Anything else lexes as an identifier.
pub const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC",
    "LIMIT", "OFFSET", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "AS", "AND",
    "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL", "EXISTS", "UNION", "INTERSECT", "EXCEPT",
    "ALL", "CASE", "WHEN", "THEN", "ELSE", "END", "TRUE", "FALSE",
];

/// Returns the canonical keyword spelling if `word` is reserved.
pub fn keyword_of(word: &str) -> Option<&'static str> {
    let upper = word.to_ascii_uppercase();
    KEYWORDS.iter().copied().find(|k| *k == upper)
}

impl TokenKind {
    /// True if this token is the given keyword (which must be upper-case).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Keyword(k) if k == kw)
    }

    /// True if this token is the given symbol.
    pub fn is_symbol(&self, sym: Symbol) -> bool {
        matches!(self, TokenKind::Symbol(s) if *s == sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(keyword_of("select"), Some("SELECT"));
        assert_eq!(keyword_of("SeLeCt"), Some("SELECT"));
        assert_eq!(keyword_of("revenue"), None);
    }

    #[test]
    fn symbol_display_round_trips() {
        assert_eq!(Symbol::Le.to_string(), "<=");
        assert_eq!(Symbol::DoubleEq.to_string(), "==");
    }

    #[test]
    fn token_kind_predicates() {
        let t = TokenKind::Keyword("SELECT".into());
        assert!(t.is_keyword("SELECT"));
        assert!(!t.is_keyword("FROM"));
        let s = TokenKind::Symbol(Symbol::Comma);
        assert!(s.is_symbol(Symbol::Comma));
        assert!(!s.is_symbol(Symbol::Dot));
    }
}
