//! Property tests: printing then re-parsing any generated AST yields the
//! same AST (up to the printer's canonicalisation), and skeletons are
//! stable under identifier renaming.

use proptest::prelude::*;
use sqlkit::ast::*;
use sqlkit::{parse_statement, to_sql};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_filter("not a keyword", |s| {
        sqlkit::token::keyword_of(s).is_none()
    })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1000i64..1000).prop_map(Literal::Int),
        (-100.0f64..100.0).prop_map(|v| Literal::Float((v * 100.0).round() / 100.0)),
        "[a-zA-Z0-9 ']{0,12}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
        Just(Literal::Null),
    ]
}

fn column() -> impl Strategy<Value = Expr> {
    (proptest::option::of(ident()), ident())
        .prop_map(|(table, column)| Expr::Column(ColumnRef { table, column }))
}

fn scalar_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![column(), literal().prop_map(Expr::Literal)];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arith_op()).prop_map(|(l, r, op)| Expr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Neg, operand: Box::new(e) }),
            (ident(), proptest::collection::vec(inner, 1..3)).prop_map(|(name, args)| {
                Expr::Function { name: name.to_ascii_uppercase(), distinct: false, args }
            }),
        ]
    })
}

fn arith_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
    ]
}

fn cmp_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Eq),
        Just(BinaryOp::Neq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
    ]
}

fn predicate() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        (scalar_expr(), scalar_expr(), cmp_op()).prop_map(|(l, r, op)| Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }),
        (column(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
            expr: Box::new(e),
            negated,
        }),
        (column(), proptest::collection::vec(literal().prop_map(Expr::Literal), 1..4), any::<bool>())
            .prop_map(|(e, list, negated)| Expr::InList { expr: Box::new(e), list, negated }),
        (column(), "[a-z%]{1,8}", any::<bool>()).prop_map(|(e, pat, negated)| Expr::Like {
            expr: Box::new(e),
            pattern: Box::new(Expr::Literal(Literal::Str(pat))),
            negated,
        }),
    ];
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(l),
                right: Box::new(r),
            }),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(l),
                right: Box::new(r),
            }),
        ]
    })
}

fn table_ref() -> impl Strategy<Value = TableRef> {
    (ident(), proptest::option::of(ident())).prop_map(|(name, alias)| TableRef { name, alias })
}

fn select() -> impl Strategy<Value = Select> {
    (
        any::<bool>(),
        proptest::collection::vec(
            (scalar_expr(), proptest::option::of(ident()))
                .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            1..4,
        ),
        table_ref(),
        proptest::collection::vec(
            (table_ref(), predicate()).prop_map(|(table, on)| Join {
                join_type: JoinType::Inner,
                table,
                on: Some(on),
            }),
            0..2,
        ),
        proptest::option::of(predicate()),
        proptest::collection::vec(column(), 0..2),
    )
        .prop_map(|(distinct, items, base, joins, selection, group_by)| Select {
            distinct,
            items,
            from: Some(FromClause { base, joins }),
            selection,
            group_by,
            having: None,
        })
}

fn query() -> impl Strategy<Value = SelectStmt> {
    (
        select(),
        proptest::collection::vec((column(), any::<bool>()), 0..2),
        proptest::option::of((1u64..50, 0u64..5)),
    )
        .prop_map(|(s, order, limit)| SelectStmt {
            body: SetExpr::Select(Box::new(s)),
            order_by: order.into_iter().map(|(expr, desc)| OrderByItem { expr, desc }).collect(),
            limit: limit.map(|(count, offset)| Limit { count, offset }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse → print is a fixed point.
    #[test]
    fn printing_round_trips(q in query()) {
        let stmt = Statement::Select(q);
        let printed = to_sql(&stmt);
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {printed}\n{e}"));
        let reprinted = to_sql(&reparsed);
        prop_assert_eq!(&printed, &reprinted, "not canonical: {}", printed);
    }

    /// Skeletons ignore identifier and literal content.
    #[test]
    fn skeleton_is_identifier_invariant(q in query()) {
        let stmt = Statement::Select(q);
        let printed = to_sql(&stmt);
        if let Some(skel) = sqlkit::skeleton_of(&printed) {
            prop_assert!(!skel.is_empty());
            // Re-parsing the skeleton's source and re-extracting is stable.
            prop_assert_eq!(sqlkit::skeleton_of(&printed), Some(skel));
        }
    }

    /// Component extraction never panics and is deterministic on any
    /// parseable SQL.
    #[test]
    fn components_are_stable(q in query()) {
        let printed = to_sql(&Statement::Select(q));
        let a = sqlkit::components::extract_components(&printed);
        let b = sqlkit::components::extract_components(&printed);
        prop_assert_eq!(a, b);
    }
}
