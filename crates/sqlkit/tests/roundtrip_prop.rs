//! Property tests: printing then re-parsing any generated AST yields the
//! same AST (up to the printer's canonicalisation), skeletons are
//! invariant under literal and identifier renaming, and the repair path
//! (`normalize_text` / `repair_statement`) neither panics nor breaks
//! parseability on any generated query.

use proptest::prelude::*;
use sqlkit::ast::*;
use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType};
use sqlkit::repair::{normalize_text, repair_statement};
use sqlkit::{parse_statement, to_sql};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_filter("not a keyword", |s| {
        sqlkit::token::keyword_of(s).is_none()
    })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1000i64..1000).prop_map(Literal::Int),
        (-100.0f64..100.0).prop_map(|v| Literal::Float((v * 100.0).round() / 100.0)),
        "[a-zA-Z0-9 ']{0,12}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
        Just(Literal::Null),
    ]
}

fn column() -> impl Strategy<Value = Expr> {
    (proptest::option::of(ident()), ident())
        .prop_map(|(table, column)| Expr::Column(ColumnRef { table, column }))
}

fn scalar_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![column(), literal().prop_map(Expr::Literal)];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arith_op()).prop_map(|(l, r, op)| Expr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Neg, operand: Box::new(e) }),
            (ident(), proptest::collection::vec(inner, 1..3)).prop_map(|(name, args)| {
                Expr::Function { name: name.to_ascii_uppercase(), distinct: false, args }
            }),
        ]
    })
}

fn arith_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
    ]
}

fn cmp_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Eq),
        Just(BinaryOp::Neq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
    ]
}

fn predicate() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        (scalar_expr(), scalar_expr(), cmp_op()).prop_map(|(l, r, op)| Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }),
        (column(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
            expr: Box::new(e),
            negated,
        }),
        (column(), proptest::collection::vec(literal().prop_map(Expr::Literal), 1..4), any::<bool>())
            .prop_map(|(e, list, negated)| Expr::InList { expr: Box::new(e), list, negated }),
        (column(), "[a-z%]{1,8}", any::<bool>()).prop_map(|(e, pat, negated)| Expr::Like {
            expr: Box::new(e),
            pattern: Box::new(Expr::Literal(Literal::Str(pat))),
            negated,
        }),
    ];
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(l),
                right: Box::new(r),
            }),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(l),
                right: Box::new(r),
            }),
        ]
    })
}

fn table_ref() -> impl Strategy<Value = TableRef> {
    (ident(), proptest::option::of(ident())).prop_map(|(name, alias)| TableRef { name, alias })
}

fn select() -> impl Strategy<Value = Select> {
    (
        any::<bool>(),
        proptest::collection::vec(
            (scalar_expr(), proptest::option::of(ident()))
                .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            1..4,
        ),
        table_ref(),
        proptest::collection::vec(
            (table_ref(), predicate()).prop_map(|(table, on)| Join {
                join_type: JoinType::Inner,
                table,
                on: Some(on),
            }),
            0..2,
        ),
        proptest::option::of(predicate()),
        proptest::collection::vec(column(), 0..2),
    )
        .prop_map(|(distinct, items, base, joins, selection, group_by)| Select {
            distinct,
            items,
            from: Some(FromClause { base, joins }),
            selection,
            group_by,
            having: None,
        })
}

fn query() -> impl Strategy<Value = SelectStmt> {
    (
        select(),
        proptest::collection::vec((column(), any::<bool>()), 0..2),
        proptest::option::of((1u64..50, 0u64..5)),
    )
        .prop_map(|(s, order, limit)| SelectStmt {
            body: SetExpr::Select(Box::new(s)),
            order_by: order.into_iter().map(|(expr, desc)| OrderByItem { expr, desc }).collect(),
            limit: limit.map(|(count, offset)| Limit { count, offset }),
        })
}

/// Rewrites a literal to a *different* literal of the same kind and
/// sign — a negative number prints with a leading `-` that re-parses as
/// unary negation, so crossing zero would change structure, not just
/// content (`NULL` has no content to rename and stays put).
fn rename_literal(l: &mut Literal) {
    match l {
        Literal::Int(i) => *i = if *i >= 0 { i.saturating_add(1) } else { i.saturating_sub(1) },
        Literal::Float(f) => *f += f.signum(),
        Literal::Str(s) => s.push('x'),
        Literal::Bool(b) => *b = !*b,
        Literal::Null => {}
    }
}

/// Appends a suffix to every table/alias/column identifier. Function
/// names are left alone — they are part of the skeleton, not content.
fn rename_identifiers_expr(e: &mut Expr, f: &mut impl FnMut(&mut String)) {
    walk_expr(e, &mut |expr| {
        if let Expr::Column(c) = expr {
            if let Some(t) = &mut c.table {
                f(t);
            }
            f(&mut c.column);
        }
    });
}

/// Applies `f` to every expression of a statement, recursively.
fn walk_stmt(q: &mut SelectStmt, f: &mut impl FnMut(&mut Expr)) {
    walk_set_expr(&mut q.body, f);
    for item in &mut q.order_by {
        walk_expr(&mut item.expr, f);
    }
}

fn walk_set_expr(body: &mut SetExpr, f: &mut impl FnMut(&mut Expr)) {
    match body {
        SetExpr::Select(s) => {
            for item in &mut s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    walk_expr(expr, f);
                }
            }
            if let Some(from) = &mut s.from {
                for j in &mut from.joins {
                    if let Some(on) = &mut j.on {
                        walk_expr(on, f);
                    }
                }
            }
            if let Some(w) = &mut s.selection {
                walk_expr(w, f);
            }
            for g in &mut s.group_by {
                walk_expr(g, f);
            }
            if let Some(h) = &mut s.having {
                walk_expr(h, f);
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            walk_set_expr(left, f);
            walk_set_expr(right, f);
        }
    }
}

fn walk_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match e {
        Expr::Column(_) | Expr::Literal(_) | Expr::CountStar => {}
        Expr::Unary { operand, .. } => walk_expr(operand, f),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, f);
            for l in list {
                walk_expr(l, f);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            walk_expr(expr, f);
            walk_stmt(subquery, f);
        }
        Expr::Between { expr, low, high, .. } => {
            walk_expr(expr, f);
            walk_expr(low, f);
            walk_expr(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, f);
            walk_expr(pattern, f);
        }
        Expr::IsNull { expr, .. } => walk_expr(expr, f),
        Expr::Exists { subquery, .. } | Expr::Subquery(subquery) => walk_stmt(subquery, f),
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                walk_expr(op, f);
            }
            for (when, then) in branches {
                walk_expr(when, f);
                walk_expr(then, f);
            }
            if let Some(el) = else_result {
                walk_expr(el, f);
            }
        }
    }
}

/// Renames every table reference (and alias) of a statement.
fn rename_tables(q: &mut SelectStmt, f: &mut impl FnMut(&mut String)) {
    fn in_set_expr(body: &mut SetExpr, f: &mut impl FnMut(&mut String)) {
        match body {
            SetExpr::Select(s) => {
                if let Some(from) = &mut s.from {
                    f(&mut from.base.name);
                    if let Some(a) = &mut from.base.alias {
                        f(a);
                    }
                    for j in &mut from.joins {
                        f(&mut j.table.name);
                        if let Some(a) = &mut j.table.alias {
                            f(a);
                        }
                    }
                }
            }
            SetExpr::SetOp { left, right, .. } => {
                in_set_expr(left, f);
                in_set_expr(right, f);
            }
        }
    }
    in_set_expr(&mut q.body, f);
}

/// A small arbitrary schema for repair coverage: 1–3 tables of 1–4 text
/// columns each, names drawn from the same identifier space as queries.
fn schema() -> impl Strategy<Value = CatalogSchema> {
    proptest::collection::vec(
        (ident(), proptest::collection::vec(ident(), 1..4)),
        1..3,
    )
    .prop_map(|tables| CatalogSchema {
        db_id: "prop".into(),
        tables: tables
            .into_iter()
            .map(|(name, columns)| CatalogTable {
                name,
                desc_en: "generated".into(),
                desc_cn: "generated".into(),
                columns: columns
                    .into_iter()
                    .map(|c| CatalogColumn::new(&c, ColType::Text, "generated", "generated"))
                    .collect(),
            })
            .collect(),
        foreign_keys: vec![],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse → print is a fixed point.
    #[test]
    fn printing_round_trips(q in query()) {
        let stmt = Statement::Select(q);
        let printed = to_sql(&stmt);
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {printed}\n{e}"));
        let reprinted = to_sql(&reparsed);
        prop_assert_eq!(&printed, &reprinted, "not canonical: {}", printed);
    }

    /// Skeleton extraction is deterministic on any printed query.
    #[test]
    fn skeleton_is_stable_on_reparse(q in query()) {
        let stmt = Statement::Select(q);
        let printed = to_sql(&stmt);
        if let Some(skel) = sqlkit::skeleton_of(&printed) {
            prop_assert!(!skel.is_empty());
            // Re-parsing the skeleton's source and re-extracting is stable.
            prop_assert_eq!(sqlkit::skeleton_of(&printed), Some(skel));
        }
    }

    /// Component extraction never panics and is deterministic on any
    /// parseable SQL.
    #[test]
    fn components_are_stable(q in query()) {
        let printed = to_sql(&Statement::Select(q));
        let a = sqlkit::components::extract_components(&printed);
        let b = sqlkit::components::extract_components(&printed);
        prop_assert_eq!(a, b);
    }

    /// The skeleton is invariant under renaming every literal: it
    /// abstracts content, so changing values must never change structure.
    #[test]
    fn skeleton_is_literal_invariant(q in query()) {
        let original = to_sql(&Statement::Select(q.clone()));
        let mut renamed = q;
        walk_stmt(&mut renamed, &mut |e| {
            if let Expr::Literal(l) = e {
                rename_literal(l);
            }
        });
        let renamed = to_sql(&Statement::Select(renamed));
        prop_assert_eq!(
            sqlkit::skeleton_of(&original),
            sqlkit::skeleton_of(&renamed),
            "literal renaming changed the skeleton: {} vs {}",
            original,
            renamed
        );
        prop_assert!(sqlkit::skeleton_of(&original).is_some(), "printed SQL must skeletonise");
    }

    /// The skeleton is likewise invariant under renaming every table and
    /// column identifier (function names stay — they are structure).
    #[test]
    fn skeleton_is_identifier_invariant(q in query()) {
        let original = to_sql(&Statement::Select(q.clone()));
        let mut renamed = q;
        let mut rename = |s: &mut String| s.push_str("zz");
        rename_tables(&mut renamed, &mut rename);
        walk_stmt(&mut renamed, &mut |e| rename_identifiers_expr(e, &mut |s| s.push_str("zz")));
        let renamed = to_sql(&Statement::Select(renamed));
        prop_assert_eq!(
            sqlkit::skeleton_of(&original),
            sqlkit::skeleton_of(&renamed),
            "identifier renaming changed the skeleton: {} vs {}",
            original,
            renamed
        );
    }

    /// `normalize_text` undoes the `==` decoder noise exactly: the
    /// printer never emits `==`, so doubling every `=` and normalising
    /// restores the original text.
    #[test]
    fn normalize_text_undoes_double_eq(q in query()) {
        let printed = to_sql(&Statement::Select(q));
        let corrupted = printed.replace('=', "==");
        prop_assert_eq!(normalize_text(&corrupted), printed.trim().trim_end_matches(';').trim());
    }

    /// `normalize_text` strips markdown fences and trailing semicolons
    /// without disturbing the SQL inside.
    #[test]
    fn normalize_text_strips_fences(q in query()) {
        let printed = to_sql(&Statement::Select(q.clone()));
        let fenced = format!("```sql\n{printed};\n```");
        let cleaned = normalize_text(&fenced);
        let reparsed = parse_statement(&cleaned)
            .unwrap_or_else(|e| panic!("normalised SQL failed to parse: {cleaned}\n{e}"));
        prop_assert_eq!(reparsed, parse_statement(&printed).unwrap());
    }

    /// The `f1` repair pass never panics on an arbitrary query against an
    /// arbitrary schema, and whatever it produces still prints to
    /// parseable (canonical) SQL — randomized coverage for the repair
    /// path the calibration algorithm leans on.
    #[test]
    fn repair_preserves_printability(q in query(), schema in schema()) {
        let mut repaired = q;
        let fixes = repair_statement(&mut repaired, &schema);
        let _ = fixes;
        let printed = to_sql(&Statement::Select(repaired));
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("repaired SQL failed to parse: {printed}\n{e}"));
        prop_assert_eq!(&printed, &to_sql(&reparsed), "repair broke canonical form: {}", printed);
    }

    /// Repair is idempotent on its own output: a second pass finds
    /// nothing left to fix and changes nothing.
    #[test]
    fn repair_is_idempotent(q in query(), schema in schema()) {
        let mut once = q;
        repair_statement(&mut once, &schema);
        let mut twice = once.clone();
        let second_fixes = repair_statement(&mut twice, &schema);
        prop_assert_eq!(second_fixes, 0, "second repair pass still fixed something");
        prop_assert_eq!(to_sql(&Statement::Select(once)), to_sql(&Statement::Select(twice)));
    }
}
