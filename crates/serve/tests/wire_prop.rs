//! Property tests for the wire codec (crates/serve/src/wire.rs): encode →
//! incremental decode must be the identity on arbitrary frames no matter
//! how the byte stream is torn, and every header-contract violation must
//! be rejected deterministically.

use finsql_serve::wire::{
    Frame, FrameDecoder, Kind, WireError, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn kind() -> impl Strategy<Value = Kind> {
    prop_oneof![
        Just(Kind::Request),
        Just(Kind::Response),
        Just(Kind::Stats),
        Just(Kind::StatsResponse),
        Just(Kind::Shutdown),
    ]
}

fn frame() -> impl Strategy<Value = Frame> {
    (kind(), any::<u8>(), any::<u8>(), any::<u64>(), vec(any::<u8>(), 0..300)).prop_map(
        |(kind, code, flags, request_id, payload)| Frame {
            kind,
            code,
            flags,
            request_id,
            payload,
        },
    )
}

proptest! {
    /// Feeding the encoded bytes one at a time exercises a split at
    /// *every* byte boundary: each proper prefix must decode to "not
    /// yet" (never an error, never a phantom frame) and the final byte
    /// must complete the original frame exactly.
    #[test]
    fn round_trip_survives_every_split_point(frame in frame()) {
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        let mut decoder = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            decoder.push(std::slice::from_ref(b));
            let decoded = decoder.next_frame();
            if i + 1 < bytes.len() {
                prop_assert_eq!(decoded, Ok(None), "byte {} of {}", i, bytes.len());
            } else {
                prop_assert_eq!(decoded, Ok(Some(frame.clone())));
            }
        }
        prop_assert_eq!(decoder.next_frame(), Ok(None));
        prop_assert_eq!(decoder.pending(), 0);
    }

    /// A stream of frames chunked at arbitrary sizes decodes to exactly
    /// the original sequence, in order.
    #[test]
    fn chunked_stream_decodes_in_order(
        frames in vec(frame(), 1..8),
        chunks in vec(1usize..23, 1..64),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut chunk_iter = chunks.iter().cycle();
        while offset < bytes.len() {
            // INVARIANT: `chunks` is non-empty (vec(_, 1..64)), so the
            // cycled iterator always yields.
            let step = (*chunk_iter.next().expect("cycle of non-empty vec")).min(bytes.len() - offset);
            decoder.push(&bytes[offset..offset + step]);
            offset += step;
            loop {
                match decoder.next_frame() {
                    Ok(Some(f)) => decoded.push(f),
                    Ok(None) => break,
                    Err(e) => return Err(format!("valid stream rejected: {e}")),
                }
            }
        }
        prop_assert_eq!(decoded, frames);
    }

    /// A truncated frame never produces output: any proper prefix parks
    /// the decoder at `Ok(None)` indefinitely.
    #[test]
    fn torn_frame_never_yields(frame in frame(), cut in any::<u16>()) {
        let bytes = frame.encode();
        let cut = (cut as usize) % bytes.len().max(1);
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes[..cut]);
        prop_assert_eq!(decoder.next_frame(), Ok(None));
        // Still parked after a re-poll — no phantom frames.
        prop_assert_eq!(decoder.next_frame(), Ok(None));
    }

    /// Corrupting the magic is caught as soon as the corrupt byte is
    /// visible, even before a full header has arrived.
    #[test]
    fn corrupt_magic_is_rejected(frame in frame(), pos in 0usize..4, bad in any::<u8>()) {
        let mut bytes = frame.encode();
        if bytes[pos] == bad {
            return Ok(()); // not corrupt after all
        }
        bytes[pos] = bad;
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes[..pos + 1]);
        prop_assert_eq!(decoder.next_frame(), Err(WireError::BadMagic));
    }

    /// An oversized length prefix is rejected from the header alone —
    /// the decoder must not wait for (or try to buffer) the payload.
    #[test]
    fn oversized_prefix_is_rejected_from_the_header(frame in frame(), extra in 1u32..1000) {
        let mut bytes = frame.encode();
        let huge = MAX_PAYLOAD as u32 + extra;
        bytes[16..20].copy_from_slice(&huge.to_le_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes[..HEADER_LEN]);
        prop_assert_eq!(decoder.next_frame(), Err(WireError::Oversized(huge)));
    }
}

#[test]
fn header_layout_is_pinned() {
    // The exact byte layout is protocol ABI: a client built from these
    // constants must interoperate with any server version speaking
    // VERSION. Pin it byte for byte.
    let frame = Frame::request(0x0102_0304_0506_0708, 2, "q!");
    let bytes = frame.encode();
    assert_eq!(&bytes[0..4], &MAGIC);
    assert_eq!(bytes[4], VERSION);
    assert_eq!(bytes[5], 1, "Kind::Request");
    assert_eq!(bytes[6], 2, "db index");
    assert_eq!(bytes[7], 0, "flags");
    assert_eq!(&bytes[8..16], &0x0102_0304_0506_0708u64.to_le_bytes());
    assert_eq!(&bytes[16..20], &2u32.to_le_bytes());
    assert_eq!(&bytes[20..], b"q!");
    assert_eq!(bytes.len(), HEADER_LEN + 2);
}

#[test]
fn garbage_version_and_kind_are_rejected() {
    let good = Frame::stats(1).encode();
    for (byte, expect) in [
        (4usize, WireError::BadVersion(0xFE)),
        (5usize, WireError::BadKind(0xFE)),
    ] {
        let mut bytes = good.clone();
        bytes[byte] = 0xFE;
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes);
        assert_eq!(decoder.next_frame(), Err(expect));
    }
}
