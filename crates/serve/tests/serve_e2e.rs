//! End-to-end tests for `finsqld`'s serving loop over real loopback TCP:
//! byte-identity with the library path, protocol-level error handling,
//! admission control under a tiny budget, and graceful shutdown.

use bull::{DbId, Lang};
use finsql_core::batch::BatchConfig;
use finsql_core::cache::AnswerCache;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use finsql_serve::client::ClientError;
use finsql_serve::wire::{Frame, FrameDecoder, Kind, Status};
use finsql_serve::{BlockingClient, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One engine for every test in this file — building it trains the full
/// pipeline, so share it instead of paying that per test.
fn engine() -> Arc<FinSql> {
    static ENGINE: OnceLock<Arc<FinSql>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        let ds = bull::build(bull::DEFAULT_SEED);
        Arc::new(FinSql::build(
            &ds,
            &simllm::profiles::LLAMA2_13B,
            FinSqlConfig::standard(Lang::En),
        ))
    }))
}

/// The per-question reference answer the served path must reproduce.
fn reference(engine: &FinSql, db: DbId, question: &str) -> String {
    let mut rng = engine.question_rng(db, question);
    engine.answer(db, question, &mut rng)
}

fn spawn_server(config: ServeConfig) -> finsql_serve::ServeHandle {
    let server = Server::bind(
        "127.0.0.1:0",
        engine(),
        Some(Arc::new(AnswerCache::unbounded())),
        None,
        config,
    )
    .expect("bind loopback");
    server.spawn()
}

#[test]
fn served_answers_match_the_library_path_across_databases() {
    let handle = spawn_server(ServeConfig::default());
    let mut client = BlockingClient::connect(handle.addr()).expect("connect");
    let engine = engine();
    let questions = [
        (DbId::Fund, "list all fund names"),
        (DbId::Stock, "which stock closed highest yesterday"),
        (DbId::Macro, "what was the latest inflation reading"),
        (DbId::Fund, "how many funds have an open redemption status"),
    ];
    for (db, question) in questions {
        let (status, answer) = client.ask(db, question).expect("ask");
        assert_eq!(status, Status::Ok);
        assert_eq!(answer, reference(&engine, db, question), "{db:?}: {question}");
    }
    // Repeat one question: the cache serves it, bytes must not change.
    let (status, answer) = client.ask(DbId::Fund, "list all fund names").expect("re-ask");
    assert_eq!(status, Status::Ok);
    assert_eq!(answer, reference(&engine, DbId::Fund, "list all fund names"));

    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"served\":5"), "unexpected stats payload: {stats}");
    assert!(stats.contains("\"p99_ns\":"), "stats must expose quantiles: {stats}");

    client.shutdown_server().expect("shutdown handshake");
    let report = handle.join().expect("server thread must exit cleanly");
    assert_eq!(report.served, 5);
    assert_eq!(report.bad_frames, 0);
}

#[test]
fn garbage_bytes_get_bad_frame_and_the_connection_is_closed() {
    let handle = spawn_server(ServeConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write garbage");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    // The server must answer BadFrame, then close. Read to EOF.
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read response until close");
    let mut decoder = FrameDecoder::new();
    decoder.push(&bytes);
    let frame = decoder
        .next_frame()
        .expect("response is well-formed")
        .expect("a BadFrame response must arrive before close");
    assert_eq!(frame.status(), Some(Status::BadFrame));

    // An unknown database index is also a BadFrame (on a fresh
    // connection — the previous one is gone).
    let mut client = BlockingClient::connect(handle.addr()).expect("connect");
    client
        .send(&Frame::request(7, 250, "which db is this"))
        .expect("send bad-db request");
    let frame = client.recv().expect("recv");
    assert_eq!(frame.status(), Some(Status::BadFrame));
    assert_eq!(frame.request_id, 7, "correlation id echoed even on errors");

    let mut client = BlockingClient::connect(handle.addr()).expect("connect");
    client.shutdown_server().expect("shutdown");
    let report = handle.join().expect("clean exit");
    assert!(report.bad_frames >= 2, "both violations counted: {report:?}");
    assert_eq!(report.served, 0);
}

#[test]
fn over_budget_requests_are_shed_with_busy_not_queued() {
    // Budget of one in-flight request, single slow worker: a pipelined
    // burst must shed everything beyond the slot immediately.
    let handle = spawn_server(ServeConfig {
        max_in_flight: 1,
        batch: BatchConfig {
            max_batch: 1,
            flush: Duration::from_micros(1),
            workers: 1,
            queue_cap: 1,
        },
        ..ServeConfig::default()
    });
    let engine = engine();
    let mut client = BlockingClient::connect(handle.addr()).expect("connect");
    let burst = 16u64;
    for i in 0..burst {
        let question = format!("how many funds exist (burst {i})");
        client
            .send(&Frame::request(i, DbId::Fund.index() as u8, &question))
            .expect("pipelined send");
    }
    let mut ok = 0u64;
    let mut busy = 0u64;
    for _ in 0..burst {
        let frame = client.recv().expect("one response per request");
        assert_eq!(frame.kind, Kind::Response);
        match frame.status().expect("known status") {
            Status::Ok => {
                ok += 1;
                let question = format!("how many funds exist (burst {})", frame.request_id);
                let answer = String::from_utf8(frame.payload.clone()).expect("utf-8 answer");
                assert_eq!(
                    answer,
                    reference(&engine, DbId::Fund, &question),
                    "an admitted answer is never wrong, even under load"
                );
            }
            Status::Busy => busy += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert!(ok >= 1, "at least the slot-holder is served");
    assert!(busy >= 1, "a 16-deep burst against budget 1 must shed");
    assert_eq!(ok + busy, burst);

    client.shutdown_server().expect("shutdown");
    let report = handle.join().expect("clean exit");
    assert_eq!(report.served, ok);
    assert_eq!(report.busy_rejected, busy);
}

#[test]
fn stop_flag_drains_in_flight_requests_before_exit() {
    let handle = spawn_server(ServeConfig::default());
    let engine = engine();
    let mut client = BlockingClient::connect(handle.addr()).expect("connect");
    // Warm round-trip so the connection is definitely accepted.
    let (status, _) = client.ask(DbId::Fund, "list all fund names").expect("warmup");
    assert_eq!(status, Status::Ok);
    // Get a request admitted (the driver reads it well within 50ms),
    // then raise the stop flag before reading the response: the drain
    // must still deliver the real answer.
    let question = "what is the average management fee across funds";
    client
        .send(&Frame::request(99, DbId::Fund.index() as u8, question))
        .expect("send");
    std::thread::sleep(Duration::from_millis(50));
    handle.stop();
    let frame = client.recv().expect("drain must deliver the answer");
    assert_eq!(frame.status(), Some(Status::Ok));
    assert_eq!(frame.request_id, 99);
    assert_eq!(
        String::from_utf8(frame.payload).expect("utf-8"),
        reference(&engine, DbId::Fund, question)
    );
    let report = handle.join().expect("clean exit");
    assert_eq!(report.served, 2);

    // Requests racing the stop flag are answered Shutdown or the
    // connection is simply gone once the server exits — never a hang,
    // never a wrong answer.
    match client.ask(DbId::Fund, "straggler") {
        Ok((status, _)) => assert_eq!(status, Status::Shutdown),
        Err(ClientError::Io(_)) | Err(ClientError::Disconnected) => {}
        Err(other) => panic!("unexpected straggler outcome: {other}"),
    }
}
