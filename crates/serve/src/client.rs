//! A minimal blocking `finsqld` client: one TCP connection, synchronous
//! request/response. This is the harness-side counterpart of the server
//! — the smokes and `bench_serve` build on it (the bench's load
//! generator pipelines writes and reads on separate threads instead, but
//! reuses the same framing).

use crate::wire::{Frame, FrameDecoder, Kind, Status, WireError};
use bull::DbId;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure talking to a server.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server's byte stream violated the protocol.
    Wire(WireError),
    /// The connection closed before a full response arrived.
    Disconnected,
    /// A response arrived for a different request id.
    WrongRequest { expected: u64, got: u64 },
    /// A response frame of an unexpected kind.
    WrongKind(Kind),
    /// A response carried an unknown status byte.
    BadStatus(u8),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::WrongRequest { expected, got } => {
                write!(f, "response for request {got}, expected {expected}")
            }
            ClientError::WrongKind(k) => write!(f, "unexpected response kind {k:?}"),
            ClientError::BadStatus(b) => write!(f, "unknown response status byte {b}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One synchronous connection to a `finsqld`.
pub struct BlockingClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_id: u64,
}

impl BlockingClient {
    pub fn connect(addr: impl ToSocketAddrs) -> Result<BlockingClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(BlockingClient { stream, decoder: FrameDecoder::new(), next_id: 1 })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.stream.write_all(&frame.encode())?;
        Ok(())
    }

    /// Blocks until the next complete frame arrives.
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// The next frame answering `request_id`, checking correlation.
    fn recv_for(&mut self, request_id: u64) -> Result<Frame, ClientError> {
        let frame = self.recv()?;
        if frame.request_id != request_id {
            return Err(ClientError::WrongRequest { expected: request_id, got: frame.request_id });
        }
        Ok(frame)
    }

    /// Asks one question; returns the status and the answer payload
    /// (empty for non-`Ok` statuses).
    pub fn ask(&mut self, db: DbId, question: &str) -> Result<(Status, String), ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::request(id, db.index() as u8, question))?;
        let frame = self.recv_for(id)?;
        if frame.kind != Kind::Response {
            return Err(ClientError::WrongKind(frame.kind));
        }
        let status = Status::from_byte(frame.code).ok_or(ClientError::BadStatus(frame.code))?;
        Ok((status, String::from_utf8_lossy(&frame.payload).into_owned()))
    }

    /// Fetches the server's `STATS` JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::stats(id))?;
        let frame = self.recv_for(id)?;
        if frame.kind != Kind::StatsResponse {
            return Err(ClientError::WrongKind(frame.kind));
        }
        Ok(String::from_utf8_lossy(&frame.payload).into_owned())
    }

    /// Asks the server to shut down; returns once the ack arrives.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(&Frame::shutdown(id))?;
        let frame = self.recv_for(id)?;
        match frame.status() {
            Some(Status::Shutdown) => Ok(()),
            _ => Err(ClientError::WrongKind(frame.kind)),
        }
    }
}
