//! The `finsqld` server: a hand-rolled non-blocking readiness loop over
//! `std::net` sockets feeding the existing [`BatchScheduler`].
//!
//! The workspace vendors every dependency and forbids `unsafe`, so there
//! is no epoll/mio: the event loop polls non-blocking sockets in rounds —
//! accept until `WouldBlock`, read/decode/dispatch per connection, poll
//! outstanding [`Ticket`]s, flush write buffers — and sleeps briefly only
//! when a full round did no work. One driver thread therefore serves any
//! number of connections; no thread is ever parked per request.
//!
//! **Admission control.** Requests occupy one in-flight slot from decode
//! until their response bytes are queued. Over budget —
//! [`ServeConfig::max_in_flight`] reached, or the scheduler's bounded
//! queue refuses with [`SubmitError::QueueFull`] — the request is
//! answered [`Status::Busy`] immediately: load is shed at the wire, a
//! `Busy` is never a wrong answer, and the bounded MPMC queue's
//! backpressure reaches the client instead of blocking the driver.
//!
//! **Byte identity.** The scheduler path is reused unchanged, so every
//! `Ok` answer is byte-identical to the library path ([`FinSql::answer`]
//! — the property `bench_serve` re-checks over real sockets).

use crate::wire::{Frame, FrameDecoder, Kind, Status};
use bull::DbId;
use finsql_core::batch::{BatchConfig, BatchScheduler, SubmitError, Ticket};
use finsql_core::cache::AnswerCache;
use finsql_core::metrics::{EvalMetrics, HistogramSnapshot, LatencyHistogram};
use finsql_core::pipeline::FinSql;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of one [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission budget: most requests simultaneously between decode and
    /// response enqueue. Beyond it every request is answered
    /// [`Status::Busy`] without touching the scheduler.
    pub max_in_flight: usize,
    /// A connection whose write buffer backs up past this many bytes is
    /// not read from until the peer drains it — per-connection
    /// backpressure with bounded memory.
    pub write_buf_cap: usize,
    /// How long the driver sleeps after a round in which no socket was
    /// readable, no ticket resolved and no byte was written.
    pub idle_sleep: Duration,
    /// The scheduler the server feeds.
    pub batch: BatchConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_in_flight: 256,
            write_buf_cap: 1 << 20,
            idle_sleep: Duration::from_micros(100),
            batch: BatchConfig::default(),
        }
    }
}

/// Counters of one server's lifetime, also the substance of the `STATS`
/// protocol verb.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeReport {
    /// Requests answered [`Status::Ok`].
    pub served: u64,
    /// Requests shed with [`Status::Busy`] (admission budget or queue
    /// full).
    pub busy_rejected: u64,
    /// Frames rejected as [`Status::BadFrame`] (protocol violations).
    pub bad_frames: u64,
    /// Requests refused with [`Status::Shutdown`] during drain.
    pub shutdown_rejected: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

/// One client connection's driver state.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Bytes queued for the peer; drained opportunistically each round.
    out: Vec<u8>,
    /// Prefix of `out` already written.
    out_pos: usize,
    /// Close once `out` is flushed (EOF from peer, or a protocol error).
    closing: bool,
}

impl Conn {
    fn queue(&mut self, frame: &Frame) {
        frame.encode_into(&mut self.out);
    }

    /// Drops the flushed prefix once it dominates the buffer.
    fn compact_out(&mut self) {
        if self.out_pos > 0 && self.out_pos * 2 >= self.out.len() {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
    }

    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// One admitted request awaiting its scheduler answer.
struct Pending {
    conn_id: u64,
    request_id: u64,
    flags: u8,
    ticket: Ticket,
    received: Instant,
}

/// A running `finsqld` instance bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    scheduler: BatchScheduler,
    config: ServeConfig,
    latency: LatencyHistogram,
    report: ServeReport,
}

impl Server {
    /// Binds a listener and starts the scheduler's worker pool. `addr`
    /// may use port 0 to let the OS pick (see [`Server::local_addr`]).
    pub fn bind(
        addr: &str,
        engine: Arc<FinSql>,
        cache: Option<Arc<AnswerCache>>,
        metrics: Option<Arc<EvalMetrics>>,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let scheduler = BatchScheduler::new(engine, cache, metrics, config.batch);
        Ok(Server {
            listener,
            local_addr,
            scheduler,
            config,
            latency: LatencyHistogram::new(),
            report: ServeReport::default(),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the readiness loop until a client sends a `Shutdown` frame
    /// or `stop` is raised externally. Shutdown is graceful: in-flight
    /// requests drain to completion, their responses are flushed, the
    /// scheduler pool is joined, and the lifetime report is returned.
    pub fn run(mut self, stop: &AtomicBool) -> ServeReport {
        let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
        let mut pending: Vec<Pending> = Vec::new();
        let mut next_conn_id = 0u64;
        let mut draining = false;
        loop {
            let mut progressed = false;
            if !draining && stop.load(Ordering::Relaxed) {
                draining = true;
            }

            // 1. Accept — refuse nothing at the socket level; admission
            // happens per request. Accepting continues during drain so a
            // handshake that raced shutdown gets explicit `Shutdown`
            // responses instead of a silently dropped connection.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        // Nagle would buffer our small frames against
                        // the latency measurement; best effort.
                        let _ = stream.set_nodelay(true);
                        self.report.connections += 1;
                        conns.insert(
                            next_conn_id,
                            Conn {
                                stream,
                                decoder: FrameDecoder::new(),
                                out: Vec::new(),
                                out_pos: 0,
                                closing: false,
                            },
                        );
                        next_conn_id += 1;
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }

            // 2. Read + decode + dispatch per connection.
            let mut dead: Vec<u64> = Vec::new();
            for (&conn_id, conn) in conns.iter_mut() {
                if conn.closing {
                    continue;
                }
                // Backpressure: a peer that won't drain its responses
                // doesn't get to queue unbounded new work.
                if conn.backlog() >= self.config.write_buf_cap {
                    continue;
                }
                let mut buf = [0u8; 4096];
                loop {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            conn.closing = true;
                            progressed = true;
                            break;
                        }
                        Ok(n) => {
                            progressed = true;
                            conn.decoder.push(&buf[..n]);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead.push(conn_id);
                            break;
                        }
                    }
                }
                if dead.last() == Some(&conn_id) {
                    continue;
                }
                // Drain every complete frame buffered so far.
                loop {
                    match conn.decoder.next_frame() {
                        Ok(Some(frame)) => {
                            progressed = true;
                            dispatch(
                                frame,
                                conn_id,
                                conn,
                                &self.scheduler,
                                &self.latency,
                                &mut self.report,
                                &mut pending,
                                &mut draining,
                                self.config.max_in_flight,
                            );
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Framing is lost; tell the peer and close.
                            self.report.bad_frames += 1;
                            conn.queue(&Frame::response(0, Status::BadFrame, ""));
                            conn.closing = true;
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            for conn_id in dead.drain(..) {
                conns.remove(&conn_id);
            }

            // 3. Poll outstanding tickets; completed answers are framed
            // onto their connection's write buffer.
            pending.retain(|p| {
                let Some(answer) = p.ticket.try_answer() else { return true };
                self.latency.record(p.received.elapsed());
                self.report.served += 1;
                progressed = true;
                if let Some(conn) = conns.get_mut(&p.conn_id) {
                    let mut frame = Frame::response(p.request_id, Status::Ok, &answer);
                    frame.flags = p.flags;
                    conn.queue(&frame);
                }
                false
            });

            // 4. Flush write buffers; reap finished connections.
            for (&conn_id, conn) in conns.iter_mut() {
                while conn.backlog() > 0 {
                    match conn.stream.write(&conn.out[conn.out_pos..]) {
                        Ok(0) => {
                            dead.push(conn_id);
                            break;
                        }
                        Ok(n) => {
                            progressed = true;
                            conn.out_pos += n;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead.push(conn_id);
                            break;
                        }
                    }
                }
                conn.compact_out();
                if conn.closing && conn.backlog() == 0 {
                    dead.push(conn_id);
                }
            }
            for conn_id in dead.drain(..) {
                conns.remove(&conn_id);
            }

            // 5. Drain-to-exit: once shutdown began, leave only after
            // every admitted request is answered and every response byte
            // is either flushed or its connection is gone.
            if draining && pending.is_empty() && conns.values().all(|c| c.backlog() == 0) {
                break;
            }
            if !progressed {
                std::thread::sleep(self.config.idle_sleep);
            }
        }
        self.scheduler.shutdown();
        self.report
    }

    /// Starts the server on its own thread, returning a handle that can
    /// stop it and collect the report. The bound address is resolved
    /// before spawning, so the caller can connect immediately.
    pub fn spawn(self) -> ServeHandle {
        let addr = self.local_addr;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || self.run(&stop))
        };
        ServeHandle { addr, stop, thread }
    }
}

/// Handles one decoded frame on `conn`.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    frame: Frame,
    conn_id: u64,
    conn: &mut Conn,
    scheduler: &BatchScheduler,
    latency: &LatencyHistogram,
    report: &mut ServeReport,
    pending: &mut Vec<Pending>,
    draining: &mut bool,
    max_in_flight: usize,
) {
    let request_id = frame.request_id;
    let flags = frame.flags;
    match frame.kind {
        Kind::Request => {
            let reply = |status: Status| {
                let mut f = Frame::response(request_id, status, "");
                f.flags = flags;
                f
            };
            if *draining {
                report.shutdown_rejected += 1;
                conn.queue(&reply(Status::Shutdown));
                return;
            }
            let Some(&db) = DbId::ALL.get(frame.code as usize) else {
                report.bad_frames += 1;
                conn.queue(&reply(Status::BadFrame));
                conn.closing = true;
                return;
            };
            let Ok(question) = String::from_utf8(frame.payload) else {
                report.bad_frames += 1;
                conn.queue(&reply(Status::BadFrame));
                conn.closing = true;
                return;
            };
            if pending.len() >= max_in_flight {
                report.busy_rejected += 1;
                conn.queue(&reply(Status::Busy));
                return;
            }
            // One allocation for the whole request lifetime: queue,
            // cache key and response all share this Arc.
            let question: Arc<str> = Arc::from(question);
            match scheduler.try_submit(db, question) {
                Ok(ticket) => pending.push(Pending {
                    conn_id,
                    request_id,
                    flags,
                    ticket,
                    received: Instant::now(),
                }),
                Err(SubmitError::QueueFull) => {
                    report.busy_rejected += 1;
                    conn.queue(&reply(Status::Busy));
                }
                Err(SubmitError::ShuttingDown) => {
                    report.shutdown_rejected += 1;
                    conn.queue(&reply(Status::Shutdown));
                }
            }
        }
        Kind::Stats => {
            let json = stats_json(report, pending.len(), &latency.snapshot());
            conn.queue(&Frame::stats_response(request_id, &json));
        }
        Kind::Shutdown => {
            *draining = true;
            let mut ack = Frame::response(request_id, Status::Shutdown, "");
            ack.flags = flags;
            conn.queue(&ack);
        }
        // A client sending server-side frame kinds has lost the plot;
        // treat it as a protocol violation.
        Kind::Response | Kind::StatsResponse => {
            report.bad_frames += 1;
            let mut f = Frame::response(request_id, Status::BadFrame, "");
            f.flags = flags;
            conn.queue(&f);
            conn.closing = true;
        }
    }
}

/// The `STATS` payload: hand-formatted JSON (the workspace has no serde
/// registry dep), nanosecond quantiles from the serving histogram.
pub fn stats_json(report: &ServeReport, in_flight: usize, latency: &HistogramSnapshot) -> String {
    format!(
        "{{\"served\":{},\"busy_rejected\":{},\"bad_frames\":{},\"shutdown_rejected\":{},\
         \"connections\":{},\"in_flight\":{},\"latency\":{{\"count\":{},\"p50_ns\":{},\
         \"p99_ns\":{},\"p999_ns\":{}}}}}",
        report.served,
        report.busy_rejected,
        report.bad_frames,
        report.shutdown_rejected,
        report.connections,
        in_flight,
        latency.count(),
        latency.p50().as_nanos(),
        latency.p99().as_nanos(),
        latency.p999().as_nanos(),
    )
}

/// A server running on its own thread.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: JoinHandle<ServeReport>,
}

impl ServeHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raises the stop flag; the driver drains and exits on its next
    /// round.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Waits for the driver to exit and returns its lifetime report.
    /// `Err` carries the driver thread's panic payload.
    pub fn join(self) -> std::thread::Result<ServeReport> {
        self.thread.join()
    }

    /// [`ServeHandle::stop`] then [`ServeHandle::join`].
    pub fn shutdown(self) -> std::thread::Result<ServeReport> {
        self.stop();
        self.join()
    }
}
