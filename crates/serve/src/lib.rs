//! `finsql-serve`: the network serving layer of the FinSQL reproduction.
//!
//! Three pieces, each usable on its own:
//!
//! * [`wire`] — the length-prefixed binary frame protocol and an
//!   incremental decoder tolerant of arbitrarily torn TCP reads.
//! * [`server`] — the `finsqld` driver: a non-blocking readiness loop
//!   over `std::net` sockets with per-request admission control, feeding
//!   the existing [`finsql_core::batch::BatchScheduler`] unchanged, so
//!   every served answer is byte-identical to the library path.
//! * [`client`] — a small blocking client used by the smoke/bench
//!   harnesses and anyone scripting against a running `finsqld`.
//!
//! The `finsqld` binary (`src/bin/finsqld.rs`) wraps [`server`] with CLI
//! flag parsing and engine construction.

pub mod client;
pub mod server;
pub mod wire;

pub use client::BlockingClient;
pub use server::{ServeConfig, ServeHandle, ServeReport, Server};
pub use wire::{Frame, FrameDecoder, Kind, Status, WireError};
