//! `finsqld` — the FinSQL serving daemon.
//!
//! Builds the full pipeline over the BULL dataset, binds a TCP listener
//! and serves the length-prefixed wire protocol (see
//! `finsql_serve::wire`) until a client sends a Shutdown frame.
//!
//! ```text
//! finsqld [--addr 127.0.0.1:4150] [--budget 256] [--cache-cap 0]
//!         [--cache-policy slru-tinylfu|lru] [--workers 2] [--batch 8]
//!         [--flush-us 2000] [--queue-cap 256]
//! ```

use bull::Lang;
use finsql_core::batch::BatchConfig;
use finsql_core::cache::{AnswerCache, CachePolicy};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use finsql_serve::{ServeConfig, Server};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

struct Opts {
    addr: String,
    budget: usize,
    cache_cap: usize,
    cache_policy: CachePolicy,
    workers: usize,
    batch: usize,
    flush_us: u64,
    queue_cap: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            addr: "127.0.0.1:4150".to_string(),
            budget: 256,
            cache_cap: 0,
            cache_policy: CachePolicy::default(),
            workers: 2,
            batch: 8,
            flush_us: 2000,
            queue_cap: 256,
        }
    }
}

const USAGE: &str = "usage: finsqld [--addr A] [--budget N] [--cache-cap N] \
                     [--cache-policy P] [--workers N] [--batch N] [--flush-us N] \
                     [--queue-cap N]";

/// `Ok(None)` means `--help` was asked: print usage and exit 0.
fn parse_opts(args: &[String]) -> Result<Option<Opts>, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--budget" => {
                opts.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?
            }
            "--cache-cap" => {
                opts.cache_cap = value("--cache-cap")?
                    .parse()
                    .map_err(|e| format!("--cache-cap: {e}"))?
            }
            "--cache-policy" => {
                let v = value("--cache-policy")?;
                opts.cache_policy = CachePolicy::parse(&v)
                    .ok_or_else(|| format!("--cache-policy: unknown policy {v:?}"))?;
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--batch" => {
                opts.batch =
                    value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?
            }
            "--flush-us" => {
                opts.flush_us = value("--flush-us")?
                    .parse()
                    .map_err(|e| format!("--flush-us: {e}"))?
            }
            "--queue-cap" => {
                opts.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(Some(opts))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(opts) = parse_opts(&args)? else {
        println!("{USAGE}");
        return Ok(());
    };

    eprintln!("finsqld: building engine (dataset + linker + LoRA training)...");
    let ds = bull::build(bull::DEFAULT_SEED);
    let engine = Arc::new(FinSql::build(
        &ds,
        &simllm::profiles::LLAMA2_13B,
        FinSqlConfig::standard(Lang::En),
    ));
    let cache = Arc::new(AnswerCache::with_policy(opts.cache_cap, opts.cache_policy));

    let config = ServeConfig {
        max_in_flight: opts.budget.max(1),
        batch: BatchConfig {
            max_batch: opts.batch.max(1),
            flush: Duration::from_micros(opts.flush_us),
            workers: opts.workers.max(1),
            queue_cap: opts.queue_cap.max(1),
        },
        ..ServeConfig::default()
    };
    let server = Server::bind(&opts.addr, engine, Some(cache), None, config)
        .map_err(|e| format!("bind {}: {e}", opts.addr))?;
    println!("finsqld listening on {}", server.local_addr());

    let stop = AtomicBool::new(false);
    let report = server.run(&stop);
    println!(
        "finsqld: served={} busy={} bad_frames={} shutdown_rejected={} connections={}",
        report.served,
        report.busy_rejected,
        report.bad_frames,
        report.shutdown_rejected,
        report.connections
    );
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("finsqld: {e}");
        std::process::exit(1);
    }
}
