//! The `finsqld` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — in either direction — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        b"FSQL"
//! 4       1     version      0x01
//! 5       1     kind         Request | Response | Stats | StatsResponse | Shutdown
//! 6       1     code         request: database index; response: Status
//! 7       1     flags        reserved, echoed back verbatim
//! 8       8     request_id   u64 little-endian, chosen by the client, echoed back
//! 16      4     payload_len  u32 little-endian, at most MAX_PAYLOAD
//! 20      n     payload      request: UTF-8 question; response: UTF-8 answer
//! ```
//!
//! The header is fixed-size so a decoder never has to scan: with 20
//! bytes buffered it knows the frame's full length, validates the magic,
//! version, kind and payload bound *before* buffering the body, and a
//! torn TCP stream simply leaves the decoder waiting for more bytes.
//! Anything that violates the header contract is a [`WireError`] — the
//! server answers [`Status::BadFrame`] and closes the connection, since
//! a stream that has lost framing cannot be re-synchronised.
//!
//! The protocol is deliberately dependency-free (the workspace vendors
//! everything and forbids `unsafe`): plain byte shuffling, no serde.

/// Frame preamble — rejects cross-protocol traffic immediately.
pub const MAGIC: [u8; 4] = *b"FSQL";

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;

/// Upper bound on a frame payload. Questions and answers are far below
/// this; the bound is what turns a corrupted or hostile length prefix
/// into an immediate [`WireError::Oversized`] instead of an attempted
/// multi-gigabyte buffer.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// What a frame is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Client → server: answer this question (code = database index,
    /// payload = question).
    Request = 1,
    /// Server → client: the outcome of one request (code = [`Status`],
    /// payload = answer or empty).
    Response = 2,
    /// Client → server: report serving statistics (no payload).
    Stats = 3,
    /// Server → client: statistics as a JSON payload.
    StatsResponse = 4,
    /// Client → server: stop serving. Acknowledged with a
    /// [`Status::Shutdown`] response, then the server drains and exits.
    Shutdown = 5,
}

impl Kind {
    pub fn from_byte(b: u8) -> Option<Kind> {
        match b {
            1 => Some(Kind::Request),
            2 => Some(Kind::Response),
            3 => Some(Kind::Stats),
            4 => Some(Kind::StatsResponse),
            5 => Some(Kind::Shutdown),
            _ => None,
        }
    }
}

/// Outcome code carried in a [`Kind::Response`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The payload is the answer — byte-identical to the library path.
    Ok = 0,
    /// Load shed by admission control: the in-flight budget or the
    /// scheduler queue was full. Never a wrong answer — the client may
    /// simply retry.
    Busy = 1,
    /// The request frame violated the protocol (bad magic/version/kind,
    /// oversized or non-UTF-8 payload, unknown database). The server
    /// closes the connection after sending this.
    BadFrame = 2,
    /// The server is shutting down and did not accept the request.
    Shutdown = 3,
}

impl Status {
    pub fn from_byte(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::Busy),
            2 => Some(Status::BadFrame),
            3 => Some(Status::Shutdown),
            _ => None,
        }
    }
}

/// Why a byte stream was rejected by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic (expected FSQL)"),
            WireError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized(n) => {
                write!(f, "payload length {n} exceeds the {MAX_PAYLOAD}-byte bound")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: Kind,
    /// Request: database index (see [`bull::DbId::index`]); response:
    /// the [`Status`] byte. Raw so the codec round-trips unknown codes
    /// verbatim — interpretation belongs to the endpoint.
    pub code: u8,
    /// Reserved; echoed back verbatim in responses.
    pub flags: u8,
    /// Client-chosen correlation id, echoed back in the response.
    pub request_id: u64,
    pub payload: Vec<u8>,
}

impl Frame {
    /// A question request against database index `db_index`.
    pub fn request(request_id: u64, db_index: u8, question: &str) -> Frame {
        Frame {
            kind: Kind::Request,
            code: db_index,
            flags: 0,
            request_id,
            payload: question.as_bytes().to_vec(),
        }
    }

    /// A response carrying `status` and an answer (empty for non-`Ok`).
    pub fn response(request_id: u64, status: Status, answer: &str) -> Frame {
        Frame {
            kind: Kind::Response,
            code: status as u8,
            flags: 0,
            request_id,
            payload: answer.as_bytes().to_vec(),
        }
    }

    /// A statistics request.
    pub fn stats(request_id: u64) -> Frame {
        Frame { kind: Kind::Stats, code: 0, flags: 0, request_id, payload: Vec::new() }
    }

    /// A statistics response carrying a JSON payload.
    pub fn stats_response(request_id: u64, json: &str) -> Frame {
        Frame {
            kind: Kind::StatsResponse,
            code: 0,
            flags: 0,
            request_id,
            payload: json.as_bytes().to_vec(),
        }
    }

    /// A shutdown request.
    pub fn shutdown(request_id: u64) -> Frame {
        Frame { kind: Kind::Shutdown, code: 0, flags: 0, request_id, payload: Vec::new() }
    }

    /// The response status, when this is a response frame with a known
    /// status byte.
    pub fn status(&self) -> Option<Status> {
        match self.kind {
            Kind::Response => Status::from_byte(self.code),
            _ => None,
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Appends the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind as u8);
        out.push(self.code);
        out.push(self.flags);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// The encoded frame as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }
}

/// Incremental frame decoder: feed it whatever bytes the socket
/// produced — any split, including mid-header — and pull complete frames
/// out. Invalid headers surface as [`WireError`] the moment the header
/// is complete, before any payload is awaited.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames; compacted
    /// lazily so decoding is amortised O(bytes).
    consumed: usize,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Drops consumed bytes once they dominate the buffer, keeping the
    /// cursor cheap for streams of many small frames.
    fn compact(&mut self) {
        if self.consumed > 0 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    /// Decodes the next complete frame. `Ok(None)` means the buffered
    /// bytes are a valid prefix (a torn frame) — push more and retry.
    /// An `Err` is unrecoverable for the stream: framing is lost.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let bytes = &self.buf[self.consumed..];
        if bytes.len() < HEADER_LEN {
            // Validate the magic as early as it can be told apart, so
            // garbage is rejected without waiting for a full header.
            let probe = bytes.len().min(MAGIC.len());
            if bytes[..probe] != MAGIC[..probe] {
                return Err(WireError::BadMagic);
            }
            return Ok(None);
        }
        if bytes[..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        if bytes[4] != VERSION {
            return Err(WireError::BadVersion(bytes[4]));
        }
        let kind = Kind::from_byte(bytes[5]).ok_or(WireError::BadKind(bytes[5]))?;
        let code = bytes[6];
        let flags = bytes[7];
        // INVARIANT: the slice bounds are constants inside HEADER_LEN,
        // which the length check above guarantees.
        let request_id = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        // INVARIANT: constant 4-byte slice inside HEADER_LEN, as above.
        let payload_len = u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte slice"));
        if payload_len as usize > MAX_PAYLOAD {
            return Err(WireError::Oversized(payload_len));
        }
        let total = HEADER_LEN + payload_len as usize;
        if bytes.len() < total {
            return Ok(None);
        }
        let payload = bytes[HEADER_LEN..total].to_vec();
        self.consumed += total;
        self.compact();
        Ok(Some(Frame { kind, code, flags, request_id, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips_one_frame() {
        let frame = Frame::request(42, 1, "how many funds are open");
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame.encode());
        assert_eq!(decoder.next_frame(), Ok(Some(frame)));
        assert_eq!(decoder.next_frame(), Ok(None));
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn torn_frame_waits_for_more_bytes() {
        let frame = Frame::response(7, Status::Ok, "SELECT 1");
        let bytes = frame.encode();
        let mut decoder = FrameDecoder::new();
        for split in 0..bytes.len() {
            // Every proper prefix is "not yet a frame", never an error.
            decoder.push(&bytes[split..split + 1]);
            if split + 1 < bytes.len() {
                assert_eq!(decoder.next_frame(), Ok(None), "split at {split}");
            }
        }
        assert_eq!(decoder.next_frame(), Ok(Some(frame)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut frame = Frame::request(1, 0, "q");
        frame.payload = Vec::new();
        let mut bytes = frame.encode();
        bytes[16..20].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes);
        assert_eq!(decoder.next_frame(), Err(WireError::Oversized(MAX_PAYLOAD as u32 + 1)));
    }

    #[test]
    fn garbage_magic_fails_fast_even_on_a_partial_header() {
        let mut decoder = FrameDecoder::new();
        decoder.push(b"GET ");
        assert_eq!(decoder.next_frame(), Err(WireError::BadMagic));
        // Even a single wrong byte is enough to tell.
        let mut decoder = FrameDecoder::new();
        decoder.push(b"X");
        assert_eq!(decoder.next_frame(), Err(WireError::BadMagic));
    }

    #[test]
    fn unknown_version_and_kind_are_rejected() {
        let frame = Frame::stats(3);
        let mut bytes = frame.encode();
        bytes[4] = 9;
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes);
        assert_eq!(decoder.next_frame(), Err(WireError::BadVersion(9)));

        let mut bytes = frame.encode();
        bytes[5] = 200;
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes);
        assert_eq!(decoder.next_frame(), Err(WireError::BadKind(200)));
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let frames = [
            Frame::request(1, 0, "a"),
            Frame::stats(2),
            Frame::response(1, Status::Busy, ""),
            Frame::shutdown(9),
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes);
        for f in &frames {
            assert_eq!(decoder.next_frame(), Ok(Some(f.clone())));
        }
        assert_eq!(decoder.next_frame(), Ok(None));
    }
}
