//! The hybrid training mix (paper §7.1): original pairs plus the three
//! augmentation streams, uniformly combined into the multi-task
//! fine-tuning dataset.

use crate::cot::{generate_cot, CotSettings};
use crate::skeleton_aug::skeleton_examples;
use crate::synonym::synonym_examples;
use bull::Lang;
use simllm::{ExampleKind, TrainExample};
use sqlengine::Database;

/// Which augmentation streams to include — the knobs of the paper's
/// Table 8 ablation.
#[derive(Debug, Clone, Copy)]
pub struct AugmentationFlags {
    pub cot: bool,
    pub synonyms: bool,
    pub skeleton: bool,
    /// Paraphrases per question for the synonym stream.
    pub synonyms_per_question: usize,
    pub seed: u64,
}

impl Default for AugmentationFlags {
    fn default() -> Self {
        AugmentationFlags { cot: true, synonyms: true, skeleton: true, synonyms_per_question: 3, seed: 7 }
    }
}

impl AugmentationFlags {
    /// No augmentation at all (the Table 8 "w/o Augmented Data" row).
    pub fn none() -> Self {
        AugmentationFlags { cot: false, synonyms: false, skeleton: false, ..Default::default() }
    }
}

/// Builds the training mix for one database's training pairs.
pub fn build_training_mix(
    db: &Database,
    pairs: &[(String, String)],
    lang: Lang,
    flags: AugmentationFlags,
) -> Vec<TrainExample> {
    let mut out: Vec<TrainExample> = pairs
        .iter()
        .map(|(q, sql)| TrainExample {
            question: q.clone(),
            sql: sql.clone(),
            kind: ExampleKind::Original,
        })
        .collect();
    if flags.cot {
        let report = generate_cot(db, pairs, CotSettings { seed: flags.seed, ..Default::default() });
        out.extend(report.accepted.into_iter().map(|c| TrainExample {
            // CoT examples train on reasoning + question jointly.
            question: c.question,
            sql: c.sql,
            kind: ExampleKind::Cot,
        }));
    }
    if flags.synonyms {
        out.extend(synonym_examples(pairs, lang, flags.synonyms_per_question).into_iter().map(
            |(q, sql)| TrainExample { question: q, sql, kind: ExampleKind::Synonym },
        ));
    }
    if flags.skeleton {
        out.extend(skeleton_examples(pairs).into_iter().map(|s| TrainExample {
            question: s.question,
            sql: s.sql,
            kind: ExampleKind::Skeleton,
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::Value;
    use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType};

    fn db() -> Database {
        let schema = CatalogSchema {
            db_id: "m".into(),
            tables: vec![CatalogTable {
                name: "t".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![CatalogColumn::new("a", ColType::Text, "", "")],
            }],
            foreign_keys: vec![],
        };
        let mut db = Database::new(schema);
        db.insert("t", vec![Value::from("x")]).unwrap();
        db
    }

    fn pairs() -> Vec<(String, String)> {
        vec![(
            "Show the records whose a is x.".to_string(),
            "SELECT a FROM t WHERE a = 'x'".to_string(),
        )]
    }

    #[test]
    fn full_mix_contains_all_kinds() {
        let mix = build_training_mix(&db(), &pairs(), Lang::En, AugmentationFlags::default());
        let kinds: std::collections::HashSet<_> = mix.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&ExampleKind::Original));
        assert!(kinds.contains(&ExampleKind::Synonym));
        assert!(kinds.contains(&ExampleKind::Skeleton));
        assert!(mix.len() > pairs().len());
    }

    #[test]
    fn disabled_streams_are_absent() {
        let mix = build_training_mix(&db(), &pairs(), Lang::En, AugmentationFlags::none());
        assert!(mix.iter().all(|e| e.kind == ExampleKind::Original));
        assert_eq!(mix.len(), 1);
    }

    #[test]
    fn mix_is_deterministic() {
        let a = build_training_mix(&db(), &pairs(), Lang::En, AugmentationFlags::default());
        let b = build_training_mix(&db(), &pairs(), Lang::En, AugmentationFlags::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.sql, y.sql);
        }
    }
}
