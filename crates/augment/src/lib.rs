//! Hybrid data augmentation (paper §6.1): chain-of-thought generation
//! with execution-based self-check, synonymous-question generation, and
//! rule-based skeleton augmentation, plus the uniform mixer that builds
//! the multi-task fine-tuning dataset.

#![forbid(unsafe_code)]

pub mod cot;
pub mod mix;
pub mod skeleton_aug;
pub mod synonym;

pub use cot::{generate_cot, CotOutcome, CotReport, CotSettings};
pub use mix::{build_training_mix, AugmentationFlags};
pub use skeleton_aug::skeleton_examples;
pub use synonym::{paraphrase, synonym_examples};
