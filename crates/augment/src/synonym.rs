//! Synonymous-question augmentation (paper §6.1.2, Figure 6).
//!
//! The paper prompts ChatGPT with few-shot paraphrase examples; we apply
//! the equivalent rewrite knowledge as deterministic rules spanning the
//! surface-style space of financial questions. Each rule is a phrase
//! substitution; a paraphrase applies one leading-style rule plus any
//! matching inner rules.

use bull::Lang;

/// English rewrite rules: `(from, to)` applied case-insensitively on the
/// first occurrence.
const EN_RULES: &[(&str, &str)] = &[
    ("what is the", "i want to know the"),
    ("what is the", "give me the"),
    ("what is the", "please list the"),
    ("what is the", "tell me the"),
    ("show the", "please list the"),
    ("show the", "give me the"),
    ("show me the", "return the"),
    ("find the", "i want the"),
    ("find the", "please give the"),
    ("list the", "return the"),
    ("count the", "how many are the"),
    ("how many", "what is the number of"),
    ("compute the", "please report the"),
    ("whose", "where the"),
    ("with the", "having the"),
    ("records", "entries"),
    ("i want to know", "give me"),
    ("please", "kindly"),
];

/// Chinese-register rewrite rules.
const CN_RULES: &[(&str, &str)] = &[
    ("是什么？", "是多少？"),
    ("查询", "请列出"),
    ("查询", "想知道"),
    ("展示", "请给出"),
    ("展示", "返回"),
    ("列出", "展示"),
    ("统计", "计算"),
    ("找出", "查找"),
    ("请列出", "告诉我"),
    ("多少条", "几条"),
    ("哪些", "什么"),
];

/// Produces up to `k` distinct paraphrases of a question. The original is
/// never included; fewer than `k` may be returned when the rules do not
/// fire.
pub fn paraphrase(question: &str, lang: Lang, k: usize) -> Vec<String> {
    let rules = match lang {
        Lang::En => EN_RULES,
        Lang::Cn => CN_RULES,
    };
    let mut out: Vec<String> = Vec::new();
    for (from, to) in rules {
        if out.len() >= k {
            break;
        }
        if let Some(rewritten) = apply_rule(question, from, to) {
            if rewritten != question && !out.contains(&rewritten) {
                out.push(rewritten);
            }
        }
    }
    // Second round: compose two rules for more variety.
    if out.len() < k {
        let firsts: Vec<String> = out.clone();
        for base in &firsts {
            for (from, to) in rules {
                if out.len() >= k {
                    break;
                }
                if let Some(rewritten) = apply_rule(base, from, to) {
                    if rewritten != *question && !out.contains(&rewritten) {
                        out.push(rewritten);
                    }
                }
            }
        }
    }
    out.truncate(k);
    out
}

/// Case-insensitive first-occurrence replacement preserving the rest of
/// the string. Returns `None` when the pattern does not occur.
fn apply_rule(text: &str, from: &str, to: &str) -> Option<String> {
    let lower = text.to_lowercase();
    let idx = lower.find(&from.to_lowercase())?;
    let mut out = String::with_capacity(text.len());
    out.push_str(&text[..idx]);
    out.push_str(to);
    out.push_str(&text[idx + from.len()..]);
    // Re-capitalise the sentence head.
    let mut chars = out.chars();
    chars.next().map(|c| c.to_uppercase().collect::<String>() + chars.as_str())
}

/// Expands `(question, sql)` pairs into synonym-augmented pairs: each
/// question yields up to `per_question` paraphrases carrying the same
/// SQL.
pub fn synonym_examples(
    pairs: &[(String, String)],
    lang: Lang,
    per_question: usize,
) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (q, sql) in pairs {
        for p in paraphrase(q, lang, per_question) {
            out.push((p, sql.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paraphrases_differ_from_original() {
        let q = "What is the unit net value of the fund whose fund name is Alpha?";
        let ps = paraphrase(q, Lang::En, 3);
        assert!(!ps.is_empty());
        for p in &ps {
            assert_ne!(p, q);
            assert!(p.contains("Alpha"), "entity must survive: {p}");
        }
    }

    #[test]
    fn paraphrases_are_distinct() {
        let q = "Show the closing price of the stock daily quote.";
        let ps = paraphrase(q, Lang::En, 4);
        let set: std::collections::HashSet<&String> = ps.iter().collect();
        assert_eq!(set.len(), ps.len());
    }

    #[test]
    fn cn_rules_fire_on_cn_questions() {
        let q = "查询基金类型为bond fund的基金的单位净值。";
        let ps = paraphrase(q, Lang::Cn, 2);
        assert!(!ps.is_empty());
        assert!(ps[0].contains("bond fund"));
    }

    #[test]
    fn paraphrase_styles_approach_unseen_phrasings() {
        // Training phrasings say "What is the …"; dev phrasing 4 says
        // "I want to know the …". The rule bank must bridge them.
        let q = "What is the issue scale amount of the fund master file whose fund type is bond fund?";
        let ps = paraphrase(q, Lang::En, 6);
        assert!(
            ps.iter().any(|p| p.to_lowercase().starts_with("i want to know the")),
            "{ps:?}"
        );
        assert!(ps.iter().any(|p| p.to_lowercase().starts_with("give me the")));
    }

    #[test]
    fn unmatched_questions_yield_nothing() {
        assert!(paraphrase("zzz qqq", Lang::En, 3).is_empty());
    }

    #[test]
    fn synonym_examples_carry_sql() {
        let pairs = vec![("Show the nav.".to_string(), "SELECT nav FROM t".to_string())];
        let ex = synonym_examples(&pairs, Lang::En, 2);
        assert!(!ex.is_empty());
        assert!(ex.iter().all(|(_, s)| s == "SELECT nav FROM t"));
    }
}
