//! Chain-of-thought augmentation with execution-based self-check
//! (paper §6.1.1, Figure 4, Table 3).
//!
//! For each training pair the pipeline (1) executes the gold SQL and
//! skips empty results, (2) asks an "LLM" to produce reasoning content
//! plus a reconstructed SQL, and (3) keeps the pair only when the
//! reconstruction's execution matches the gold execution. The reasoning
//! writer is a deterministic AST-walker; the LLM's fallibility is a
//! seeded reconstruction-error model whose rate depends on whether the
//! golden SQL was included in the prompt (the paper's with/without
//! self-check prompt designs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlengine::{results_match, run_sql, Database};
use sqlkit::ast::*;
use sqlkit::{parse_statement, to_sql};

/// Outcome categories of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CotOutcome {
    /// Reasoning generated and execution-verified.
    Success,
    /// Generated SQL disagreed with the gold execution (discarded).
    Failure,
    /// Gold SQL returned an empty result (skipped up front).
    EmptyExecution,
}

/// Aggregate counts over a dataset.
#[derive(Debug, Clone, Default)]
pub struct CotReport {
    pub success: usize,
    pub failure: usize,
    pub empty: usize,
    /// The accepted (question, reasoning, sql) triples.
    pub accepted: Vec<CotExample>,
}

impl CotReport {
    /// Success rate over all attempted examples.
    pub fn success_rate(&self) -> f64 {
        let total = self.success + self.failure + self.empty;
        if total == 0 {
            0.0
        } else {
            self.success as f64 / total as f64
        }
    }

    /// Failure and empty-execution rates (Table 3 columns).
    pub fn rates(&self) -> (f64, f64, f64) {
        let total = (self.success + self.failure + self.empty).max(1) as f64;
        (
            self.success as f64 / total,
            self.failure as f64 / total,
            self.empty as f64 / total,
        )
    }
}

/// An accepted CoT triple.
#[derive(Debug, Clone)]
pub struct CotExample {
    pub question: String,
    pub reasoning: String,
    pub sql: String,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct CotSettings {
    /// Whether the prompt includes the golden SQL (the paper's
    /// "w self-check" template of Figure 5). Without it the LLM must
    /// derive the SQL itself and errs far more often.
    pub golden_sql_in_prompt: bool,
    /// Reconstruction error rate with the golden SQL present.
    pub err_with_golden: f64,
    /// Reconstruction error rate without it.
    pub err_without_golden: f64,
    pub seed: u64,
}

impl Default for CotSettings {
    fn default() -> Self {
        CotSettings {
            golden_sql_in_prompt: true,
            err_with_golden: 0.24,
            err_without_golden: 0.72,
            seed: 99,
        }
    }
}

/// Runs the CoT pipeline over `(question, sql)` pairs against their
/// database.
pub fn generate_cot(
    db: &Database,
    pairs: &[(String, String)],
    settings: CotSettings,
) -> CotReport {
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let mut report = CotReport::default();
    let err_rate = if settings.golden_sql_in_prompt {
        settings.err_with_golden
    } else {
        settings.err_without_golden
    };
    for (question, sql) in pairs {
        // Step 1: execution filter.
        let gold_result = match run_sql(db, sql) {
            Ok(r) if !r.is_empty() => r,
            _ => {
                report.empty += 1;
                continue;
            }
        };
        // Step 2: "LLM" generates reasoning + SQL.
        let reconstructed = reconstruct_sql(sql, err_rate, &mut rng);
        // Step 3: self-check by execution agreement.
        let agree = match run_sql(db, &reconstructed) {
            Ok(r) => {
                let ordered = has_order_by(sql);
                results_match(&r, &gold_result, ordered)
            }
            Err(_) => false,
        };
        if agree {
            report.success += 1;
            report.accepted.push(CotExample {
                question: question.clone(),
                reasoning: write_reasoning(sql, false),
                sql: reconstructed,
            });
        } else {
            report.failure += 1;
        }
    }
    report
}

fn has_order_by(sql: &str) -> bool {
    matches!(parse_statement(sql), Ok(Statement::Select(q)) if !q.order_by.is_empty())
}

/// The simulated LLM reconstruction: with probability `err_rate` it
/// produces a semantically drifted SQL (changed predicate value, dropped
/// predicate, or swapped aggregate) — the kinds of mistakes GPT makes
/// when asked to restate a query.
fn reconstruct_sql(sql: &str, err_rate: f64, rng: &mut StdRng) -> String {
    let Ok(Statement::Select(q)) = parse_statement(sql) else {
        return sql.to_string();
    };
    let canonical = to_sql(&Statement::Select(q.clone()));
    if !rng.gen_bool(err_rate) {
        return canonical;
    }
    // Introduce a semantic drift; try the drift kinds in a rotated order
    // until one actually changes the query (a "drift" that rewrites the
    // SQL to itself is not an error).
    let start = rng.gen_range(0..3);
    for off in 0..3u32 {
        let mut qq = q.clone();
        match (start + off) % 3 {
            0 => drift_literal(&mut qq, rng),
            1 => drop_predicate(&mut qq),
            _ => swap_aggregate(&mut qq),
        }
        let out = to_sql(&Statement::Select(qq));
        if out != canonical {
            return out;
        }
    }
    // Last resort: truncate the result set.
    let mut qq = q;
    qq.limit = Some(sqlkit::ast::Limit { count: 1, offset: 0 });
    to_sql(&Statement::Select(qq))
}

fn drift_literal(q: &mut SelectStmt, rng: &mut StdRng) {
    sqlkit::repair::visit_selects_mut(&mut q.body, &mut |s| {
        if let Some(w) = &mut s.selection {
            drift_expr(w, rng);
        }
    });
}

fn drift_expr(e: &mut Expr, rng: &mut StdRng) {
    match e {
        Expr::Literal(Literal::Str(s)) => {
            s.push_str(" x");
        }
        Expr::Literal(Literal::Int(v)) => {
            *v += 1;
        }
        Expr::Literal(Literal::Float(v)) => {
            *v *= 1.5;
        }
        Expr::Binary { left, right, .. } => {
            // Drift one side only, favouring literals on the right.
            if matches!(right.as_ref(), Expr::Literal(_)) || rng.gen_bool(0.5) {
                drift_expr(right, rng);
            } else {
                drift_expr(left, rng);
            }
        }
        Expr::InList { list, .. } => {
            if let Some(first) = list.first_mut() {
                drift_expr(first, rng);
            }
        }
        Expr::Between { low, .. } => drift_expr(low, rng),
        Expr::Like { pattern, .. } => drift_expr(pattern, rng),
        _ => {}
    }
}

fn drop_predicate(q: &mut SelectStmt) {
    sqlkit::repair::visit_selects_mut(&mut q.body, &mut |s| {
        if let Some(w) = &s.selection {
            if let Expr::Binary { op: BinaryOp::And, left, .. } = w {
                let keep = left.as_ref().clone();
                s.selection = Some(keep);
            } else {
                s.selection = None;
            }
        }
    });
}

fn swap_aggregate(q: &mut SelectStmt) {
    sqlkit::repair::visit_selects_mut(&mut q.body, &mut |s| {
        for item in &mut s.items {
            if let SelectItem::Expr { expr: Expr::Function { name, .. }, .. } = item {
                let swapped = match name.as_str() {
                    "AVG" => "SUM",
                    "SUM" => "AVG",
                    "MIN" => "MAX",
                    "MAX" => "MIN",
                    other => other,
                };
                *name = swapped.to_string();
            }
        }
    });
}

/// Deterministic reasoning writer: walks the AST and narrates the plan,
/// in the style the paper's Figure 5 prompt elicits.
pub fn write_reasoning(sql: &str, cn: bool) -> String {
    let Ok(Statement::Select(q)) = parse_statement(sql) else {
        return String::new();
    };
    let SetExpr::Select(s) = &q.body else {
        return "The query combines two sub-queries with a set operation.".to_string();
    };
    let mut steps: Vec<String> = Vec::new();
    if let Some(from) = &s.from {
        if from.joins.is_empty() {
            steps.push(if cn {
                format!("首先，在表{}中定位数据。", from.base.name)
            } else {
                format!("First, locate the data in table {}.", from.base.name)
            });
        } else {
            let mut tables = vec![from.base.name.clone()];
            tables.extend(from.joins.iter().map(|j| j.table.name.clone()));
            steps.push(if cn {
                format!("首先，按声明的键连接表{}。", tables.join("、"))
            } else {
                format!("First, join tables {} on their declared key columns.", tables.join(", "))
            });
        }
    }
    if let Some(w) = &s.selection {
        steps.push(if cn {
            format!("然后，仅保留满足{}的行。", describe_predicate(w))
        } else {
            format!("Then, keep only the rows satisfying {}.", describe_predicate(w))
        });
    }
    if !s.group_by.is_empty() {
        steps.push(
            if cn { "接着，按所需的键对剩余行分组。" } else { "Next, group the remaining rows by the requested key." }
                .to_string(),
        );
    }
    if s.having.is_some() {
        steps.push(
            if cn { "仅保留通过HAVING条件的分组。" } else { "Keep only the groups passing the HAVING condition." }
                .to_string(),
        );
    }
    if !q.order_by.is_empty() {
        steps.push(
            if cn { "然后，按所需指标对行排序。" } else { "Then, sort the rows by the requested measure." }
                .to_string(),
        );
    }
    if q.limit.is_some() {
        steps.push(
            if cn { "最后，仅返回所需数量的行。" } else { "Finally, return only the requested number of rows." }
                .to_string(),
        );
    }
    steps.push(
        if cn { "最后，投影所需的列。" } else { "Finally, project the requested columns." }.to_string(),
    );
    steps.join(" ")
}

fn describe_predicate(e: &Expr) -> String {
    let parts = sqlkit::components::conjuncts(e);
    let descs: Vec<String> = parts
        .iter()
        .map(|p| match p {
            Expr::Binary { op, left, right } => {
                format!("{} {} {}", expr_text(left), op.sql(), expr_text(right))
            }
            Expr::Like { expr, pattern, .. } => {
                format!("{} matching {}", expr_text(expr), expr_text(pattern))
            }
            Expr::Between { expr, low, high, .. } => format!(
                "{} between {} and {}",
                expr_text(expr),
                expr_text(low),
                expr_text(high)
            ),
            Expr::InSubquery { expr, .. } => {
                format!("{} appearing in the sub-query result", expr_text(expr))
            }
            _ => "the stated condition".to_string(),
        })
        .collect();
    descs.join(" and ")
}

fn expr_text(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.column.clone(),
        Expr::Literal(Literal::Str(s)) => format!("'{s}'"),
        Expr::Literal(Literal::Int(v)) => v.to_string(),
        Expr::Literal(Literal::Float(v)) => v.to_string(),
        Expr::Subquery(_) => "a computed value".to_string(),
        _ => "an expression".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::Value;
    use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType};

    fn db() -> Database {
        let schema = CatalogSchema {
            db_id: "c".into(),
            tables: vec![CatalogTable {
                name: "t".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![
                    CatalogColumn::new("a", ColType::Text, "", ""),
                    CatalogColumn::new("m", ColType::Float, "", ""),
                ],
            }],
            foreign_keys: vec![],
        };
        let mut db = Database::new(schema);
        for (a, m) in [("x", 1.0), ("x", 2.0), ("y", 3.0)] {
            db.insert("t", vec![Value::from(a), Value::Float(m)]).unwrap();
        }
        db
    }

    fn pairs(n: usize) -> Vec<(String, String)> {
        (0..n)
            .map(|i| {
                let v = if i % 8 == 7 { "ghost" } else { "x" }; // ~12% empty
                (format!("question {i}"), format!("SELECT m FROM t WHERE a = '{v}'"))
            })
            .collect()
    }

    #[test]
    fn empty_executions_are_skipped() {
        let db = db();
        let report = generate_cot(&db, &pairs(80), CotSettings::default());
        assert_eq!(report.empty, 10);
        assert_eq!(report.success + report.failure, 70);
    }

    #[test]
    fn self_check_prompt_beats_unchecked() {
        // The Table 3 shape: golden-SQL prompting succeeds far more often.
        let db = db();
        let with = generate_cot(
            &db,
            &pairs(300),
            CotSettings { golden_sql_in_prompt: true, ..Default::default() },
        );
        let without = generate_cot(
            &db,
            &pairs(300),
            CotSettings { golden_sql_in_prompt: false, ..Default::default() },
        );
        assert!(
            with.success_rate() > without.success_rate() + 0.2,
            "with {} vs without {}",
            with.success_rate(),
            without.success_rate()
        );
        assert_eq!(with.empty, without.empty, "empty rate is prompt-independent");
    }

    #[test]
    fn accepted_sql_matches_gold_execution() {
        let db = db();
        let report = generate_cot(&db, &pairs(100), CotSettings::default());
        for ex in &report.accepted {
            let got = run_sql(&db, &ex.sql).unwrap();
            assert!(!got.is_empty());
            assert!(!ex.reasoning.is_empty());
        }
    }

    #[test]
    fn reasoning_narrates_plan_steps() {
        let r = write_reasoning(
            "SELECT a FROM t JOIN u ON t.k = u.k WHERE m > 5 GROUP BY a ORDER BY a DESC LIMIT 3",
            false,
        );
        for needle in ["join", "rows satisfying", "group", "sort", "number of rows", "project"] {
            assert!(r.contains(needle), "missing {needle:?} in {r}");
        }
    }

    #[test]
    fn cn_reasoning_is_translated() {
        let r = write_reasoning("SELECT a FROM t WHERE m > 5", true);
        assert!(r.chars().any(|c| c as u32 >= 0x4E00), "expected CJK in {r}");
    }

    #[test]
    fn drift_changes_execution() {
        let db = db();
        let mut rng = StdRng::seed_from_u64(5);
        let sql = "SELECT COUNT(*) FROM t WHERE a = 'x'";
        // With error rate 1.0 every reconstruction drifts.
        let drifted = reconstruct_sql(sql, 1.0, &mut rng);
        assert_ne!(drifted, sql);
        let gold = run_sql(&db, sql).unwrap();
        let got = run_sql(&db, &drifted).unwrap();
        assert!(!results_match(&gold, &got, false), "drift must change results: {drifted}");
    }
}
