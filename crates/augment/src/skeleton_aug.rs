//! Rule-based skeleton augmentation (paper §6.1.3, Figures 7–8).
//!
//! Extracts the SQL skeleton of each training pair and emits
//! skeleton-aware training examples: the model is supervised to produce
//! the skeleton first and the SQL second, which in our substrate means
//! extra skeleton-anchor supervision for the same question.

use sqlkit::skeleton_of;

/// A skeleton-augmented training record.
#[derive(Debug, Clone)]
pub struct SkeletonExample {
    pub question: String,
    pub skeleton: String,
    pub sql: String,
}

/// Builds skeleton examples from `(question, sql)` pairs, dropping pairs
/// whose SQL does not parse.
pub fn skeleton_examples(pairs: &[(String, String)]) -> Vec<SkeletonExample> {
    pairs
        .iter()
        .filter_map(|(q, sql)| {
            skeleton_of(sql).map(|skeleton| SkeletonExample {
                question: q.clone(),
                skeleton,
                sql: sql.clone(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_skeletons() {
        let pairs = vec![
            ("q1".to_string(), "SELECT a FROM t WHERE b = 'x'".to_string()),
            ("q2".to_string(), "not sql".to_string()),
        ];
        let out = skeleton_examples(&pairs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].skeleton, "SELECT _ FROM _ WHERE _ = _");
        assert_eq!(out[0].sql, "SELECT a FROM t WHERE b = 'x'");
    }

    #[test]
    fn same_structure_shares_skeleton() {
        let pairs = vec![
            ("q1".to_string(), "SELECT nav FROM f WHERE t = 'a'".to_string()),
            ("q2".to_string(), "SELECT price FROM s WHERE u = 'b'".to_string()),
        ];
        let out = skeleton_examples(&pairs);
        assert_eq!(out[0].skeleton, out[1].skeleton);
    }
}
