//! Dataset assembly: examples, splits, and the top-level [`BullDataset`].

use crate::datagen::{mint_ticks, populate, GeneratedDb};
use crate::schema::DbId;
use crate::templates::{TemplateCtx, ARCHETYPES, PHRASINGS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlengine::Database;
use sqlkit::catalog::Lang;
use std::collections::HashSet;

/// Train/dev split membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    Train,
    Dev,
}

/// One annotated question–SQL pair.
#[derive(Debug, Clone)]
pub struct BullExample {
    pub id: u32,
    pub db: DbId,
    pub split: Split,
    pub question_en: String,
    pub question_cn: String,
    pub sql: String,
    /// The archetype (template family) this example instantiates. Models
    /// never see this — it exists for analysis and tests.
    pub archetype: &'static str,
    /// Which surface phrasing was used (training uses only the first
    /// [`TRAIN_PHRASINGS`]; dev draws from all [`PHRASINGS`], which is the
    /// linguistic-diversity gap synonym augmentation closes).
    pub phrasing: usize,
    /// Tables the gold SQL touches (schema-linking labels).
    pub gold_tables: Vec<String>,
    /// `(table, column)` pairs the gold SQL touches.
    pub gold_columns: Vec<(String, String)>,
}

impl BullExample {
    /// The question in the requested register.
    pub fn question(&self, lang: Lang) -> &str {
        match lang {
            Lang::En => &self.question_en,
            Lang::Cn => &self.question_cn,
        }
    }
}

/// Phrasing indices available to the training annotators. The paper notes
/// annotators label each SQL with a single question; style diversity in
/// the dev set beyond the training styles is exactly what the synonymous
/// question augmentation compensates for.
pub const TRAIN_PHRASINGS: usize = 3;

/// Paper split sizes per database: (train, dev).
pub fn split_sizes(db: DbId) -> (usize, usize) {
    match db {
        DbId::Fund => (1744, 405),
        DbId::Stock => (1672, 464),
        DbId::Macro => (550, 131),
    }
}

/// The full benchmark: three populated databases plus all examples.
pub struct BullDataset {
    fund: GeneratedDb,
    stock: GeneratedDb,
    macro_econ: GeneratedDb,
    pub examples: Vec<BullExample>,
}

impl BullDataset {
    /// Generates the benchmark deterministically from a seed.
    pub fn generate(seed: u64) -> Self {
        let fund = populate(DbId::Fund, seed);
        let stock = populate(DbId::Stock, seed.wrapping_add(1));
        let macro_econ = populate(DbId::Macro, seed.wrapping_add(2));
        let mut examples = Vec::new();
        let mut next_id = 0u32;
        for (db_id, gdb) in
            [(DbId::Fund, &fund), (DbId::Stock, &stock), (DbId::Macro, &macro_econ)]
        {
            let (n_train, n_dev) = split_sizes(db_id);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A ^ (db_id as u64) << 8);
            let ctx = TemplateCtx::new(db_id, gdb);
            let mut seen: HashSet<(String, String)> = HashSet::new();
            for (split, count, phrasing_cap) in [
                (Split::Train, n_train, TRAIN_PHRASINGS),
                (Split::Dev, n_dev, PHRASINGS),
            ] {
                let mut made = 0usize;
                let mut attempts = 0usize;
                while made < count {
                    attempts += 1;
                    assert!(
                        attempts < count * 200,
                        "template bank exhausted for {db_id} {split:?} after {made} examples"
                    );
                    let archetype = ARCHETYPES[rng.gen_range(0..ARCHETYPES.len())];
                    // Dev questions mostly reuse the annotators' styles
                    // (the first TRAIN_PHRASINGS) but a 30% tail uses
                    // novel styles — the linguistic-diversity gap the
                    // paper's synonym augmentation addresses.
                    let phrasing = if phrasing_cap <= TRAIN_PHRASINGS || rng.gen_bool(0.7) {
                        rng.gen_range(0..TRAIN_PHRASINGS.min(phrasing_cap))
                    } else {
                        rng.gen_range(TRAIN_PHRASINGS..phrasing_cap)
                    };
                    let Some(d) = ctx.instantiate(archetype, phrasing, &mut rng) else {
                        continue;
                    };
                    let key = (d.sql.clone(), d.question_en.clone());
                    if !seen.insert(key) {
                        continue;
                    }
                    examples.push(BullExample {
                        id: next_id,
                        db: db_id,
                        split,
                        question_en: d.question_en,
                        question_cn: d.question_cn,
                        sql: d.sql,
                        archetype: d.archetype,
                        phrasing: d.phrasing,
                        gold_tables: d.tables,
                        gold_columns: d.columns,
                    });
                    next_id += 1;
                    made += 1;
                }
            }
        }
        BullDataset { fund, stock, macro_econ, examples }
    }

    /// The populated database for a database id.
    pub fn db(&self, id: DbId) -> &Database {
        match id {
            DbId::Fund => &self.fund.db,
            DbId::Stock => &self.stock.db,
            DbId::Macro => &self.macro_econ.db,
        }
    }

    /// The generation artifacts (database plus key pools).
    pub fn generated(&self, id: DbId) -> &GeneratedDb {
        match id {
            DbId::Fund => &self.fund,
            DbId::Stock => &self.stock,
            DbId::Macro => &self.macro_econ,
        }
    }

    /// Mutable access to one database — the entry point for the live
    /// append path (`Database::append_rows` / `apply_changes`).
    pub fn db_mut(&mut self, id: DbId) -> &mut Database {
        match id {
            DbId::Fund => &mut self.fund.db,
            DbId::Stock => &mut self.stock.db,
            DbId::Macro => &mut self.macro_econ.db,
        }
    }

    /// Mints a deterministic batch of live tick rows for one database
    /// (see [`crate::datagen::mint_ticks`]): FK-valid rows for the leaf
    /// fact tables, ready for `apply_changes` on [`BullDataset::db_mut`].
    pub fn mint_ticks(
        &self,
        id: DbId,
        seed: u64,
        rows_per_table: usize,
    ) -> Vec<(String, Vec<Vec<sqlengine::Value>>)> {
        mint_ticks(id, self.generated(id), seed, rows_per_table)
    }

    /// Examples of one database and split.
    pub fn examples_for(&self, db: DbId, split: Split) -> Vec<&BullExample> {
        self.examples.iter().filter(|e| e.db == db && e.split == split).collect()
    }

    /// All examples of one split across databases.
    pub fn split(&self, split: Split) -> Vec<&BullExample> {
        self.examples.iter().filter(|e| e.split == split).collect()
    }

    /// Total number of examples (paper: 4,966).
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when no examples were generated (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BullDataset {
        // Full generation is exercised by integration tests; unit tests use
        // the real thing once (it is cached below for reuse).
        BullDataset::generate(0xB011)
    }

    #[test]
    fn split_sizes_match_paper() {
        let ds = small();
        assert_eq!(ds.len(), 4966);
        for db in DbId::ALL {
            let (train, dev) = split_sizes(db);
            assert_eq!(ds.examples_for(db, Split::Train).len(), train, "{db} train");
            assert_eq!(ds.examples_for(db, Split::Dev).len(), dev, "{db} dev");
        }
    }

    #[test]
    fn train_phrasings_are_restricted() {
        let ds = small();
        for e in ds.split(Split::Train) {
            assert!(e.phrasing < TRAIN_PHRASINGS);
        }
        // Dev must actually use the extra styles.
        let dev_unseen =
            ds.split(Split::Dev).iter().filter(|e| e.phrasing >= TRAIN_PHRASINGS).count();
        assert!(dev_unseen > 100, "dev must contain unseen phrasings, got {dev_unseen}");
    }

    #[test]
    fn examples_are_unique() {
        let ds = small();
        let mut seen = HashSet::new();
        for e in &ds.examples {
            assert!(seen.insert((e.db, e.sql.clone(), e.question_en.clone())));
        }
    }

    #[test]
    fn all_gold_sql_executes() {
        let ds = small();
        let mut failures = 0;
        for e in &ds.examples {
            if sqlengine::run_sql(ds.db(e.db), &e.sql).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 0, "{failures} gold queries failed to execute");
    }

    #[test]
    fn nonempty_execution_rate_is_high() {
        // The paper's Table 3 reports 12.6% of gold queries return empty
        // results; our generator should be in the same regime (most
        // queries non-empty, a nontrivial empty tail).
        let ds = small();
        let mut empty = 0usize;
        for e in &ds.examples {
            if sqlengine::run_sql(ds.db(e.db), &e.sql).map(|r| r.is_empty()).unwrap_or(true) {
                empty += 1;
            }
        }
        let rate = empty as f64 / ds.len() as f64;
        assert!(rate < 0.35, "too many empty-result gold queries: {rate:.2}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = BullDataset::generate(99);
        let b = BullDataset::generate(99);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.examples.iter().zip(&b.examples) {
            assert_eq!(x.sql, y.sql);
            assert_eq!(x.question_en, y.question_en);
        }
    }

    #[test]
    fn cn_register_differs_from_en() {
        let ds = small();
        let with_cjk = ds
            .examples
            .iter()
            .filter(|e| e.question_cn.chars().any(|c| c as u32 >= 0x4E00))
            .count();
        assert!(with_cjk == ds.len(), "all cn questions must contain CJK");
    }
}
