//! Column value profiles: the single source of truth for what kind of
//! values each column holds.
//!
//! Both the data generator (which must fill every column plausibly) and
//! the question templates (which must know which columns are filterable
//! entities, categories, dates or measures) consult the same profile, so
//! questions always mention values that can actually occur in the data.

use crate::schema::DbId;
use sqlkit::catalog::{CatalogColumn, CatalogSchema, ColType};

/// What kind of values a column holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Primary entity key of a master table (sequential ids).
    PrimaryKey,
    /// References another table's key pool.
    ForeignKey,
    /// Exchange-style zero-padded security code text.
    SecurityCode,
    /// Calendar date from the benchmark's date pool.
    Date,
    /// Report year (2018–2022).
    Year,
    /// Report quarter (1–4).
    Quarter,
    /// Low-cardinality categorical text drawn from a fixed pool.
    Category(CategoryPool),
    /// A unique entity display name.
    EntityName(NameKind),
    /// Percentage-like float (0–100).
    Ratio,
    /// Small positive float (NAV, rates, indexes near 1–10).
    SmallFloat,
    /// Market price (1–500).
    Price,
    /// Large monetary amount.
    Amount,
    /// Positive integer count.
    Count,
    /// 0/1 flag.
    Flag,
    /// Small integer grade 1–5.
    Grade,
    /// Free text nobody filters on (titles, remarks, addresses).
    FreeText,
}

/// Which categorical pool a category column draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CategoryPool {
    FundType,
    FundStatus,
    Gender,
    Education,
    City,
    Province,
    Industry1,
    Industry2,
    Industry3,
    Exchange,
    Board,
    AnnType,
    BondType,
    ChangeType,
    ShareCharacter,
    HolderType,
    ViolationType,
    IssueType,
    Purpose,
    ProgressStatus,
    SuspendReason,
    SuspendType,
    RatingGradeText,
    IndexType,
    Currency,
    Agency,
    Standard,
    TradeStatus,
    OpenFrequency,
    CityTier,
    Region,
    Position,
    TradePartner,
}

impl CategoryPool {
    /// The fixed members of each pool.
    pub fn values(self) -> &'static [&'static str] {
        match self {
            CategoryPool::FundType => &[
                "stock fund",
                "bond fund",
                "mixed fund",
                "money fund",
                "index fund",
                "QDII fund",
            ],
            CategoryPool::FundStatus => &["normal", "issuing", "closed", "liquidated"],
            CategoryPool::Gender => &["male", "female"],
            CategoryPool::Education => &["bachelor", "master", "doctor"],
            CategoryPool::City => &[
                "Beijing", "Shanghai", "Shenzhen", "Guangzhou", "Hangzhou", "Chengdu", "Nanjing",
                "Wuhan",
            ],
            CategoryPool::Province => &[
                "Guangdong", "Zhejiang", "Jiangsu", "Beijing", "Shanghai", "Sichuan", "Hubei",
                "Shandong",
            ],
            CategoryPool::Industry1 => &[
                "Banks",
                "Food and Beverage",
                "Pharmaceuticals",
                "Electronics",
                "Real Estate",
                "Machinery",
                "Chemicals",
                "Utilities",
            ],
            CategoryPool::Industry2 => &[
                "Liquor",
                "Semiconductors",
                "Chemical Pharmacy",
                "City Banks",
                "Property Development",
                "General Machinery",
                "Basic Chemicals",
                "Power Generation",
            ],
            CategoryPool::Industry3 => &[
                "White Liquor",
                "Digital Chips",
                "Generic Drugs",
                "Regional Banks",
                "Residential Development",
                "Machine Tools",
                "Fertilizers",
                "Thermal Power",
            ],
            CategoryPool::Exchange => &["Shanghai Stock Exchange", "Shenzhen Stock Exchange"],
            CategoryPool::Board => &["main board", "growth board", "star board"],
            CategoryPool::AnnType => &[
                "dividend notice",
                "manager change",
                "quarterly report",
                "fee change",
                "suspension notice",
            ],
            CategoryPool::BondType => &["treasury bond", "corporate bond", "convertible bond", "financial bond"],
            CategoryPool::ChangeType => &["increase", "decrease", "new", "exit", "unchanged"],
            CategoryPool::ShareCharacter => &["circulating A shares", "restricted shares", "state shares"],
            CategoryPool::HolderType => &["institution", "individual", "state owned"],
            CategoryPool::ViolationType => &[
                "information disclosure violation",
                "insider trading",
                "fund misuse",
                "market manipulation",
            ],
            CategoryPool::IssueType => &["public issue", "private placement"],
            CategoryPool::Purpose => &["equity incentive", "market value management", "capital reduction"],
            CategoryPool::ProgressStatus => &["board proposal", "in progress", "completed", "terminated"],
            CategoryPool::SuspendReason => &[
                "major asset restructuring",
                "material announcement",
                "abnormal fluctuation",
                "shareholder meeting",
            ],
            CategoryPool::SuspendType => &["intraday", "one day", "continuous"],
            CategoryPool::RatingGradeText => &["buy", "overweight", "hold", "underweight"],
            CategoryPool::IndexType => &["composite index", "sector index", "style index"],
            CategoryPool::Currency => &["USD", "EUR", "HKD"],
            CategoryPool::Agency => &[
                "Morningstar",
                "Galaxy Securities",
                "CITIC Securities",
                "Haitong Securities",
                "Merchants Securities",
            ],
            CategoryPool::Standard => &["CSRC standard", "SW standard", "GICS standard"],
            CategoryPool::TradeStatus => &["open", "suspended", "limited"],
            CategoryPool::OpenFrequency => &["quarterly", "semiannual", "annual"],
            CategoryPool::CityTier => &["first tier", "second tier", "third tier"],
            CategoryPool::Region => &[
                "Guangdong", "Zhejiang", "Jiangsu", "Beijing", "Shanghai", "Sichuan", "Hubei",
                "Shandong",
            ],
            CategoryPool::Position => &[
                "chairman",
                "general manager",
                "chief financial officer",
                "board secretary",
                "vice president",
            ],
            CategoryPool::TradePartner => &["ASEAN", "EU", "US", "Japan", "Korea"],
        }
    }
}

/// What kind of entity name a name column holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameKind {
    Fund,
    FundAbbr,
    Company,
    CompanyAbbr,
    Person,
    Stock,
    Bond,
    Index,
    IndexAbbr,
    Benchmark,
    Bank,
    Branch,
    Advisor,
    Concept,
    Underwriter,
}

/// Determines the profile of a column.
pub fn profile_of(db: DbId, table: &str, col: &CatalogColumn, schema: &CatalogSchema) -> Profile {
    let name = col.name.as_str();
    // Audit/free-text columns first.
    if matches!(name, "xgrq") {
        return Profile::Date;
    }
    if matches!(name, "jsid") {
        return Profile::Count;
    }
    if matches!(
        name,
        "infosource"
            | "remark"
            | "resume"
            | "website"
            | "zipcode"
            | "regaddress"
            | "officeaddress"
            | "anntitle"
            | "annformat"
            | "typedesc"
            | "punishdesc"
            | "dividendplan"
            | "impairmentreason"
    ) {
        return Profile::FreeText;
    }
    // Keys: FK target (primary) or FK source.
    let is_fk_source = schema
        .foreign_keys
        .iter()
        .any(|fk| fk.from_table == table && fk.from_column == name);
    let is_fk_target =
        schema.foreign_keys.iter().any(|fk| fk.to_table == table && fk.to_column == name);
    if is_fk_target && col.ty == ColType::Int {
        return Profile::PrimaryKey;
    }
    if is_fk_source {
        return Profile::ForeignKey;
    }
    if name == "secucode" {
        return Profile::SecurityCode;
    }
    if col.ty == ColType::Date {
        return Profile::Date;
    }
    // Categorical text columns.
    if col.ty == ColType::Text {
        if let Some(pool) = category_pool(db, table, name) {
            return Profile::Category(pool);
        }
        if let Some(kind) = name_kind(db, table, name) {
            return Profile::EntityName(kind);
        }
        return Profile::FreeText;
    }
    // Integer columns.
    if col.ty == ColType::Int {
        if name.contains("year") {
            return Profile::Year;
        }
        if name.contains("quarter") {
            return Profile::Quarter;
        }
        if name.starts_with("is") || name == "isvalid" || name == "isincumbent" {
            return Profile::Flag;
        }
        if name.starts_with("rating") || name == "riskevel" || name.ends_with("level") {
            return Profile::Grade;
        }
        if name.ends_with("code") {
            // Non-FK code columns (bondcode, conceptcode, stockinnercode).
            return Profile::Count;
        }
        return Profile::Count;
    }
    // Float columns by name.
    if name.contains("ratio")
        || name.contains("rate")
        || name.contains("pct")
        || name.contains("yoy")
        || name.ends_with("cpi")
        || name.ends_with("ppi")
        || name.ends_with("pmi")
        || name.contains("drawdown")
        || name.contains("utilization")
    {
        return Profile::Ratio;
    }
    if name.contains("price") || name.contains("point") {
        return Profile::Price;
    }
    if name.contains("nav")
        || name.contains("eps")
        || name.contains("sharpe")
        || name.contains("beta")
        || name.contains("index")
        || name.contains("iopv")
        || name.contains("shibor")
        || name.contains("lpr")
        || name.contains("usdcny")
        || name.contains("eurcny")
        || name.contains("jpycny")
        || name.contains("gbpcny")
        || name.contains("hkdcny")
        || name.contains("years")
        || name.contains("experience")
        || name.contains("age")
        || name.contains("return")
        || name.contains("yield")
        || name.contains("error")
        || name.contains("m0growth")
        || name.contains("stddev")
    {
        return Profile::SmallFloat;
    }
    Profile::Amount
}

fn category_pool(db: DbId, table: &str, name: &str) -> Option<CategoryPool> {
    use CategoryPool as C;
    Some(match name {
        "fundtype" => C::FundType,
        "fundstatus" => C::FundStatus,
        "gender" => C::Gender,
        "education" => C::Education,
        "city" | "cityname" => C::City,
        "province" => C::Province,
        "firstindustryname" => C::Industry1,
        "secondindustryname" => C::Industry2,
        "thirdindustryname" => C::Industry3,
        "listexchange" => C::Exchange,
        "listboard" => C::Board,
        "anntype" => C::AnnType,
        "bondtype" => C::BondType,
        "sharechangetype" | "ratingchange" | "transformtype" | "issuetype" if table != "lc_additionalissue" => C::ChangeType,
        "issuetype" => C::IssueType,
        "sharecharacter" => C::ShareCharacter,
        "holdertype" => C::HolderType,
        "violationtype" => C::ViolationType,
        "repurchasepurpose" => C::Purpose,
        "progressstatus" | "planstatus" | "liststatus" => C::ProgressStatus,
        "suspendreason" => C::SuspendReason,
        "suspendtype" => C::SuspendType,
        "ratinggrade" => C::RatingGradeText,
        "indextype" => C::IndexType,
        "quotacurrency" => C::Currency,
        "approvalagency" | "agencyname" | "punishagency" => C::Agency,
        "standard" => C::Standard,
        "purchasestatus" | "redeemstatus" => C::TradeStatus,
        "openfrequency" => C::OpenFrequency,
        "citytier" => C::CityTier,
        "regionname" | "tradepartner" if db == DbId::Macro => {
            if name == "tradepartner" {
                C::TradePartner
            } else {
                C::Region
            }
        }
        "position" | "postname" => C::Position,
        "changereason" => C::SuspendReason,
        _ => return None,
    })
}

fn name_kind(db: DbId, table: &str, name: &str) -> Option<NameKind> {
    use NameKind as N;
    Some(match (db, table, name) {
        (DbId::Fund, "mf_fundarchives", "chiname") => N::Fund,
        (DbId::Fund, "mf_fundarchives", "chinameabbr") => N::FundAbbr,
        (DbId::Fund, "mf_managerinfo", "mgrname") => N::Person,
        (DbId::Fund, "mf_fundcompany", "companyname") => N::Company,
        (DbId::Fund, "mf_fundcompany", "abbrname") => N::CompanyAbbr,
        (DbId::Fund, "mf_fundcompany", "generalmanager") => N::Person,
        (DbId::Fund, "mf_keystockportfolio", "stockname") => N::Stock,
        (DbId::Fund, "mf_bondportfolio", "bondname") => N::Bond,
        (DbId::Fund, "mf_benchmark", "benchmarkname") => N::Benchmark,
        (DbId::Fund, "mf_fundtypeinfo", "fundtypename") => N::Concept,
        (DbId::Fund, "mf_custodian", "custodianname") => N::Bank,
        (DbId::Fund, "mf_custodian", "abbrname") => N::CompanyAbbr,
        (DbId::Fund, "mf_investadvisor", "advisorname") => N::Advisor,
        (DbId::Fund, "mf_investadvisor", "abbrname") => N::CompanyAbbr,
        (DbId::Stock, "lc_stockarchives", "chiname") => N::Company,
        (DbId::Stock, "lc_stockarchives", "chinameabbr") => N::CompanyAbbr,
        (DbId::Stock, "lc_stockarchives", "legalrep") => N::Person,
        (DbId::Stock, "lc_mainshareholders", "shareholdername") => N::Company,
        (DbId::Stock, "lc_managers", "mgrname") => N::Person,
        (DbId::Stock, "lc_indexbasicinfo", "indexname") => N::Index,
        (DbId::Stock, "lc_indexbasicinfo", "indexabbr") => N::IndexAbbr,
        (DbId::Stock, "lc_blocktrade", "buyerbranch" | "sellerbranch") => N::Branch,
        (DbId::Stock, "lc_pledge", "pledgername") => N::Company,
        (DbId::Stock, "lc_pledge", "pledgeename") => N::Bank,
        (DbId::Stock, "lc_analystforecast", "analystname") => N::Person,
        (DbId::Stock, "lc_concept", "conceptname") => N::Concept,
        (DbId::Stock, "lc_ipoinfo", "leadunderwriter") => N::Underwriter,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;

    #[test]
    fn every_column_gets_a_profile() {
        // profile_of is total — this exercises it over all ~1100 columns
        // and checks a few known cases.
        for db in DbId::ALL {
            let s = db.schema();
            for t in &s.tables {
                for c in &t.columns {
                    let _ = profile_of(db, &t.name, c, &s);
                }
            }
        }
    }

    #[test]
    fn known_profiles() {
        let s = schema::fund::schema();
        let t = s.table("mf_fundarchives").unwrap();
        assert_eq!(
            profile_of(DbId::Fund, "mf_fundarchives", t.column("innercode").unwrap(), &s),
            Profile::PrimaryKey
        );
        assert_eq!(
            profile_of(DbId::Fund, "mf_fundarchives", t.column("fundtype").unwrap(), &s),
            Profile::Category(CategoryPool::FundType)
        );
        assert_eq!(
            profile_of(DbId::Fund, "mf_fundarchives", t.column("chiname").unwrap(), &s),
            Profile::EntityName(NameKind::Fund)
        );
        let nav = s.table("mf_fundnav").unwrap();
        assert_eq!(
            profile_of(DbId::Fund, "mf_fundnav", nav.column("innercode").unwrap(), &s),
            Profile::ForeignKey
        );
        assert_eq!(
            profile_of(DbId::Fund, "mf_fundnav", nav.column("tradingday").unwrap(), &s),
            Profile::Date
        );
        assert_eq!(
            profile_of(DbId::Fund, "mf_fundnav", nav.column("nav").unwrap(), &s),
            Profile::SmallFloat
        );
    }

    #[test]
    fn stock_industry_is_categorical() {
        let s = schema::stock::schema();
        let t = s.table("lc_exgindustry").unwrap();
        assert_eq!(
            profile_of(DbId::Stock, "lc_exgindustry", t.column("firstindustryname").unwrap(), &s),
            Profile::Category(CategoryPool::Industry1)
        );
    }

    #[test]
    fn category_pools_are_nonempty_and_unique() {
        use CategoryPool as C;
        for pool in [
            C::FundType,
            C::Industry1,
            C::City,
            C::Agency,
            C::Position,
            C::ViolationType,
        ] {
            let vs = pool.values();
            assert!(!vs.is_empty());
            let set: std::collections::HashSet<_> = vs.iter().collect();
            assert_eq!(set.len(), vs.len());
        }
    }
}
