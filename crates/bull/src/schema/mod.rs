//! The three BULL database schemas: fund, stock and macro economy.
//!
//! The table/column counts match the paper's Figure 2 — stock 31 tables,
//! fund 28, macro 19, with most tables wider than ten columns — and the
//! naming style matches the paper's examples (`lc_sharestru`,
//! `chinameabbr`, `aquireramount`): terse concatenated abbreviations whose
//! meaning lives in the column descriptions, not the names.

pub mod fund;
pub mod macro_econ;
pub mod stock;

use crate::lexicon::translate;
use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType, ForeignKey};

/// Shorthand column spec used by the schema modules.
pub(crate) type ColSpec = (&'static str, ColType, &'static str);

/// Builds a table from compact specs; the cn description is derived from
/// the en description through the lexicon.
pub(crate) fn table(name: &str, desc_en: &str, cols: &[ColSpec]) -> CatalogTable {
    CatalogTable {
        name: name.to_string(),
        desc_en: desc_en.to_string(),
        desc_cn: translate(desc_en),
        columns: cols
            .iter()
            .map(|(n, ty, d)| CatalogColumn {
                name: (*n).to_string(),
                ty: *ty,
                desc_en: (*d).to_string(),
                desc_cn: translate(d),
            })
            .collect(),
    }
}

/// Builds a foreign key spec.
pub(crate) fn fk(from: (&str, &str), to: (&str, &str)) -> ForeignKey {
    ForeignKey {
        from_table: from.0.to_string(),
        from_column: from.1.to_string(),
        to_table: to.0.to_string(),
        to_column: to.1.to_string(),
    }
}

/// The identifiers of the three databases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DbId {
    Fund,
    Stock,
    Macro,
}

impl DbId {
    /// All database ids in canonical order.
    pub const ALL: [DbId; 3] = [DbId::Fund, DbId::Stock, DbId::Macro];

    /// This database's position in [`DbId::ALL`] — the canonical dense
    /// index used for O(1) per-database runtime lookup.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The string id used in `CatalogSchema::db_id`.
    pub fn as_str(self) -> &'static str {
        match self {
            DbId::Fund => "fund",
            DbId::Stock => "stock",
            DbId::Macro => "macro",
        }
    }

    /// Builds this database's schema.
    pub fn schema(self) -> CatalogSchema {
        match self {
            DbId::Fund => fund::schema(),
            DbId::Stock => stock::schema(),
            DbId::Macro => macro_econ::schema(),
        }
    }
}

impl std::fmt::Display for DbId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_agrees_with_canonical_order() {
        for (i, db) in DbId::ALL.into_iter().enumerate() {
            assert_eq!(db.index(), i, "{db} index must match its position in ALL");
        }
    }

    #[test]
    fn table_counts_match_paper_figure2() {
        assert_eq!(stock::schema().tables.len(), 31);
        assert_eq!(fund::schema().tables.len(), 28);
        assert_eq!(macro_econ::schema().tables.len(), 19);
    }

    #[test]
    fn databases_are_wide() {
        // Paper: on average 26 tables and 390 columns per database; most
        // tables have more than ten columns.
        for db in DbId::ALL {
            let s = db.schema();
            let cols = s.column_count();
            let tabs = s.tables.len();
            assert!(
                cols as f64 / tabs as f64 >= 10.0,
                "{db}: {cols} columns over {tabs} tables is too narrow"
            );
            let wide = s.tables.iter().filter(|t| t.columns.len() > 10).count();
            assert!(wide * 2 > tabs, "{db}: most tables must have more than ten columns");
        }
    }

    #[test]
    fn average_column_count_is_in_paper_range() {
        let total: usize = DbId::ALL.iter().map(|d| d.schema().column_count()).sum();
        let avg = total as f64 / 3.0;
        assert!((330.0..=450.0).contains(&avg), "avg columns per DB: {avg}");
    }

    #[test]
    fn foreign_keys_reference_real_columns() {
        for db in DbId::ALL {
            let s = db.schema();
            for fk in &s.foreign_keys {
                assert!(
                    s.has_column(&fk.from_table, &fk.from_column),
                    "{db}: bad FK source {}.{}",
                    fk.from_table,
                    fk.from_column
                );
                assert!(
                    s.has_column(&fk.to_table, &fk.to_column),
                    "{db}: bad FK target {}.{}",
                    fk.to_table,
                    fk.to_column
                );
            }
        }
    }

    #[test]
    fn table_and_column_names_are_unique() {
        for db in DbId::ALL {
            let s = db.schema();
            let mut names = std::collections::HashSet::new();
            for t in &s.tables {
                assert!(names.insert(t.name.clone()), "{db}: duplicate table {}", t.name);
                let mut cols = std::collections::HashSet::new();
                for c in &t.columns {
                    assert!(
                        cols.insert(c.name.clone()),
                        "{db}: duplicate column {}.{}",
                        t.name,
                        c.name
                    );
                }
            }
        }
    }

    #[test]
    fn every_column_has_descriptions_in_both_registers() {
        for db in DbId::ALL {
            let s = db.schema();
            for t in &s.tables {
                assert!(!t.desc_en.is_empty());
                assert!(!t.desc_cn.is_empty());
                for c in &t.columns {
                    assert!(!c.desc_en.is_empty(), "{db}.{}.{} lacks desc", t.name, c.name);
                    assert!(!c.desc_cn.is_empty());
                }
            }
        }
    }

    #[test]
    fn cn_descriptions_contain_cjk() {
        let s = fund::schema();
        let cjk_cols = s
            .tables
            .iter()
            .flat_map(|t| t.columns.iter())
            .filter(|c| c.desc_cn.chars().any(|ch| ch as u32 >= 0x4E00))
            .count();
        let total = s.column_count();
        assert!(cjk_cols * 10 >= total * 9, "only {cjk_cols}/{total} cn descriptions have CJK");
    }
}
