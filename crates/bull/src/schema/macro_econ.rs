//! The macro database: Chinese macro economy (19 tables).
//!
//! Unlike fund/stock, most macro tables are period-keyed time series; the
//! `ed_regiondict` table gives the region dimension used by joins.

use super::{fk, table, ColSpec};
use sqlkit::catalog::{CatalogSchema, ColType};

const I: ColType = ColType::Int;
const F: ColType = ColType::Float;
const T: ColType = ColType::Text;
const D: ColType = ColType::Date;

const AUDIT: [ColSpec; 6] = [
    ("xgrq", D, "record update date"),
    ("jsid", I, "record id"),
    ("infosource", T, "disclosure source"),
    ("insertdate", D, "record insert date"),
    ("updatetime", D, "record update time"),
    ("rowflag", I, "record validity flag"),
];

fn with_audit(cols: &[ColSpec]) -> Vec<ColSpec> {
    let mut v = cols.to_vec();
    v.extend_from_slice(&AUDIT);
    v
}

/// Builds the macro economy database schema.
pub fn schema() -> CatalogSchema {
    let tables = vec![
        table(
            "ed_gdp",
            "gross domestic product record",
            &with_audit(&[
                ("reportyear", I, "report year"),
                ("reportquarter", I, "report quarter"),
                ("gdp", F, "gross domestic product amount"),
                ("gdpgrowthrate", F, "gross domestic product growth rate"),
                ("primaryindustry", F, "primary industry amount"),
                ("secondaryindustry", F, "secondary industry amount"),
                ("tertiaryindustry", F, "tertiary industry amount"),
                ("percapitagdp", F, "per capita gross domestic product amount"),
            ]),
        ),
        table(
            "ed_cpi",
            "consumer price index record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("cpi", F, "consumer price index"),
                ("cpiyoy", F, "consumer price index growth rate"),
                ("foodcpi", F, "food consumer price index"),
                ("nonfoodcpi", F, "non food consumer price index"),
                ("corecpi", F, "core consumer price index"),
                ("urbancpi", F, "urban consumer price index"),
                ("ruralcpi", F, "rural consumer price index"),
            ]),
        ),
        table(
            "ed_ppi",
            "producer price index record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("ppi", F, "producer price index"),
                ("ppiyoy", F, "producer price index growth rate"),
                ("miningppi", F, "mining producer price index"),
                ("rawmaterialppi", F, "raw material producer price index"),
                ("processingppi", F, "processing producer price index"),
                ("consumergoodsppi", F, "consumer goods producer price index"),
            ]),
        ),
        table(
            "ed_moneysupply",
            "money supply record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("m0", F, "money supply m0 amount"),
                ("m1", F, "money supply m1 amount"),
                ("m2", F, "money supply m2 amount"),
                ("m0growthrate", F, "money supply m0 growth rate"),
                ("m1growthrate", F, "money supply m1 growth rate"),
                ("m2growthrate", F, "money supply m2 growth rate"),
            ]),
        ),
        table(
            "ed_interestrate",
            "benchmark interest rate record",
            &with_audit(&[
                ("changedate", D, "rate change date"),
                ("depositrate1y", F, "one year deposit interest rate"),
                ("loanrate1y", F, "one year loan interest rate"),
                ("loanrate5y", F, "five year loan interest rate"),
                ("reserverate", F, "deposit reserve rate"),
                ("shibor", F, "shibor overnight rate"),
                ("lpr1y", F, "one year loan prime rate"),
            ]),
        ),
        table(
            "ed_exchangerate",
            "currency exchange rate record",
            &with_audit(&[
                ("tradingday", D, "trading date"),
                ("usdcny", F, "usd exchange rate"),
                ("eurcny", F, "eur exchange rate"),
                ("jpycny", F, "jpy exchange rate"),
                ("gbpcny", F, "gbp exchange rate"),
                ("hkdcny", F, "hkd exchange rate"),
                ("effectiverate", F, "effective exchange rate index"),
            ]),
        ),
        table(
            "ed_fiscal",
            "fiscal revenue and expenditure record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("fiscalrevenue", F, "fiscal revenue amount"),
                ("fiscalexpenditure", F, "fiscal expenditure amount"),
                ("taxrevenue", F, "tax revenue amount"),
                ("nontaxrevenue", F, "non tax revenue amount"),
                ("revenuegrowthrate", F, "fiscal revenue growth rate"),
                ("expendituregrowthrate", F, "fiscal expenditure growth rate"),
            ]),
        ),
        table(
            "ed_trade",
            "foreign trade record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("exportvalue", F, "export value amount"),
                ("importvalue", F, "import value amount"),
                ("tradebalance", F, "trade balance amount"),
                ("exportgrowthrate", F, "export growth rate"),
                ("importgrowthrate", F, "import growth rate"),
                ("tradepartner", T, "trade partner region"),
            ]),
        ),
        table(
            "ed_pmi",
            "purchasing managers index record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("manufacturingpmi", F, "manufacturing purchasing index"),
                ("nonmanufacturingpmi", F, "non manufacturing purchasing index"),
                ("compositepmi", F, "composite purchasing index"),
                ("neworderindex", F, "new order index"),
                ("productionindex", F, "production index"),
                ("employmentindex", F, "employment index"),
            ]),
        ),
        table(
            "ed_fixedinvest",
            "fixed asset investment record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("investment", F, "fixed investment amount"),
                ("investgrowthrate", F, "fixed investment growth rate"),
                ("realestateinvest", F, "real estate investment amount"),
                ("infrastructureinvest", F, "infrastructure investment amount"),
                ("manufacturinginvest", F, "manufacturing investment amount"),
                ("privateinvest", F, "private investment amount"),
            ]),
        ),
        table(
            "ed_retailsales",
            "retail sales record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("retailsales", F, "retail sales amount"),
                ("retailgrowthrate", F, "retail sales growth rate"),
                ("urbanretail", F, "urban retail sales amount"),
                ("ruralretail", F, "rural retail sales amount"),
                ("onlineretail", F, "online retail sales amount"),
                ("cateringrevenue", F, "catering revenue amount"),
            ]),
        ),
        table(
            "ed_industrial",
            "industrial production record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("industrialvalueadded", F, "industrial value added growth rate"),
                ("miningvalueadded", F, "mining value added growth rate"),
                ("manufacturingvalueadded", F, "manufacturing value added growth rate"),
                ("utilityvalueadded", F, "utility value added growth rate"),
                ("capacityutilization", F, "capacity utilization rate"),
                ("industrialprofit", F, "industrial profit amount"),
            ]),
        ),
        table(
            "ed_employment",
            "employment record",
            &with_audit(&[
                ("reportyear", I, "report year"),
                ("urbanunemploymentrate", F, "urban unemployment rate"),
                ("surveyunemploymentrate", F, "survey unemployment rate"),
                ("newurbanjobs", F, "new urban jobs count"),
                ("employedpersons", F, "employed population count"),
                ("migrantworkers", F, "migrant worker count"),
                ("avgworkweek", F, "average work week hour count"),
            ]),
        ),
        table(
            "ed_population",
            "population record",
            &with_audit(&[
                ("reportyear", I, "report year"),
                ("population", F, "total population count"),
                ("birthrate", F, "population birth rate"),
                ("deathrate", F, "population death rate"),
                ("naturalgrowthrate", F, "population natural growth rate"),
                ("urbanratio", F, "urban population ratio"),
                ("agingratio", F, "aging population ratio"),
                ("workingagepop", F, "working age population count"),
            ]),
        ),
        table(
            "ed_income",
            "resident income record",
            &with_audit(&[
                ("reportyear", I, "report year"),
                ("regionname", T, "region name"),
                ("urbanincome", F, "urban resident income amount"),
                ("ruralincome", F, "rural resident income amount"),
                ("incomegrowthrate", F, "income growth rate"),
                ("disposableincome", F, "disposable income amount"),
                ("consumptionexpenditure", F, "consumption expenditure amount"),
            ]),
        ),
        table(
            "ed_housing",
            "housing price record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("cityname", T, "city name"),
                ("citytier", T, "city tier type"),
                ("newhomeprice", F, "new home price index"),
                ("usedhomeprice", F, "used home price index"),
                ("newhomeyoy", F, "new home price growth rate"),
                ("usedhomeyoy", F, "used home price growth rate"),
                ("salesarea", F, "home sales area amount"),
            ]),
        ),
        table(
            "ed_energy",
            "energy production record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("electricity", F, "electricity production amount"),
                ("coal", F, "coal production amount"),
                ("crudeoil", F, "crude oil production amount"),
                ("naturalgas", F, "natural gas production amount"),
                ("electricitygrowthrate", F, "electricity production growth rate"),
                ("energyconsumption", F, "energy consumption amount"),
            ]),
        ),
        table(
            "ed_socialfinance",
            "social financing record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("aggregatefinancing", F, "aggregate financing amount"),
                ("newloans", F, "new loans amount"),
                ("corporatebonds", F, "corporate bonds amount"),
                ("governmentbonds", F, "government bonds amount"),
                ("trustloans", F, "trust loans amount"),
                ("financinggrowthrate", F, "aggregate financing growth rate"),
            ]),
        ),
        table(
            "ed_forexreserve",
            "foreign reserve record",
            &with_audit(&[
                ("reportmonth", D, "report month"),
                ("forexreserve", F, "foreign reserve amount"),
                ("goldreserve", F, "gold reserve amount"),
                ("forexchange", F, "foreign reserve change amount"),
                ("goldprice", F, "gold price"),
                ("sdramount", F, "special drawing rights amount"),
                ("imfposition", F, "imf reserve position amount"),
            ]),
        ),
    ];
    let foreign_keys = vec![
        // The macro DB is period-keyed; the only declared relation links
        // housing records to income records through the region dimension.
        fk(("ed_housing", "cityname"), ("ed_income", "regionname")),
    ];
    CatalogSchema { db_id: "macro".into(), tables, foreign_keys }
}
