//! The en→cn lexicon used to derive the Chinese-register variant of every
//! description and question.
//!
//! BULL ships in English and Chinese versions that share one database
//! structure. We reproduce that by authoring descriptions and question
//! templates in English and deriving the cn register by word-by-word
//! translation through this finance lexicon, concatenated without spaces
//! in the Chinese style. Words without an entry pass through unchanged
//! (code-switching, common in real Chinese financial text for entity
//! names and tickers).
//!
//! The cn register is *harder* for lexical models in the same way Chinese
//! is: the tokenizer sees single characters, so distinct words that share
//! characters (基金/金额, 收益/收入) partially collide — exactly the
//! vague-term difficulty the paper describes.

/// The finance word map. Kept sorted by English key for binary search.
pub const LEXICON: &[(&str, &str)] = &[
    ("abbreviation", "简称"),
    ("account", "账户"),
    ("accumulated", "累计"),
    ("advisor", "顾问"),
    ("agency", "机构"),
    ("aggregate", "总量"),
    ("allocation", "配置"),
    ("amount", "金额"),
    ("analyst", "分析师"),
    ("announcement", "公告"),
    ("annual", "年度"),
    ("asset", "资产"),
    ("assets", "资产"),
    ("average", "平均"),
    ("balance", "余额"),
    ("bank", "银行"),
    ("benchmark", "基准"),
    ("birth", "出生"),
    ("block", "大宗"),
    ("bond", "债券"),
    ("bonds", "债券"),
    ("branch", "营业部"),
    ("buyer", "买方"),
    ("capital", "资本"),
    ("cash", "现金"),
    ("chinese", "中文"),
    ("city", "城市"),
    ("close", "收盘"),
    ("closing", "收盘"),
    ("coal", "煤炭"),
    ("code", "代码"),
    ("company", "公司"),
    ("component", "成分"),
    ("concept", "概念"),
    ("consumer", "消费"),
    ("consumption", "消费"),
    ("count", "数量"),
    ("crude", "原油"),
    ("currency", "货币"),
    ("custodian", "托管人"),
    ("daily", "每日"),
    ("date", "日期"),
    ("day", "日"),
    ("days", "天"),
    ("delist", "退市"),
    ("deposit", "存款"),
    ("disclosure", "披露"),
    ("dividend", "分红"),
    ("drawdown", "回撤"),
    ("duration", "期限"),
    ("earnings", "收益"),
    ("economy", "经济"),
    ("education", "学历"),
    ("electricity", "电力"),
    ("employee", "员工"),
    ("employment", "就业"),
    ("end", "截止"),
    ("energy", "能源"),
    ("equity", "权益"),
    ("establishment", "成立"),
    ("exchange", "交易所"),
    ("expenditure", "支出"),
    ("expense", "费用"),
    ("export", "出口"),
    ("exports", "出口"),
    ("fee", "费率"),
    ("finance", "融资"),
    ("financing", "融资"),
    ("fine", "罚款"),
    ("fiscal", "财政"),
    ("fixed", "固定"),
    ("food", "食品"),
    ("forecast", "预测"),
    ("foreign", "外汇"),
    ("fund", "基金"),
    ("funds", "基金"),
    ("gender", "性别"),
    ("gold", "黄金"),
    ("goodwill", "商誉"),
    ("growth", "增长"),
    ("high", "最高"),
    ("highest", "最高"),
    ("holder", "持有人"),
    ("holders", "持有人"),
    ("holding", "持仓"),
    ("home", "住宅"),
    ("housing", "住房"),
    ("impairment", "减值"),
    ("import", "进口"),
    ("imports", "进口"),
    ("income", "收入"),
    ("index", "指数"),
    ("individual", "个人"),
    ("industrial", "工业"),
    ("industry", "行业"),
    ("inflation", "通胀"),
    ("institution", "机构"),
    ("institutional", "机构"),
    ("interest", "利率"),
    ("investment", "投资"),
    ("issue", "发行"),
    ("issued", "发行"),
    ("job", "就业"),
    ("jobs", "就业"),
    ("latest", "最新"),
    ("liability", "负债"),
    ("limit", "上限"),
    ("list", "上市"),
    ("listing", "上市"),
    ("loan", "贷款"),
    ("loans", "贷款"),
    ("low", "最低"),
    ("lowest", "最低"),
    ("management", "管理"),
    ("manager", "经理"),
    ("managers", "经理"),
    ("manufacturing", "制造业"),
    ("margin", "两融"),
    ("market", "市场"),
    ("maximum", "最大"),
    ("minimum", "最小"),
    ("mining", "采矿"),
    ("mixed", "混合"),
    ("monetary", "货币"),
    ("money", "货币"),
    ("month", "月份"),
    ("monthly", "月度"),
    ("name", "名称"),
    ("net", "净"),
    ("new", "新增"),
    ("number", "数量"),
    ("oil", "石油"),
    ("open", "开盘"),
    ("opening", "开盘"),
    ("operating", "经营"),
    ("per", "每"),
    ("performance", "业绩"),
    ("pledge", "质押"),
    ("pledged", "质押"),
    ("population", "人口"),
    ("portfolio", "组合"),
    ("position", "职位"),
    ("price", "价格"),
    ("prices", "价格"),
    ("producer", "生产者"),
    ("product", "产品"),
    ("profit", "利润"),
    ("province", "省份"),
    ("publish", "发布"),
    ("purchase", "申购"),
    ("quarter", "季度"),
    ("quota", "额度"),
    ("quote", "行情"),
    ("raised", "募集"),
    ("rank", "排名"),
    ("rate", "率"),
    ("rating", "评级"),
    ("ratio", "比例"),
    ("reason", "原因"),
    ("record", "记录"),
    ("redemption", "赎回"),
    ("region", "地区"),
    ("registered", "注册"),
    ("report", "报告"),
    ("repurchase", "回购"),
    ("reserve", "储备"),
    ("resume", "复牌"),
    ("retail", "零售"),
    ("return", "收益率"),
    ("revenue", "营收"),
    ("risk", "风险"),
    ("rural", "农村"),
    ("salary", "薪酬"),
    ("sales", "销售"),
    ("scale", "规模"),
    ("security", "证券"),
    ("share", "份额"),
    ("shareholder", "股东"),
    ("shareholders", "股东"),
    ("shares", "股份"),
    ("social", "社会"),
    ("split", "拆分"),
    ("staff", "员工"),
    ("standard", "标准"),
    ("start", "起始"),
    ("status", "状态"),
    ("stock", "股票"),
    ("stocks", "股票"),
    ("subscription", "认购"),
    ("supply", "供应"),
    ("suspend", "停牌"),
    ("tenure", "任职"),
    ("total", "总"),
    ("trade", "贸易"),
    ("trading", "交易"),
    ("turnover", "成交"),
    ("type", "类型"),
    ("unemployment", "失业"),
    ("unit", "单位"),
    ("urban", "城镇"),
    ("used", "二手"),
    ("value", "价值"),
    ("violation", "违规"),
    ("volume", "成交量"),
    ("weight", "权重"),
    ("year", "年份"),
    ("yearly", "年度"),
    ("yield", "收益率"),
];

/// Looks up a single English word (lower-case).
pub fn lookup(word: &str) -> Option<&'static str> {
    LEXICON.binary_search_by(|(en, _)| en.cmp(&word)).ok().map(|i| LEXICON[i].1)
}

/// Translates English text into the cn register: lexicon words become
/// Chinese, everything else (entity names, numbers, quoted values,
/// unknown words) passes through. Translated neighbours concatenate
/// without spaces; pass-through tokens keep space separation.
pub fn translate(text: &str) -> String {
    let mut out = String::new();
    for raw in text.split_whitespace() {
        // Keep leading/trailing punctuation attached to pass-through words.
        let trimmed = raw.trim_matches(|c: char| !c.is_alphanumeric());
        let lower = trimmed.to_ascii_lowercase();
        match lookup(&lower) {
            Some(cn) if trimmed == raw => {
                out.push_str(cn);
            }
            Some(cn) => {
                // Word carries punctuation (e.g. a trailing '?'); translate
                // the core and keep the punctuation.
                let prefix_len = raw.find(trimmed).unwrap_or(0);
                out.push_str(&raw[..prefix_len]);
                out.push_str(cn);
                out.push_str(&raw[prefix_len + trimmed.len()..]);
            }
            None => {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(raw);
            }
        }
    }
    out
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_is_sorted_for_binary_search() {
        for w in LEXICON.windows(2) {
            assert!(w[0].0 < w[1].0, "lexicon out of order at {:?} / {:?}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn lookup_finds_words() {
        assert_eq!(lookup("fund"), Some("基金"));
        assert_eq!(lookup("volume"), Some("成交量"));
        assert_eq!(lookup("zzz"), None);
    }

    #[test]
    fn translate_concatenates_cjk() {
        assert_eq!(translate("fund code"), "基金代码");
        assert_eq!(translate("net asset value"), "净资产价值");
    }

    #[test]
    fn translate_passes_entities_through() {
        // Out-of-lexicon words (entity names) pass through; lexicon words
        // translate even inside names, mirroring real code-switched text.
        let t = translate("fund name Alpha Zeta77");
        assert!(t.starts_with("基金名称"), "got {t}");
        assert!(t.contains("Alpha"));
        assert!(t.contains("Zeta77"));
    }

    #[test]
    fn translate_keeps_punctuation() {
        let t = translate("what is the closing price?");
        assert!(t.ends_with("价格?"), "got {t}");
    }

    #[test]
    fn shared_characters_create_ambiguity() {
        // The difficulty property: distinct words share characters.
        let fund = translate("fund");
        let amount = translate("amount");
        assert!(fund.contains('金') && amount.contains('金'));
    }
}
