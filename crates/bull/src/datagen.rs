//! Deterministic population of the three BULL databases.
//!
//! Master tables (foreign-key targets) are generated first so that fact
//! tables can draw key values from their pools; every value is produced
//! from a seeded RNG, so the same seed always yields the same database.

use crate::profile::{profile_of, NameKind, Profile};
use crate::schema::DbId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlengine::{Database, Value};
use sqlkit::catalog::CatalogSchema;
use std::collections::HashMap;

/// Rows generated for fact tables.
const FACT_ROWS: usize = 240;
/// Entities in each master table, by key column.
fn master_rows(table: &str) -> usize {
    match table {
        "mf_fundarchives" => 120,
        "mf_managerinfo" => 40,
        "mf_fundcompany" => 24,
        "mf_custodian" => 12,
        "mf_fundtypeinfo" => 6,
        "lc_stockarchives" => 140,
        "lc_indexbasicinfo" => 10,
        "ed_income" => 40, // 8 regions × 5 years
        _ => FACT_ROWS,
    }
}

/// The benchmark's date pool: trading days and report dates up to the
/// paper's April 2022 cutoff.
pub const TRADING_DAYS: &[&str] = &[
    "2022-01-04", "2022-01-05", "2022-01-06", "2022-02-07", "2022-02-08", "2022-03-01",
    "2022-03-02", "2022-04-01", "2022-04-06", "2022-04-29",
];

/// Quarterly report end dates.
pub const REPORT_DATES: &[&str] =
    &["2021-03-31", "2021-06-30", "2021-09-30", "2021-12-31", "2022-03-31"];

/// Name-pool fragments.
const FUND_BRANDS: &[&str] = &[
    "Harvest", "Fullgoal", "Bosera", "Invesco", "Penghua", "Southern", "Huaxia", "Wells",
    "Guotai", "Dacheng", "Orient", "Castor",
];
const FUND_THEMES: &[&str] = &[
    "Growth", "Value", "Dividend", "Technology", "Consumption", "Healthcare", "Balanced",
    "Prosperity", "Momentum", "Quality",
];
const COMPANY_WORDS: &[&str] = &[
    "Huarun", "Jinlong", "Tianhe", "Baosteel", "Yangtze", "Northern", "Sunshine", "Evergreen",
    "Pacific", "Golden", "Silverlake", "Redwood", "Bluechip", "Summit",
];
const COMPANY_SUFFIX: &[&str] = &["Industry", "Technology", "Pharma", "Energy", "Foods", "Materials", "Electronics"];
const SURNAMES: &[&str] = &[
    "Li", "Wang", "Zhang", "Liu", "Chen", "Yang", "Zhao", "Huang", "Zhou", "Wu", "Xu", "Sun",
];
const GIVEN: &[&str] = &[
    "Wei", "Fang", "Min", "Jing", "Lei", "Qiang", "Yan", "Jun", "Ying", "Hua", "Bo", "Ning",
];
const INDEX_NAMES: &[&str] = &[
    "CSI 300 Index", "SSE 50 Index", "ChiNext Index", "CSI 500 Index", "SSE Composite Index",
    "SZSE Component Index", "CSI Dividend Index", "STAR 50 Index", "CSI 1000 Index",
    "CSI Consumer Index",
];
const BANKS: &[&str] = &[
    "ICBC", "China Construction Bank", "Bank of China", "Agricultural Bank", "Bank of Communications",
    "Merchants Bank", "Industrial Bank", "CITIC Bank", "Minsheng Bank", "Everbright Bank",
    "Ping An Bank", "Postal Savings Bank",
];

/// A populated database plus the key pools used while generating it.
pub struct GeneratedDb {
    pub db: Database,
    /// Key pools per (table, column): the values fact tables draw from.
    pub pools: HashMap<(String, String), Vec<Value>>,
}

/// Populates one database deterministically.
///
/// The three BULL schemas are compiled-in constants exercised by every
/// tier-1 test, so generation cannot actually fail; callers that load
/// schemas from elsewhere should use [`try_populate`].
pub fn populate(db_id: DbId, seed: u64) -> GeneratedDb {
    // INVARIANT: the compiled-in BULL schemas are acyclic, FK-closed and
    // type-correct (checked by the tests in this module), so the only
    // failure paths in try_populate cannot fire for a DbId schema.
    try_populate(db_id, seed).expect("compiled-in BULL schema is well-formed")
}

/// Fallible population: returns an error instead of panicking when the
/// schema has dangling foreign keys, FK cycles, or rows the engine
/// rejects.
pub fn try_populate(db_id: DbId, seed: u64) -> Result<GeneratedDb, String> {
    let schema = db_id.schema();
    let mut rng = StdRng::seed_from_u64(seed ^ (db_id as u64).wrapping_mul(0x9E37_79B9));
    let mut db = Database::new(schema.clone());
    let mut pools: HashMap<(String, String), Vec<Value>> = HashMap::new();

    // Topological order: every table after the tables its foreign keys
    // reference (self-references ignored).
    let order = topo_order(&schema)?;

    for idx in order {
        let table = schema.tables[idx].clone();
        let n = master_rows(&table.name);
        let mut name_counters: HashMap<&str, usize> = HashMap::new();
        for row_i in 0..n {
            let mut row = Vec::with_capacity(table.columns.len());
            for col in &table.columns {
                let p = profile_of(db_id, &table.name, col, &schema);
                let v = gen_value(
                    &mut rng,
                    db_id,
                    &table.name,
                    &col.name,
                    p,
                    row_i,
                    &schema,
                    &pools,
                    &mut name_counters,
                );
                row.push(v);
            }
            db.insert(&table.name, row)
                .map_err(|e| format!("{db_id}: generated row rejected by {}: {e}", table.name))?;
        }
        // Register pools for every column of this table that is an FK
        // target, from the data just written.
        for fk in &schema.foreign_keys {
            if fk.to_table == table.name {
                let t = db
                    .table(&table.name)
                    .map_err(|e| format!("{db_id}: table {} missing after insert: {e}", table.name))?;
                let ci = t.def.column_index(&fk.to_column).ok_or_else(|| {
                    format!("{db_id}: FK target column {}.{} not in schema", fk.to_table, fk.to_column)
                })?;
                let vals: Vec<Value> = t.rows.iter().map(|r| r[ci].clone()).collect();
                pools.insert((fk.to_table.clone(), fk.to_column.clone()), vals);
            }
        }
    }
    Ok(GeneratedDb { db, pools })
}

/// Mints a deterministic batch of synthetic live ticks for one database:
/// new rows for every *leaf* fact table (a table no foreign key points
/// at), generated from the same per-column value profiles and key pools
/// as base population, so they always pass `Database::apply_changes`
/// validation (types and foreign keys alike).
///
/// Row indices continue from each table's current length, so primary
/// keys and security codes stay unique across successive mints as the
/// database grows. Deterministic in `(db_id, seed, current lengths)`.
pub fn mint_ticks(
    db_id: DbId,
    gdb: &GeneratedDb,
    seed: u64,
    rows_per_table: usize,
) -> Vec<(String, Vec<Vec<Value>>)> {
    let schema = gdb.db.catalog().clone();
    let mut rng = StdRng::seed_from_u64(seed ^ (db_id as u64).wrapping_mul(0xA11C_E5ED));
    let mut changes = Vec::new();
    for table in &schema.tables {
        let is_fk_target = schema.foreign_keys.iter().any(|fk| fk.to_table == table.name);
        if is_fk_target {
            continue;
        }
        // INVARIANT: every catalog table exists in its own database.
        let start = gdb.db.table(&table.name).expect("catalog table present").len();
        // Continue entity-name counters from the current length so new
        // display names extend the base sequence instead of repeating it.
        let mut name_counters: HashMap<&str, usize> = HashMap::new();
        for col in &table.columns {
            if let Profile::EntityName(kind) = profile_of(db_id, &table.name, col, &schema) {
                name_counters.insert(name_kind_key(kind), start);
            }
        }
        let mut rows = Vec::with_capacity(rows_per_table);
        for k in 0..rows_per_table {
            let row_i = start + k;
            let mut row = Vec::with_capacity(table.columns.len());
            for col in &table.columns {
                let p = profile_of(db_id, &table.name, col, &schema);
                row.push(gen_value(
                    &mut rng,
                    db_id,
                    &table.name,
                    &col.name,
                    p,
                    row_i,
                    &schema,
                    &gdb.pools,
                    &mut name_counters,
                ));
            }
            rows.push(row);
        }
        if !rows.is_empty() {
            changes.push((table.name.clone(), rows));
        }
    }
    changes
}

/// Kahn's-algorithm ordering of tables so FK targets precede sources.
/// Errs on foreign keys that reference unknown tables and on FK cycles.
fn topo_order(schema: &CatalogSchema) -> Result<Vec<usize>, String> {
    let n = schema.tables.len();
    let index_of = |name: &str| {
        schema
            .table_index(name)
            .ok_or_else(|| format!("{}: FK references unknown table {name}", schema.db_id))
    };
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n]; // deps[i] = tables i needs
    for fkdef in &schema.foreign_keys {
        let from = index_of(&fkdef.from_table)?;
        let to = index_of(&fkdef.to_table)?;
        if from != to {
            deps[from].push(to);
        }
    }
    let mut done = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let before = order.len();
        for i in 0..n {
            if !done[i] && deps[i].iter().all(|&d| done[d]) {
                done[i] = true;
                order.push(i);
            }
        }
        if order.len() == before {
            return Err(format!("cyclic foreign keys in schema {}", schema.db_id));
        }
    }
    Ok(order)
}

#[allow(clippy::too_many_arguments)]
fn gen_value(
    rng: &mut StdRng,
    db_id: DbId,
    table: &str,
    col: &str,
    profile: Profile,
    row_i: usize,
    schema: &CatalogSchema,
    pools: &HashMap<(String, String), Vec<Value>>,
    name_counters: &mut HashMap<&str, usize>,
) -> Value {
    match profile {
        Profile::PrimaryKey => Value::Int(key_base(table) + row_i as i64),
        Profile::ForeignKey => {
            let fkdef = schema
                .foreign_keys
                .iter()
                .find(|fk| fk.from_table == table && fk.from_column == col)
                // INVARIANT: profile_of only returns ForeignKey when a
                // matching fkdef exists in schema.foreign_keys.
                .expect("profile said FK");
            let pool = pools
                .get(&(fkdef.to_table.clone(), fkdef.to_column.clone()))
                // INVARIANT: try_populate fills tables in topo_order, so
                // every FK target's pool is registered before any source
                // row draws from it.
                .expect("FK target generated before source");
            pool[rng.gen_range(0..pool.len())].clone()
        }
        Profile::SecurityCode => Value::Str(format!("{:06}", 100000 + key_base(table) % 500000 + row_i as i64)),
        Profile::Date => {
            // Trading-day columns cycle the trading pool; report-style
            // dates cycle report dates; other dates are random in range.
            if col.contains("tradingday") {
                Value::Str(TRADING_DAYS[row_i % TRADING_DAYS.len()].to_string())
            } else if col == "enddate" || col.contains("month") {
                Value::Str(REPORT_DATES[row_i % REPORT_DATES.len()].to_string())
            } else {
                Value::Str(random_date(rng))
            }
        }
        Profile::Year => Value::Int(2018 + (row_i as i64 % 5)),
        Profile::Quarter => Value::Int(1 + (row_i as i64 % 4)),
        Profile::Category(pool) => {
            let vs = pool.values();
            Value::Str(vs[rng.gen_range(0..vs.len())].to_string())
        }
        Profile::EntityName(kind) => {
            let counter = name_counters.entry(name_kind_key(kind)).or_insert(0);
            let v = entity_name(kind, *counter, db_id);
            *counter += 1;
            Value::Str(v)
        }
        Profile::Ratio => Value::Float((rng.gen_range(0.0..10000.0f64) / 100.0 * 100.0).round() / 100.0),
        Profile::SmallFloat => Value::Float((rng.gen_range(-200.0..1200.0f64) / 100.0 * 100.0).round() / 10000.0 * 100.0),
        Profile::Price => Value::Float((rng.gen_range(100.0..50000.0f64)).round() / 100.0),
        Profile::Amount => Value::Float((rng.gen_range(1.0e6..5.0e9f64) / 1000.0).round() * 1000.0),
        Profile::Count => Value::Int(rng.gen_range(1..20000)),
        Profile::Flag => Value::Int(rng.gen_range(0..2)),
        Profile::Grade => Value::Int(rng.gen_range(1..6)),
        Profile::FreeText => Value::Str(format!("{table} {col} note {row_i}")),
    }
}

fn key_base(table: &str) -> i64 {
    // Stable per-table base so keys differ across masters.
    let mut h: i64 = 7;
    for b in table.bytes() {
        h = h.wrapping_mul(31).wrapping_add(i64::from(b));
    }
    (h.abs() % 90 + 1) * 1000
}

fn random_date(rng: &mut StdRng) -> String {
    let year = rng.gen_range(2019..=2022);
    let month = if year == 2022 { rng.gen_range(1..=4) } else { rng.gen_range(1..=12) };
    let day = rng.gen_range(1..=28);
    format!("{year:04}-{month:02}-{day:02}")
}

fn name_kind_key(kind: NameKind) -> &'static str {
    match kind {
        NameKind::Fund => "fund",
        NameKind::FundAbbr => "fundabbr",
        NameKind::Company => "company",
        NameKind::CompanyAbbr => "companyabbr",
        NameKind::Person => "person",
        NameKind::Stock => "stock",
        NameKind::Bond => "bond",
        NameKind::Index => "index",
        NameKind::IndexAbbr => "indexabbr",
        NameKind::Benchmark => "benchmark",
        NameKind::Bank => "bank",
        NameKind::Branch => "branch",
        NameKind::Advisor => "advisor",
        NameKind::Concept => "concept",
        NameKind::Underwriter => "underwriter",
    }
}

/// Deterministic unique entity names per kind.
fn entity_name(kind: NameKind, i: usize, _db: DbId) -> String {
    match kind {
        NameKind::Fund => {
            let brand = FUND_BRANDS[i % FUND_BRANDS.len()];
            let theme = FUND_THEMES[(i / FUND_BRANDS.len()) % FUND_THEMES.len()];
            let class = ["A", "C", "Mixed A", "Bond A", "ETF", "Mixed C"]
                [(i / (FUND_BRANDS.len() * FUND_THEMES.len())) % 6];
            format!("{brand} {theme} {class}")
        }
        NameKind::FundAbbr => {
            let brand = FUND_BRANDS[i % FUND_BRANDS.len()];
            let theme = FUND_THEMES[(i / FUND_BRANDS.len()) % FUND_THEMES.len()];
            format!("{brand}{theme}{i}")
        }
        NameKind::Company => {
            let w = COMPANY_WORDS[i % COMPANY_WORDS.len()];
            let s = COMPANY_SUFFIX[(i / COMPANY_WORDS.len()) % COMPANY_SUFFIX.len()];
            format!("{w} {s} Co Ltd {}", i / (COMPANY_WORDS.len() * COMPANY_SUFFIX.len()))
        }
        NameKind::CompanyAbbr => {
            format!("{}{}", COMPANY_WORDS[i % COMPANY_WORDS.len()], i)
        }
        NameKind::Person => {
            let s = SURNAMES[i % SURNAMES.len()];
            let g = GIVEN[(i / SURNAMES.len()) % GIVEN.len()];
            if i / (SURNAMES.len() * GIVEN.len()) > 0 {
                format!("{s} {g}{}", i / (SURNAMES.len() * GIVEN.len()))
            } else {
                format!("{s} {g}")
            }
        }
        NameKind::Stock => format!(
            "{} {}",
            COMPANY_WORDS[i % COMPANY_WORDS.len()],
            COMPANY_SUFFIX[(i / COMPANY_WORDS.len()) % COMPANY_SUFFIX.len()]
        ),
        NameKind::Bond => format!("2{} Treasury {:02}", 1 + i % 2, i % 60),
        NameKind::Index => INDEX_NAMES[i % INDEX_NAMES.len()].to_string(),
        NameKind::IndexAbbr => format!("IDX{i:03}"),
        NameKind::Benchmark => format!(
            "{} x 80% + deposit rate x 20%",
            INDEX_NAMES[i % INDEX_NAMES.len()]
        ),
        NameKind::Bank => BANKS[i % BANKS.len()].to_string(),
        NameKind::Branch => format!(
            "{} Securities {} Branch",
            COMPANY_WORDS[i % COMPANY_WORDS.len()],
            ["Beijing", "Shanghai", "Shenzhen", "Hangzhou"][i % 4]
        ),
        NameKind::Advisor => format!("{} Investment Advisor", COMPANY_WORDS[i % COMPANY_WORDS.len()]),
        NameKind::Concept => [
            "new energy", "artificial intelligence", "semiconductor", "biomedicine", "big data",
            "cloud computing", "military industry", "photovoltaic",
        ][i % 8]
            .to_string(),
        NameKind::Underwriter => format!(
            "{} Securities",
            ["CITIC", "Huatai", "Guotai Junan", "Haitong", "Galaxy", "Merchants"][i % 6]
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic() {
        let a = populate(DbId::Fund, 42);
        let b = populate(DbId::Fund, 42);
        for t in a.db.catalog().tables.iter() {
            let ta = a.db.table(&t.name).unwrap();
            let tb = b.db.table(&t.name).unwrap();
            assert_eq!(ta.rows, tb.rows, "table {} differs across runs", t.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = populate(DbId::Fund, 1);
        let b = populate(DbId::Fund, 2);
        let ta = a.db.table("mf_fundnav").unwrap();
        let tb = b.db.table("mf_fundnav").unwrap();
        assert_ne!(ta.rows, tb.rows);
    }

    #[test]
    fn every_table_is_populated() {
        for db_id in DbId::ALL {
            let g = populate(db_id, 7);
            for t in g.db.tables() {
                assert!(!t.is_empty(), "{db_id}: table {} is empty", t.def.name);
            }
        }
    }

    #[test]
    fn master_tables_have_unique_keys() {
        let g = populate(DbId::Fund, 7);
        let t = g.db.table("mf_fundarchives").unwrap();
        let ci = t.def.column_index("innercode").unwrap();
        let keys: std::collections::HashSet<_> =
            t.rows.iter().map(|r| format!("{}", r[ci])).collect();
        assert_eq!(keys.len(), t.rows.len());
    }

    #[test]
    fn fund_names_are_unique() {
        let g = populate(DbId::Fund, 7);
        let t = g.db.table("mf_fundarchives").unwrap();
        let ci = t.def.column_index("chiname").unwrap();
        let names: std::collections::HashSet<_> =
            t.rows.iter().map(|r| format!("{}", r[ci])).collect();
        assert_eq!(names.len(), t.rows.len());
    }

    #[test]
    fn foreign_keys_resolve() {
        for db_id in DbId::ALL {
            let g = populate(db_id, 7);
            let schema = g.db.catalog().clone();
            for fk in &schema.foreign_keys {
                let target = g.db.table(&fk.to_table).unwrap();
                let tci = target.def.column_index(&fk.to_column).unwrap();
                let pool: std::collections::HashSet<String> =
                    target.rows.iter().map(|r| format!("{}", r[tci])).collect();
                let source = g.db.table(&fk.from_table).unwrap();
                let sci = source.def.column_index(&fk.from_column).unwrap();
                for r in &source.rows {
                    let v = format!("{}", r[sci]);
                    assert!(
                        pool.contains(&v),
                        "{db_id}: {}.{} value {v} not in {}.{}",
                        fk.from_table,
                        fk.from_column,
                        fk.to_table,
                        fk.to_column
                    );
                }
            }
        }
    }

    #[test]
    fn malformed_schemas_error_instead_of_panicking() {
        use sqlkit::catalog::{CatalogTable, ForeignKey};
        let table = |name: &str| CatalogTable {
            name: name.into(),
            desc_en: String::new(),
            desc_cn: String::new(),
            columns: vec![],
        };
        let fk = |from: &str, to: &str| ForeignKey {
            from_table: from.into(),
            from_column: "k".into(),
            to_table: to.into(),
            to_column: "k".into(),
        };
        // FK cycle: a -> b -> a.
        let cyclic = CatalogSchema {
            db_id: "cyclic".into(),
            tables: vec![table("a"), table("b")],
            foreign_keys: vec![fk("a", "b"), fk("b", "a")],
        };
        assert!(topo_order(&cyclic).unwrap_err().contains("cyclic"));
        // FK referencing a table that does not exist.
        let dangling = CatalogSchema {
            db_id: "dangling".into(),
            tables: vec![table("a")],
            foreign_keys: vec![fk("a", "ghost")],
        };
        assert!(topo_order(&dangling).unwrap_err().contains("unknown table"));
    }

    #[test]
    fn try_populate_matches_populate() {
        let a = try_populate(DbId::Fund, 11).unwrap();
        let b = populate(DbId::Fund, 11);
        for t in a.db.catalog().tables.iter() {
            assert_eq!(a.db.table(&t.name).unwrap().rows, b.db.table(&t.name).unwrap().rows);
        }
    }

    #[test]
    fn minted_ticks_pass_live_validation_on_every_db() {
        for db_id in DbId::ALL {
            let mut g = populate(db_id, 7);
            let ticks = mint_ticks(db_id, &g, 0x71C5, 4);
            assert!(!ticks.is_empty(), "{db_id}: no leaf fact tables minted");
            let before = g.db.total_rows();
            let n_changes = ticks.len();
            let n_rows: usize = ticks.iter().map(|(_, r)| r.len()).sum();
            let epoch = g.db.apply_changes(ticks).unwrap();
            assert_eq!(epoch.0 as usize, n_changes);
            assert_eq!(g.db.total_rows(), before + n_rows);
        }
    }

    #[test]
    fn minting_is_deterministic_and_extends_key_sequences() {
        let g = populate(DbId::Fund, 7);
        let a = mint_ticks(DbId::Fund, &g, 3, 2);
        let b = mint_ticks(DbId::Fund, &g, 3, 2);
        assert_eq!(a, b, "same seed and state must mint identical ticks");
        let c = mint_ticks(DbId::Fund, &g, 4, 2);
        assert_ne!(a, c, "different seeds must mint different ticks");

        // After applying, a second mint continues row indices: primary
        // keys never collide with existing ones.
        let mut g2 = populate(DbId::Fund, 7);
        g2.db.apply_changes(mint_ticks(DbId::Fund, &g2, 3, 2)).unwrap();
        let again = mint_ticks(DbId::Fund, &g2, 3, 2);
        g2.db.apply_changes(again).unwrap();
        let t = g2.db.table("mf_fundnav").unwrap();
        assert_eq!(t.len(), FACT_ROWS + 4);
    }

    #[test]
    fn joins_execute_against_generated_data() {
        let g = populate(DbId::Fund, 7);
        let rs = sqlengine::run_sql(
            &g.db,
            "SELECT t1.chiname, t2.nav FROM mf_fundarchives t1 JOIN mf_fundnav t2 ON t1.innercode = t2.innercode LIMIT 5",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 5);
    }
}
