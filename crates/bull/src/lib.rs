//! BULL: a synthetic reproduction of the paper's financial Text-to-SQL
//! benchmark.
//!
//! Three databases (fund, stock, macro economy) with the paper's table
//! and column counts, abbreviated vendor-style identifiers, populated
//! deterministic data, and ~4,966 question–SQL pairs in two language
//! registers with the paper's train/dev splits:
//!
//! | database | tables | train | dev |
//! |----------|--------|-------|-----|
//! | fund     | 28     | 1744  | 405 |
//! | stock    | 31     | 1672  | 464 |
//! | macro    | 19     | 550   | 131 |
//!
//! Everything is generated from explicit seeds, so every experiment in
//! the bench harness is reproducible bit-for-bit.

#![forbid(unsafe_code)]

pub mod datagen;
pub mod dataset;
pub mod lexicon;
pub mod profile;
pub mod schema;
pub mod stats;
pub mod templates;

pub use dataset::{BullDataset, BullExample, Split};
pub use schema::DbId;
pub use sqlkit::catalog::Lang;

/// Builds the full benchmark (three populated databases plus all
/// question–SQL pairs) from a seed. The default seed used across the
/// bench harness is [`DEFAULT_SEED`].
pub fn build(seed: u64) -> BullDataset {
    BullDataset::generate(seed)
}

/// The seed used by every experiment in EXPERIMENTS.md.
pub const DEFAULT_SEED: u64 = 0xB011;
