//! Dataset statistics — the numbers behind the paper's Table 1.

use crate::dataset::BullDataset;
use crate::schema::DbId;

/// One row of the Table 1 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub name: &'static str,
    pub examples: usize,
    pub tables_per_db: f64,
    pub columns_per_db: f64,
}

/// Published statistics of the public benchmarks (paper, Table 1).
pub const WIKISQL: DatasetStats =
    DatasetStats { name: "WikiSQL", examples: 80654, tables_per_db: 1.0, columns_per_db: 6.3 };
/// Spider (Yu et al., 2018).
pub const SPIDER: DatasetStats =
    DatasetStats { name: "Spider", examples: 10181, tables_per_db: 5.1, columns_per_db: 27.1 };
/// BIRD (Li et al., 2023).
pub const BIRD: DatasetStats =
    DatasetStats { name: "BIRD", examples: 12751, tables_per_db: 7.3, columns_per_db: 54.2 };

/// Computes BULL's statistics from a generated dataset.
pub fn bull_stats(ds: &BullDataset) -> DatasetStats {
    let mut tables = 0usize;
    let mut columns = 0usize;
    for db in DbId::ALL {
        let schema = ds.db(db).catalog();
        tables += schema.tables.len();
        columns += schema.column_count();
    }
    DatasetStats {
        name: "BULL",
        examples: ds.len(),
        tables_per_db: tables as f64 / 3.0,
        columns_per_db: columns as f64 / 3.0,
    }
}

/// Per-database detail for the paper's Figure 2.
#[derive(Debug, Clone)]
pub struct DbDetail {
    pub db: DbId,
    pub tables: usize,
    pub avg_cols: f64,
    pub max_cols: usize,
    pub train: usize,
    pub dev: usize,
}

/// Computes Figure 2 style details.
pub fn db_details(ds: &BullDataset) -> Vec<DbDetail> {
    DbId::ALL
        .iter()
        .map(|&db| {
            let schema = ds.db(db).catalog();
            let (train, dev) = crate::dataset::split_sizes(db);
            DbDetail {
                db,
                tables: schema.tables.len(),
                avg_cols: schema.column_count() as f64 / schema.tables.len() as f64,
                max_cols: schema.tables.iter().map(|t| t.columns.len()).max().unwrap_or(0),
                train,
                dev,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_constants_match_paper_table1() {
        assert_eq!(WIKISQL.examples, 80654);
        assert_eq!(SPIDER.tables_per_db, 5.1);
        assert_eq!(BIRD.columns_per_db, 54.2);
    }

    #[test]
    fn bull_is_wider_than_public_benchmarks() {
        let ds = BullDataset::generate(1);
        let b = bull_stats(&ds);
        assert_eq!(b.examples, 4966);
        assert!((25.0..=27.0).contains(&b.tables_per_db), "tables/db = {}", b.tables_per_db);
        assert!(b.columns_per_db > BIRD.columns_per_db * 5.0);
        let details = db_details(&ds);
        assert_eq!(details.len(), 3);
        assert!(details.iter().all(|d| d.max_cols >= 10));
    }
}
