//! Question–SQL archetypes: the template bank from which BULL examples
//! are generated.
//!
//! Each archetype instantiates a SQL shape over schema slots (tables,
//! columns, values sampled from the generated data) and renders the
//! matching natural-language question in both registers. Archetypes are
//! deliberately *database-agnostic*: the same twenty shapes apply to
//! fund, stock and macro, which is what makes cross-database transfer
//! (the paper's Figure 13) possible — a model that learned "top-k by
//! measure" on fund data can reuse the structure on macro data.

use crate::datagen::GeneratedDb;
use crate::profile::{profile_of, Profile};
use crate::schema::DbId;
use rand::rngs::StdRng;
use rand::Rng;
use sqlengine::Value;
use sqlkit::catalog::{CatalogSchema, CatalogTable};

/// A fully instantiated example before id assignment.
#[derive(Debug, Clone)]
pub struct Draft {
    pub sql: String,
    pub question_en: String,
    pub question_cn: String,
    pub archetype: &'static str,
    pub phrasing: usize,
    pub tables: Vec<String>,
    pub columns: Vec<(String, String)>,
}

/// Number of surface phrasings every archetype provides.
pub const PHRASINGS: usize = 6;

/// Names of all archetypes, used by analysis and tests.
pub const ARCHETYPES: &[&str] = &[
    "filter_select",
    "filter_select_multi",
    "count_filter",
    "agg_measure",
    "topk_order",
    "group_count",
    "group_agg_having",
    "join_filter",
    "join_agg",
    "join_topk",
    "compare_avg",
    "in_subquery",
    "between_dates",
    "like_match",
    "count_distinct",
    "multi_predicate",
    "latest_date",
    "group_sum_topk",
    "distinct_filter",
    "three_join",
];

/// Column role classification for one table, derived from profiles.
struct Roles {
    /// Categorical or entity-name text columns (filterable by equality).
    text_filters: Vec<usize>,
    /// Low-cardinality categorical columns (groupable).
    categories: Vec<usize>,
    /// Float measures (aggregatable).
    measures: Vec<usize>,
    /// Date columns.
    dates: Vec<usize>,
    /// Entity display-name columns.
    names: Vec<usize>,
    /// Any selectable non-audit column.
    selectable: Vec<usize>,
    /// FK source columns with their target (table, column).
    fk_sources: Vec<(usize, String, String)>,
}

fn classify(db_id: DbId, table: &CatalogTable, schema: &CatalogSchema) -> Roles {
    let mut r = Roles {
        text_filters: vec![],
        categories: vec![],
        measures: vec![],
        dates: vec![],
        names: vec![],
        selectable: vec![],
        fk_sources: vec![],
    };
    for (i, col) in table.columns.iter().enumerate() {
        match profile_of(db_id, &table.name, col, schema) {
            Profile::Category(_) => {
                r.text_filters.push(i);
                r.categories.push(i);
                r.selectable.push(i);
            }
            Profile::EntityName(_) => {
                r.text_filters.push(i);
                r.names.push(i);
                r.selectable.push(i);
            }
            Profile::Ratio | Profile::SmallFloat | Profile::Price | Profile::Amount => {
                r.measures.push(i);
                r.selectable.push(i);
            }
            Profile::Date
                if col.name != "xgrq" => {
                    r.dates.push(i);
                    r.selectable.push(i);
                }
            Profile::Count | Profile::Year | Profile::Quarter | Profile::Grade
                if col.name != "jsid" => {
                    r.selectable.push(i);
                }
            Profile::ForeignKey => {
                if let Some(fkdef) = schema
                    .foreign_keys
                    .iter()
                    .find(|f| f.from_table == table.name && f.from_column == col.name)
                {
                    r.fk_sources.push((i, fkdef.to_table.clone(), fkdef.to_column.clone()));
                }
            }
            _ => {}
        }
    }
    r
}

/// Renders a [`Value`] as a SQL literal.
fn sql_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        other => format!("{other}"),
    }
}

/// Renders a [`Value`] for inclusion in question text.
fn display(v: &Value) -> String {
    format!("{v}")
}

/// Substitutes `{key}` placeholders in a phrasing template.
fn fill(template: &str, subs: &[(&str, &str)]) -> String {
    let mut out = template.to_string();
    for (k, v) in subs {
        out = out.replace(&format!("{{{k}}}"), v);
    }
    out
}

/// Random existing value of column `ci` in table `t`.
fn sample_value(gdb: &GeneratedDb, t: &str, ci: usize, rng: &mut StdRng) -> Value {
    // INVARIANT: templates only name tables drawn from the generated
    // db's own catalog (rand_table picks from gdb.db.catalog()).
    let table = gdb.db.table(t).expect("template references schema table");
    let row = &table.rows[rng.gen_range(0..table.rows.len())];
    row[ci].clone()
}

fn pick<'a, T>(v: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if v.is_empty() {
        None
    } else {
        Some(&v[rng.gen_range(0..v.len())])
    }
}

/// The generation context for one database.
pub struct TemplateCtx<'a> {
    pub db_id: DbId,
    pub gdb: &'a GeneratedDb,
    pub schema: &'a CatalogSchema,
}

impl<'a> TemplateCtx<'a> {
    pub fn new(db_id: DbId, gdb: &'a GeneratedDb) -> Self {
        TemplateCtx { db_id, gdb, schema: gdb.db.catalog() }
    }

    /// Tries to instantiate the archetype with the given index; the
    /// phrasing index must be `< PHRASINGS`.
    pub fn instantiate(
        &self,
        archetype: &'static str,
        phrasing: usize,
        rng: &mut StdRng,
    ) -> Option<Draft> {
        assert!(phrasing < PHRASINGS);
        match archetype {
            "filter_select" => self.filter_select(phrasing, rng, 1),
            "filter_select_multi" => self.filter_select(phrasing, rng, 2),
            "count_filter" => self.count_filter(phrasing, rng),
            "agg_measure" => self.agg_measure(phrasing, rng),
            "topk_order" => self.topk_order(phrasing, rng),
            "group_count" => self.group_count(phrasing, rng),
            "group_agg_having" => self.group_agg_having(phrasing, rng),
            "join_filter" => self.join_filter(phrasing, rng),
            "join_agg" => self.join_agg(phrasing, rng),
            "join_topk" => self.join_topk(phrasing, rng),
            "compare_avg" => self.compare_avg(phrasing, rng),
            "in_subquery" => self.in_subquery(phrasing, rng),
            "between_dates" => self.between_dates(phrasing, rng),
            "like_match" => self.like_match(phrasing, rng),
            "count_distinct" => self.count_distinct(phrasing, rng),
            "multi_predicate" => self.multi_predicate(phrasing, rng),
            "latest_date" => self.latest_date(phrasing, rng),
            "group_sum_topk" => self.group_sum_topk(phrasing, rng),
            "distinct_filter" => self.distinct_filter(phrasing, rng),
            "three_join" => self.three_join(phrasing, rng),
            // INVARIANT: the arms above cover every name in ARCHETYPES,
            // the only values callers pass for `archetype`.
            other => panic!("unknown archetype {other}"),
        }
    }

    fn rand_table(&self, rng: &mut StdRng, pred: impl Fn(&Roles) -> bool) -> Option<(usize, Roles)> {
        // Scan tables in a random rotation for one satisfying the
        // predicate.
        let n = self.schema.tables.len();
        let start = rng.gen_range(0..n);
        for k in 0..n {
            let i = (start + k) % n;
            let roles = classify(self.db_id, &self.schema.tables[i], self.schema);
            if pred(&roles) {
                return Some((i, roles));
            }
        }
        None
    }

    // --- archetypes -------------------------------------------------------

    fn filter_select(&self, p: usize, rng: &mut StdRng, n_targets: usize) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| {
            !r.text_filters.is_empty() && r.selectable.len() > n_targets
        })?;
        let t = &self.schema.tables[ti];
        let fi = *pick(&roles.text_filters, rng)?;
        let mut targets = Vec::new();
        let mut guard = 0;
        while targets.len() < n_targets && guard < 50 {
            guard += 1;
            let c = *pick(&roles.selectable, rng)?;
            if c != fi && !targets.contains(&c) {
                targets.push(c);
            }
        }
        if targets.len() < n_targets {
            return None;
        }
        let v = sample_value(self.gdb, &t.name, fi, rng);
        let target_cols: Vec<String> = targets.iter().map(|&c| t.columns[c].name.clone()).collect();
        let sql = format!(
            "SELECT {} FROM {} WHERE {} = {}",
            target_cols.join(", "),
            t.name,
            t.columns[fi].name,
            sql_literal(&v)
        );
        let ct_en = targets.iter().map(|&c| t.columns[c].desc_en.clone()).collect::<Vec<_>>().join(" and ");
        let ct_cn = targets.iter().map(|&c| t.columns[c].desc_cn.clone()).collect::<Vec<_>>().join("和");
        let en_templates = [
            "What is the {ct} of the {ent} whose {cf} is {v}?",
            "Show the {ct} of the {ent} with {cf} {v}.",
            "Find the {ct} for the {ent} whose {cf} equals {v}.",
            "Please list the {ct} of the {ent} where the {cf} is {v}.",
            "I want to know the {ct} of the {ent} having {cf} {v}.",
            "Give me the {ct} recorded for the {ent} whose {cf} is {v}.",
        ];
        let cn_templates = [
            "{cf}为{v}的{ent}的{ct}是什么？",
            "查询{cf}是{v}的{ent}的{ct}。",
            "{cf}等于{v}的{ent}，其{ct}是多少？",
            "请列出{cf}为{v}的{ent}的{ct}。",
            "想知道{cf}为{v}的{ent}的{ct}。",
            "给出{cf}是{v}的{ent}的{ct}。",
        ];
        let vs = display(&v);
        let subs_en: &[(&str, &str)] = &[
            ("ct", &ct_en),
            ("ent", &t.desc_en),
            ("cf", &t.columns[fi].desc_en),
            ("v", &vs),
        ];
        let subs_cn: &[(&str, &str)] = &[
            ("ct", &ct_cn),
            ("ent", &t.desc_cn),
            ("cf", &t.columns[fi].desc_cn),
            ("v", &vs),
        ];
        let mut columns: Vec<(String, String)> =
            targets.iter().map(|&c| (t.name.clone(), t.columns[c].name.clone())).collect();
        columns.push((t.name.clone(), t.columns[fi].name.clone()));
        Some(Draft {
            sql,
            question_en: fill(en_templates[p], subs_en),
            question_cn: fill(cn_templates[p], subs_cn),
            archetype: if n_targets == 1 { "filter_select" } else { "filter_select_multi" },
            phrasing: p,
            tables: vec![t.name.clone()],
            columns,
        })
    }

    fn count_filter(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.text_filters.is_empty())?;
        let t = &self.schema.tables[ti];
        let fi = *pick(&roles.text_filters, rng)?;
        let v = sample_value(self.gdb, &t.name, fi, rng);
        let sql = format!(
            "SELECT COUNT(*) FROM {} WHERE {} = {}",
            t.name,
            t.columns[fi].name,
            sql_literal(&v)
        );
        let en = [
            "How many {ent} records have {cf} {v}?",
            "Count the {ent} records whose {cf} is {v}.",
            "What is the number of {ent} records with {cf} equal to {v}?",
            "Please count how many {ent} entries have the {cf} {v}.",
            "Find the total number of {ent} records where {cf} is {v}.",
            "Tell me how many {ent} rows have {cf} {v}.",
        ];
        let cn = [
            "{cf}为{v}的{ent}记录有多少条？",
            "统计{cf}是{v}的{ent}记录数。",
            "{cf}等于{v}的{ent}记录数量是多少？",
            "请统计{cf}为{v}的{ent}条目数。",
            "查找{cf}是{v}的{ent}记录总数。",
            "告诉我{cf}为{v}的{ent}行数。",
        ];
        let vs = display(&v);
        Some(Draft {
            sql,
            question_en: fill(en[p], &[("ent", &t.desc_en), ("cf", &t.columns[fi].desc_en), ("v", &vs)]),
            question_cn: fill(cn[p], &[("ent", &t.desc_cn), ("cf", &t.columns[fi].desc_cn), ("v", &vs)]),
            archetype: "count_filter",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![(t.name.clone(), t.columns[fi].name.clone())],
        })
    }

    fn agg_measure(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.measures.is_empty())?;
        let t = &self.schema.tables[ti];
        let mi = *pick(&roles.measures, rng)?;
        let (agg, agg_en, agg_cn) = *pick(
            &[
                ("AVG", "average", "平均"),
                ("MAX", "maximum", "最大"),
                ("MIN", "minimum", "最小"),
                ("SUM", "total", "总"),
            ],
            rng,
        )?;
        // Optionally filter.
        let (where_sql, where_en, where_cn, mut columns) =
            if !roles.text_filters.is_empty() && rng.gen_bool(0.6) {
                let fi = *pick(&roles.text_filters, rng)?;
                let v = sample_value(self.gdb, &t.name, fi, rng);
                (
                    format!(" WHERE {} = {}", t.columns[fi].name, sql_literal(&v)),
                    format!(" with {} {}", t.columns[fi].desc_en, display(&v)),
                    format!("（{}为{}）", t.columns[fi].desc_cn, display(&v)),
                    vec![(t.name.clone(), t.columns[fi].name.clone())],
                )
            } else {
                (String::new(), String::new(), String::new(), vec![])
            };
        let sql = format!("SELECT {agg}({}) FROM {}{where_sql}", t.columns[mi].name, t.name);
        let en = [
            "What is the {agg} {cm} of the {ent}{w}?",
            "Show the {agg} {cm} across the {ent}{w}.",
            "Compute the {agg} {cm} for the {ent}{w}.",
            "Please report the {agg} {cm} of the {ent}{w}.",
            "I need the {agg} {cm} over all {ent} records{w}.",
            "Give the {agg} {cm} recorded in the {ent}{w}.",
        ];
        let cn = [
            "{ent}的{agg}{cm}是多少{w}？",
            "展示{ent}的{agg}{cm}{w}。",
            "计算{ent}的{agg}{cm}{w}。",
            "请报告{ent}的{agg}{cm}{w}。",
            "需要{ent}全部记录的{agg}{cm}{w}。",
            "给出{ent}中记录的{agg}{cm}{w}。",
        ];
        columns.push((t.name.clone(), t.columns[mi].name.clone()));
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[("agg", agg_en), ("cm", &t.columns[mi].desc_en), ("ent", &t.desc_en), ("w", &where_en)],
            ),
            question_cn: fill(
                cn[p],
                &[("agg", agg_cn), ("cm", &t.columns[mi].desc_cn), ("ent", &t.desc_cn), ("w", &where_cn)],
            ),
            archetype: "agg_measure",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns,
        })
    }

    fn topk_order(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.measures.is_empty() && !r.selectable.is_empty())?;
        let t = &self.schema.tables[ti];
        let mi = *pick(&roles.measures, rng)?;
        let si = *pick(&roles.selectable, rng)?;
        if si == mi {
            return None;
        }
        let k = rng.gen_range(1..=5);
        let desc = rng.gen_bool(0.7);
        let (dir, dir_en, dir_cn) =
            if desc { ("DESC", "highest", "最高") } else { ("ASC", "lowest", "最低") };
        let sql = format!(
            "SELECT {} FROM {} ORDER BY {} {dir} LIMIT {k}",
            t.columns[si].name, t.name, t.columns[mi].name
        );
        let ks = k.to_string();
        let en = [
            "Which {k} {ent} records have the {dir} {cm}? Show their {cs}.",
            "List the {cs} of the top {k} {ent} records by {dir} {cm}.",
            "Find the {cs} of the {k} {ent} entries with the {dir} {cm}.",
            "Please give the {cs} for the {k} records of {ent} ranked by {dir} {cm}.",
            "Show me the {cs} of the {k} {ent} rows with the {dir} {cm}.",
            "Return the {cs} of the {k} {ent} records ordered by the {dir} {cm}.",
        ];
        let cn = [
            "{cm}{dir}的{k}条{ent}记录的{cs}是什么？",
            "列出按{cm}{dir}排名前{k}的{ent}的{cs}。",
            "找出{cm}{dir}的{k}条{ent}条目的{cs}。",
            "请给出按{dir}{cm}排序的前{k}条{ent}记录的{cs}。",
            "展示{cm}{dir}的{k}条{ent}行的{cs}。",
            "返回按{cm}{dir}排序的{k}条{ent}记录的{cs}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[
                    ("k", &ks),
                    ("ent", &t.desc_en),
                    ("dir", dir_en),
                    ("cm", &t.columns[mi].desc_en),
                    ("cs", &t.columns[si].desc_en),
                ],
            ),
            question_cn: fill(
                cn[p],
                &[
                    ("k", &ks),
                    ("ent", &t.desc_cn),
                    ("dir", dir_cn),
                    ("cm", &t.columns[mi].desc_cn),
                    ("cs", &t.columns[si].desc_cn),
                ],
            ),
            archetype: "topk_order",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![
                (t.name.clone(), t.columns[si].name.clone()),
                (t.name.clone(), t.columns[mi].name.clone()),
            ],
        })
    }

    fn group_count(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.categories.is_empty())?;
        let t = &self.schema.tables[ti];
        let gi = *pick(&roles.categories, rng)?;
        let sql = format!(
            "SELECT {}, COUNT(*) FROM {} GROUP BY {}",
            t.columns[gi].name, t.name, t.columns[gi].name
        );
        let en = [
            "How many {ent} records are there for each {cg}?",
            "Count the {ent} records per {cg}.",
            "For every {cg}, show the number of {ent} records.",
            "Please break down the {ent} record count by {cg}.",
            "Show the number of {ent} entries grouped by {cg}.",
            "Give the count of {ent} rows for each {cg}.",
        ];
        let cn = [
            "每个{cg}各有多少条{ent}记录？",
            "按{cg}统计{ent}记录数。",
            "对每个{cg}，展示{ent}记录的数量。",
            "请按{cg}拆分{ent}记录数。",
            "展示按{cg}分组的{ent}条目数量。",
            "给出每个{cg}的{ent}行数。",
        ];
        Some(Draft {
            sql,
            question_en: fill(en[p], &[("ent", &t.desc_en), ("cg", &t.columns[gi].desc_en)]),
            question_cn: fill(cn[p], &[("ent", &t.desc_cn), ("cg", &t.columns[gi].desc_cn)]),
            archetype: "group_count",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![(t.name.clone(), t.columns[gi].name.clone())],
        })
    }

    fn group_agg_having(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.categories.is_empty())?;
        let t = &self.schema.tables[ti];
        let gi = *pick(&roles.categories, rng)?;
        let n = rng.gen_range(2..=30);
        let sql = format!(
            "SELECT {} FROM {} GROUP BY {} HAVING COUNT(*) > {n}",
            t.columns[gi].name, t.name, t.columns[gi].name
        );
        let ns = n.to_string();
        let en = [
            "Which {cg} values appear in more than {n} {ent} records?",
            "List the {cg} values having over {n} {ent} records.",
            "Find every {cg} with more than {n} {ent} entries.",
            "Please show the {cg} values that occur in more than {n} {ent} rows.",
            "I want the {cg} values counted more than {n} times in the {ent}.",
            "Return the {cg} values whose {ent} record count exceeds {n}.",
        ];
        let cn = [
            "哪些{cg}出现在超过{n}条{ent}记录中？",
            "列出{ent}记录数超过{n}的{cg}。",
            "找出{ent}条目多于{n}的所有{cg}。",
            "请展示出现在多于{n}条{ent}行中的{cg}。",
            "需要在{ent}中计数超过{n}次的{cg}。",
            "返回{ent}记录数大于{n}的{cg}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(en[p], &[("cg", &t.columns[gi].desc_en), ("n", &ns), ("ent", &t.desc_en)]),
            question_cn: fill(cn[p], &[("cg", &t.columns[gi].desc_cn), ("n", &ns), ("ent", &t.desc_cn)]),
            archetype: "group_agg_having",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![(t.name.clone(), t.columns[gi].name.clone())],
        })
    }

    /// Finds a joinable pair: a table with an FK into a master, where the
    /// master has text filters and the fact table has the wanted role.
    fn join_pair(&self, rng: &mut StdRng, fact_pred: impl Fn(&Roles) -> bool) -> Option<JoinPair> {
        let n = self.schema.tables.len();
        let start = rng.gen_range(0..n);
        for k in 0..n {
            let fi = (start + k) % n;
            let fact = &self.schema.tables[fi];
            let fact_roles = classify(self.db_id, fact, self.schema);
            if !fact_pred(&fact_roles) {
                continue;
            }
            for (ci, target_table, target_col) in &fact_roles.fk_sources {
                let mi = self.schema.table_index(target_table)?;
                let master = &self.schema.tables[mi];
                let master_roles = classify(self.db_id, master, self.schema);
                if !master_roles.names.is_empty() || !master_roles.text_filters.is_empty() {
                    return Some(JoinPair {
                        fact: fi,
                        master: mi,
                        fact_fk_col: *ci,
                        master_key_col: master.column_index(target_col)?,
                        fact_roles,
                        master_roles,
                    });
                }
            }
        }
        None
    }

    fn join_filter(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let jp = self.join_pair(rng, |r| !r.selectable.is_empty())?;
        let fact = &self.schema.tables[jp.fact];
        let master = &self.schema.tables[jp.master];
        let filter_pool =
            if jp.master_roles.names.is_empty() { &jp.master_roles.text_filters } else { &jp.master_roles.names };
        let mfi = *pick(filter_pool, rng)?;
        let si = *pick(&jp.fact_roles.selectable, rng)?;
        let v = sample_value(self.gdb, &master.name, mfi, rng);
        let sql = format!(
            "SELECT t1.{} FROM {} AS t1 JOIN {} AS t2 ON t1.{} = t2.{} WHERE t2.{} = {}",
            fact.columns[si].name,
            fact.name,
            master.name,
            fact.columns[jp.fact_fk_col].name,
            master.columns[jp.master_key_col].name,
            master.columns[mfi].name,
            sql_literal(&v)
        );
        let vs = display(&v);
        let en = [
            "What is the {cs} in the {fact} for the {master} whose {cf} is {v}?",
            "Show the {cs} from the {fact} of the {master} with {cf} {v}.",
            "Find the {cs} recorded in the {fact} for the {master} whose {cf} equals {v}.",
            "Please list the {cs} in the {fact} belonging to the {master} where {cf} is {v}.",
            "I want the {cs} from the {fact} linked to the {master} having {cf} {v}.",
            "Give the {cs} of the {fact} for the {master} whose {cf} is {v}.",
        ];
        let cn = [
            "{cf}为{v}的{master}在{fact}中的{cs}是什么？",
            "展示{cf}是{v}的{master}的{fact}中的{cs}。",
            "查找{cf}等于{v}的{master}在{fact}中记录的{cs}。",
            "请列出{cf}为{v}的{master}对应{fact}的{cs}。",
            "需要{cf}为{v}的{master}关联的{fact}中的{cs}。",
            "给出{cf}是{v}的{master}的{fact}的{cs}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[
                    ("cs", &fact.columns[si].desc_en),
                    ("fact", &fact.desc_en),
                    ("master", &master.desc_en),
                    ("cf", &master.columns[mfi].desc_en),
                    ("v", &vs),
                ],
            ),
            question_cn: fill(
                cn[p],
                &[
                    ("cs", &fact.columns[si].desc_cn),
                    ("fact", &fact.desc_cn),
                    ("master", &master.desc_cn),
                    ("cf", &master.columns[mfi].desc_cn),
                    ("v", &vs),
                ],
            ),
            archetype: "join_filter",
            phrasing: p,
            tables: vec![fact.name.clone(), master.name.clone()],
            columns: vec![
                (fact.name.clone(), fact.columns[si].name.clone()),
                (fact.name.clone(), fact.columns[jp.fact_fk_col].name.clone()),
                (master.name.clone(), master.columns[jp.master_key_col].name.clone()),
                (master.name.clone(), master.columns[mfi].name.clone()),
            ],
        })
    }

    fn join_agg(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let jp = self.join_pair(rng, |r| !r.measures.is_empty())?;
        let fact = &self.schema.tables[jp.fact];
        let master = &self.schema.tables[jp.master];
        let filter_pool =
            if jp.master_roles.names.is_empty() { &jp.master_roles.text_filters } else { &jp.master_roles.names };
        let mfi = *pick(filter_pool, rng)?;
        let mi = *pick(&jp.fact_roles.measures, rng)?;
        let v = sample_value(self.gdb, &master.name, mfi, rng);
        let (agg, agg_en, agg_cn) =
            *pick(&[("AVG", "average", "平均"), ("MAX", "maximum", "最大"), ("SUM", "total", "总")], rng)?;
        let sql = format!(
            "SELECT {agg}(t1.{}) FROM {} AS t1 JOIN {} AS t2 ON t1.{} = t2.{} WHERE t2.{} = {}",
            fact.columns[mi].name,
            fact.name,
            master.name,
            fact.columns[jp.fact_fk_col].name,
            master.columns[jp.master_key_col].name,
            master.columns[mfi].name,
            sql_literal(&v)
        );
        let vs = display(&v);
        let en = [
            "What is the {agg} {cm} in the {fact} for the {master} whose {cf} is {v}?",
            "Compute the {agg} {cm} from the {fact} of the {master} with {cf} {v}.",
            "Find the {agg} {cm} recorded in the {fact} for the {master} whose {cf} equals {v}.",
            "Please report the {agg} {cm} in the {fact} of the {master} where {cf} is {v}.",
            "I want the {agg} {cm} over the {fact} linked to the {master} having {cf} {v}.",
            "Give the {agg} {cm} of the {fact} for the {master} whose {cf} is {v}.",
        ];
        let cn = [
            "{cf}为{v}的{master}在{fact}中的{agg}{cm}是多少？",
            "计算{cf}是{v}的{master}的{fact}中的{agg}{cm}。",
            "查找{cf}等于{v}的{master}在{fact}中的{agg}{cm}。",
            "请报告{cf}为{v}的{master}的{fact}的{agg}{cm}。",
            "需要{cf}为{v}的{master}关联{fact}的{agg}{cm}。",
            "给出{cf}是{v}的{master}的{fact}的{agg}{cm}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[
                    ("agg", agg_en),
                    ("cm", &fact.columns[mi].desc_en),
                    ("fact", &fact.desc_en),
                    ("master", &master.desc_en),
                    ("cf", &master.columns[mfi].desc_en),
                    ("v", &vs),
                ],
            ),
            question_cn: fill(
                cn[p],
                &[
                    ("agg", agg_cn),
                    ("cm", &fact.columns[mi].desc_cn),
                    ("fact", &fact.desc_cn),
                    ("master", &master.desc_cn),
                    ("cf", &master.columns[mfi].desc_cn),
                    ("v", &vs),
                ],
            ),
            archetype: "join_agg",
            phrasing: p,
            tables: vec![fact.name.clone(), master.name.clone()],
            columns: vec![
                (fact.name.clone(), fact.columns[mi].name.clone()),
                (fact.name.clone(), fact.columns[jp.fact_fk_col].name.clone()),
                (master.name.clone(), master.columns[jp.master_key_col].name.clone()),
                (master.name.clone(), master.columns[mfi].name.clone()),
            ],
        })
    }

    fn join_topk(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let jp = self.join_pair(rng, |r| !r.measures.is_empty())?;
        let fact = &self.schema.tables[jp.fact];
        let master = &self.schema.tables[jp.master];
        let name_pool =
            if jp.master_roles.names.is_empty() { &jp.master_roles.text_filters } else { &jp.master_roles.names };
        let mni = *pick(name_pool, rng)?;
        let mi = *pick(&jp.fact_roles.measures, rng)?;
        let k = rng.gen_range(1..=5);
        let sql = format!(
            "SELECT t2.{} FROM {} AS t1 JOIN {} AS t2 ON t1.{} = t2.{} ORDER BY t1.{} DESC LIMIT {k}",
            master.columns[mni].name,
            fact.name,
            master.name,
            fact.columns[jp.fact_fk_col].name,
            master.columns[jp.master_key_col].name,
            fact.columns[mi].name
        );
        let ks = k.to_string();
        let en = [
            "Which {master} have the {k} highest {cm} in the {fact}? Show the {cn}.",
            "List the {cn} of the {master} with the top {k} {cm} in the {fact}.",
            "Find the {cn} of the {k} {master} whose {fact} {cm} is highest.",
            "Please show the {cn} for the {k} {master} ranked by {cm} in the {fact}.",
            "I want the {cn} of the {k} {master} with the largest {cm} in the {fact}.",
            "Return the {cn} of the top {k} {master} by {fact} {cm}.",
        ];
        let cn = [
            "{fact}中{cm}最高的{k}个{master}是哪些？展示其{cn}。",
            "列出{fact}中{cm}排名前{k}的{master}的{cn}。",
            "找出{fact}的{cm}最高的{k}个{master}的{cn}。",
            "请展示按{fact}中{cm}排序的前{k}个{master}的{cn}。",
            "需要{fact}中{cm}最大的{k}个{master}的{cn}。",
            "返回按{fact}的{cm}排名前{k}的{master}的{cn}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[
                    ("master", &master.desc_en),
                    ("k", &ks),
                    ("cm", &fact.columns[mi].desc_en),
                    ("fact", &fact.desc_en),
                    ("cn", &master.columns[mni].desc_en),
                ],
            ),
            question_cn: fill(
                cn[p],
                &[
                    ("master", &master.desc_cn),
                    ("k", &ks),
                    ("cm", &fact.columns[mi].desc_cn),
                    ("fact", &fact.desc_cn),
                    ("cn", &master.columns[mni].desc_cn),
                ],
            ),
            archetype: "join_topk",
            phrasing: p,
            tables: vec![fact.name.clone(), master.name.clone()],
            columns: vec![
                (master.name.clone(), master.columns[mni].name.clone()),
                (fact.name.clone(), fact.columns[jp.fact_fk_col].name.clone()),
                (master.name.clone(), master.columns[jp.master_key_col].name.clone()),
                (fact.name.clone(), fact.columns[mi].name.clone()),
            ],
        })
    }

    fn compare_avg(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.measures.is_empty() && !r.selectable.is_empty())?;
        let t = &self.schema.tables[ti];
        let mi = *pick(&roles.measures, rng)?;
        let si = *pick(&roles.selectable, rng)?;
        if si == mi {
            return None;
        }
        let sql = format!(
            "SELECT {} FROM {} WHERE {} > (SELECT AVG({}) FROM {})",
            t.columns[si].name, t.name, t.columns[mi].name, t.columns[mi].name, t.name
        );
        let en = [
            "Which {ent} records have a {cm} above the average? Show the {cs}.",
            "List the {cs} of the {ent} records whose {cm} exceeds the average {cm}.",
            "Find the {cs} of every {ent} entry with a {cm} greater than average.",
            "Please show the {cs} for {ent} records whose {cm} is above the mean.",
            "I want the {cs} of {ent} rows where the {cm} is higher than the average.",
            "Return the {cs} of the {ent} records with above average {cm}.",
        ];
        let cn = [
            "哪些{ent}记录的{cm}高于平均值？展示其{cs}。",
            "列出{cm}超过平均{cm}的{ent}记录的{cs}。",
            "找出{cm}大于平均值的每条{ent}条目的{cs}。",
            "请展示{cm}高于均值的{ent}记录的{cs}。",
            "需要{cm}高于平均的{ent}行的{cs}。",
            "返回{cm}高于平均值的{ent}记录的{cs}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[("ent", &t.desc_en), ("cm", &t.columns[mi].desc_en), ("cs", &t.columns[si].desc_en)],
            ),
            question_cn: fill(
                cn[p],
                &[("ent", &t.desc_cn), ("cm", &t.columns[mi].desc_cn), ("cs", &t.columns[si].desc_cn)],
            ),
            archetype: "compare_avg",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![
                (t.name.clone(), t.columns[si].name.clone()),
                (t.name.clone(), t.columns[mi].name.clone()),
            ],
        })
    }

    fn in_subquery(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        // master.c_t WHERE key IN (SELECT fk FROM fact WHERE fact filter)
        let jp = self.join_pair(rng, |r| !r.text_filters.is_empty() || !r.measures.is_empty())?;
        let fact = &self.schema.tables[jp.fact];
        let master = &self.schema.tables[jp.master];
        let select_pool =
            if jp.master_roles.names.is_empty() { &jp.master_roles.selectable } else { &jp.master_roles.names };
        let msi = *pick(select_pool, rng)?;
        // Filter on the fact side: categorical equality or measure threshold.
        let (fact_where, w_en, w_cn, fcol) = if !jp.fact_roles.text_filters.is_empty()
            && (jp.fact_roles.measures.is_empty() || rng.gen_bool(0.5))
        {
            let fi = *pick(&jp.fact_roles.text_filters, rng)?;
            let v = sample_value(self.gdb, &fact.name, fi, rng);
            (
                format!("{} = {}", fact.columns[fi].name, sql_literal(&v)),
                format!("{} is {}", fact.columns[fi].desc_en, display(&v)),
                format!("{}为{}", fact.columns[fi].desc_cn, display(&v)),
                fi,
            )
        } else {
            let fi = *pick(&jp.fact_roles.measures, rng)?;
            let v = sample_value(self.gdb, &fact.name, fi, rng);
            let threshold = match v {
                Value::Float(f) => format!("{:.2}", f),
                other => display(&other),
            };
            (
                format!("{} > {}", fact.columns[fi].name, threshold),
                format!("{} is greater than {}", fact.columns[fi].desc_en, threshold),
                format!("{}大于{}", fact.columns[fi].desc_cn, threshold),
                fi,
            )
        };
        let sql = format!(
            "SELECT {} FROM {} WHERE {} IN (SELECT {} FROM {} WHERE {})",
            master.columns[msi].name,
            master.name,
            master.columns[jp.master_key_col].name,
            fact.columns[jp.fact_fk_col].name,
            fact.name,
            fact_where
        );
        let en = [
            "Which {master} have a {fact} record where the {w}? Show the {cs}.",
            "List the {cs} of the {master} that appear in the {fact} with {w}.",
            "Find the {cs} of every {master} having a {fact} entry whose {w}.",
            "Please show the {cs} of the {master} with at least one {fact} record where the {w}.",
            "I want the {cs} of {master} that have {fact} rows in which the {w}.",
            "Return the {cs} of the {master} whose {fact} records satisfy: {w}.",
        ];
        let cn = [
            "哪些{master}存在{w}的{fact}记录？展示其{cs}。",
            "列出在{fact}中{w}的{master}的{cs}。",
            "找出存在{w}的{fact}条目的每个{master}的{cs}。",
            "请展示至少有一条{w}的{fact}记录的{master}的{cs}。",
            "需要拥有{w}的{fact}行的{master}的{cs}。",
            "返回其{fact}记录满足{w}的{master}的{cs}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[("master", &master.desc_en), ("fact", &fact.desc_en), ("w", &w_en), ("cs", &master.columns[msi].desc_en)],
            ),
            question_cn: fill(
                cn[p],
                &[("master", &master.desc_cn), ("fact", &fact.desc_cn), ("w", &w_cn), ("cs", &master.columns[msi].desc_cn)],
            ),
            archetype: "in_subquery",
            phrasing: p,
            tables: vec![master.name.clone(), fact.name.clone()],
            columns: vec![
                (master.name.clone(), master.columns[msi].name.clone()),
                (master.name.clone(), master.columns[jp.master_key_col].name.clone()),
                (fact.name.clone(), fact.columns[jp.fact_fk_col].name.clone()),
                (fact.name.clone(), fact.columns[fcol].name.clone()),
            ],
        })
    }

    fn between_dates(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.dates.is_empty() && !r.measures.is_empty())?;
        let t = &self.schema.tables[ti];
        // Phrasings 0, 1 and 4 do not name the date column; annotators
        // then mean the table's primary (first) date column.
        let di = if matches!(p, 0 | 1 | 4) { roles.dates[0] } else { *pick(&roles.dates, rng)? };
        let mi = *pick(&roles.measures, rng)?;
        let (agg, agg_en, agg_cn) =
            *pick(&[("AVG", "average", "平均"), ("SUM", "total", "总"), ("MAX", "maximum", "最大")], rng)?;
        let a = sample_value(self.gdb, &t.name, di, rng);
        let b = sample_value(self.gdb, &t.name, di, rng);
        let (lo, hi) = match (display(&a).as_str(), display(&b).as_str()) {
            (x, y) if x <= y => (display(&a), display(&b)),
            _ => (display(&b), display(&a)),
        };
        let sql = format!(
            "SELECT {agg}({}) FROM {} WHERE {} BETWEEN '{lo}' AND '{hi}'",
            t.columns[mi].name, t.name, t.columns[di].name
        );
        let en = [
            "What is the {agg} {cm} of the {ent} between {lo} and {hi}?",
            "Compute the {agg} {cm} for {ent} records dated from {lo} to {hi}.",
            "Find the {agg} {cm} of the {ent} where the {cd} is between {lo} and {hi}.",
            "Please report the {agg} {cm} over {ent} records with {cd} from {lo} to {hi}.",
            "I need the {agg} {cm} of the {ent} in the period {lo} to {hi}.",
            "Give the {agg} {cm} for the {ent} whose {cd} falls between {lo} and {hi}.",
        ];
        let cn = [
            "{lo}到{hi}之间{ent}的{agg}{cm}是多少？",
            "计算{lo}至{hi}期间{ent}记录的{agg}{cm}。",
            "找出{cd}介于{lo}和{hi}之间的{ent}的{agg}{cm}。",
            "请报告{cd}从{lo}到{hi}的{ent}记录的{agg}{cm}。",
            "需要{lo}到{hi}期间{ent}的{agg}{cm}。",
            "给出{cd}在{lo}和{hi}之间的{ent}的{agg}{cm}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[
                    ("agg", agg_en),
                    ("cm", &t.columns[mi].desc_en),
                    ("ent", &t.desc_en),
                    ("cd", &t.columns[di].desc_en),
                    ("lo", &lo),
                    ("hi", &hi),
                ],
            ),
            question_cn: fill(
                cn[p],
                &[
                    ("agg", agg_cn),
                    ("cm", &t.columns[mi].desc_cn),
                    ("ent", &t.desc_cn),
                    ("cd", &t.columns[di].desc_cn),
                    ("lo", &lo),
                    ("hi", &hi),
                ],
            ),
            archetype: "between_dates",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![
                (t.name.clone(), t.columns[mi].name.clone()),
                (t.name.clone(), t.columns[di].name.clone()),
            ],
        })
    }

    fn like_match(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        // Prefer entity-name columns; fall back to any text filter (the
        // macro database has no entity names, only categorical text).
        let (ti, roles) =
            self.rand_table(rng, |r| !r.text_filters.is_empty() && r.selectable.len() >= 2)?;
        let t = &self.schema.tables[ti];
        let ni = *pick(if roles.names.is_empty() { &roles.text_filters } else { &roles.names }, rng)?;
        let si = *pick(&roles.selectable, rng)?;
        if si == ni {
            return None;
        }
        // A word that occurs in a real name.
        let v = sample_value(self.gdb, &t.name, ni, rng);
        let name = display(&v);
        let word = name.split_whitespace().next()?.to_string();
        let sql = format!(
            "SELECT {} FROM {} WHERE {} LIKE '%{}%'",
            t.columns[si].name, t.name, t.columns[ni].name, word
        );
        let en = [
            "Show the {cs} of the {ent} whose {cn} contains {w}.",
            "List the {cs} for {ent} records where the {cn} includes the word {w}.",
            "Find the {cs} of every {ent} whose {cn} has {w} in it.",
            "Please give the {cs} of the {ent} with {w} in the {cn}.",
            "I want the {cs} of {ent} entries whose {cn} mentions {w}.",
            "Return the {cs} of the {ent} records whose {cn} contains the text {w}.",
        ];
        let cn = [
            "展示{cn}包含{w}的{ent}的{cs}。",
            "列出{cn}含有{w}一词的{ent}记录的{cs}。",
            "找出{cn}中带{w}的每个{ent}的{cs}。",
            "请给出{cn}里有{w}的{ent}的{cs}。",
            "需要{cn}提到{w}的{ent}条目的{cs}。",
            "返回{cn}包含文本{w}的{ent}记录的{cs}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[("cs", &t.columns[si].desc_en), ("ent", &t.desc_en), ("cn", &t.columns[ni].desc_en), ("w", &word)],
            ),
            question_cn: fill(
                cn[p],
                &[("cs", &t.columns[si].desc_cn), ("ent", &t.desc_cn), ("cn", &t.columns[ni].desc_cn), ("w", &word)],
            ),
            archetype: "like_match",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![
                (t.name.clone(), t.columns[si].name.clone()),
                (t.name.clone(), t.columns[ni].name.clone()),
            ],
        })
    }

    fn count_distinct(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.categories.is_empty())?;
        let t = &self.schema.tables[ti];
        let gi = *pick(&roles.categories, rng)?;
        let sql = format!("SELECT COUNT(DISTINCT {}) FROM {}", t.columns[gi].name, t.name);
        let en = [
            "How many distinct {cg} values appear in the {ent}?",
            "Count the different {cg} values in the {ent}.",
            "What is the number of unique {cg} values in the {ent}?",
            "Please count the distinct {cg} values recorded in the {ent}.",
            "Find how many different {cg} values the {ent} contains.",
            "Tell me the count of unique {cg} values in the {ent}.",
        ];
        let cn = [
            "{ent}中出现多少个不同的{cg}？",
            "统计{ent}中不同的{cg}数。",
            "{ent}中唯一{cg}的数量是多少？",
            "请统计{ent}中记录的不同{cg}数。",
            "查找{ent}包含多少种{cg}。",
            "告诉我{ent}中唯一{cg}的个数。",
        ];
        Some(Draft {
            sql,
            question_en: fill(en[p], &[("cg", &t.columns[gi].desc_en), ("ent", &t.desc_en)]),
            question_cn: fill(cn[p], &[("cg", &t.columns[gi].desc_cn), ("ent", &t.desc_cn)]),
            archetype: "count_distinct",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![(t.name.clone(), t.columns[gi].name.clone())],
        })
    }

    fn multi_predicate(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) =
            self.rand_table(rng, |r| !r.text_filters.is_empty() && !r.measures.is_empty() && r.selectable.len() >= 3)?;
        let t = &self.schema.tables[ti];
        let fi = *pick(&roles.text_filters, rng)?;
        let mi = *pick(&roles.measures, rng)?;
        let si = *pick(&roles.selectable, rng)?;
        if si == fi || si == mi {
            return None;
        }
        let v = sample_value(self.gdb, &t.name, fi, rng);
        let mv = sample_value(self.gdb, &t.name, mi, rng);
        let threshold = match mv {
            Value::Float(f) => format!("{:.2}", f),
            other => display(&other),
        };
        let sql = format!(
            "SELECT {} FROM {} WHERE {} = {} AND {} > {}",
            t.columns[si].name,
            t.name,
            t.columns[fi].name,
            sql_literal(&v),
            t.columns[mi].name,
            threshold
        );
        let vs = display(&v);
        let en = [
            "Show the {cs} of the {ent} whose {cf} is {v} and whose {cm} is above {x}.",
            "List the {cs} for {ent} records with {cf} {v} and {cm} greater than {x}.",
            "Find the {cs} of every {ent} where the {cf} equals {v} and the {cm} exceeds {x}.",
            "Please give the {cs} of the {ent} having {cf} {v} with {cm} over {x}.",
            "I want the {cs} of {ent} entries whose {cf} is {v} and {cm} larger than {x}.",
            "Return the {cs} of the {ent} records where {cf} is {v} and {cm} is more than {x}.",
        ];
        let cn = [
            "展示{cf}为{v}且{cm}高于{x}的{ent}的{cs}。",
            "列出{cf}是{v}且{cm}大于{x}的{ent}记录的{cs}。",
            "找出{cf}等于{v}且{cm}超过{x}的每个{ent}的{cs}。",
            "请给出{cf}为{v}且{cm}超出{x}的{ent}的{cs}。",
            "需要{cf}是{v}且{cm}大于{x}的{ent}条目的{cs}。",
            "返回{cf}为{v}且{cm}多于{x}的{ent}记录的{cs}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[
                    ("cs", &t.columns[si].desc_en),
                    ("ent", &t.desc_en),
                    ("cf", &t.columns[fi].desc_en),
                    ("v", &vs),
                    ("cm", &t.columns[mi].desc_en),
                    ("x", &threshold),
                ],
            ),
            question_cn: fill(
                cn[p],
                &[
                    ("cs", &t.columns[si].desc_cn),
                    ("ent", &t.desc_cn),
                    ("cf", &t.columns[fi].desc_cn),
                    ("v", &vs),
                    ("cm", &t.columns[mi].desc_cn),
                    ("x", &threshold),
                ],
            ),
            archetype: "multi_predicate",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![
                (t.name.clone(), t.columns[si].name.clone()),
                (t.name.clone(), t.columns[fi].name.clone()),
                (t.name.clone(), t.columns[mi].name.clone()),
            ],
        })
    }

    fn latest_date(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.dates.is_empty() && r.selectable.len() >= 2)?;
        let t = &self.schema.tables[ti];
        // Phrasing 1 ("most recent records") leaves the date column
        // implicit — the primary date is meant.
        let di = if p == 1 { roles.dates[0] } else { *pick(&roles.dates, rng)? };
        let si = *pick(&roles.selectable, rng)?;
        if si == di {
            return None;
        }
        let sql = format!(
            "SELECT {} FROM {} WHERE {} = (SELECT MAX({}) FROM {})",
            t.columns[si].name, t.name, t.columns[di].name, t.columns[di].name, t.name
        );
        let en = [
            "What is the {cs} of the {ent} on the latest {cd}?",
            "Show the {cs} from the most recent {ent} records.",
            "Find the {cs} of the {ent} at the latest {cd}.",
            "Please give the {cs} recorded on the newest {cd} of the {ent}.",
            "I want the latest {cs} of the {ent} by {cd}.",
            "Return the {cs} of the {ent} records dated at the maximum {cd}.",
        ];
        let cn = [
            "最新{cd}的{ent}的{cs}是什么？",
            "展示最近{ent}记录的{cs}。",
            "找出最新{cd}时{ent}的{cs}。",
            "请给出{ent}最新{cd}记录的{cs}。",
            "需要按{cd}最新的{ent}的{cs}。",
            "返回{cd}最大的{ent}记录的{cs}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[("cs", &t.columns[si].desc_en), ("ent", &t.desc_en), ("cd", &t.columns[di].desc_en)],
            ),
            question_cn: fill(
                cn[p],
                &[("cs", &t.columns[si].desc_cn), ("ent", &t.desc_cn), ("cd", &t.columns[di].desc_cn)],
            ),
            archetype: "latest_date",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![
                (t.name.clone(), t.columns[si].name.clone()),
                (t.name.clone(), t.columns[di].name.clone()),
            ],
        })
    }

    fn group_sum_topk(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.categories.is_empty() && !r.measures.is_empty())?;
        let t = &self.schema.tables[ti];
        let gi = *pick(&roles.categories, rng)?;
        let mi = *pick(&roles.measures, rng)?;
        let k = rng.gen_range(1..=3);
        let sql = format!(
            "SELECT {}, SUM({}) FROM {} GROUP BY {} ORDER BY SUM({}) DESC LIMIT {k}",
            t.columns[gi].name,
            t.columns[mi].name,
            t.name,
            t.columns[gi].name,
            t.columns[mi].name
        );
        let ks = k.to_string();
        let en = [
            "Which {k} {cg} values have the largest total {cm} in the {ent}?",
            "List the top {k} {cg} values by total {cm} in the {ent}.",
            "Find the {k} {cg} values with the highest summed {cm} in the {ent}.",
            "Please show the {k} {cg} values whose total {cm} is largest in the {ent}.",
            "I want the {k} leading {cg} values by total {cm} in the {ent}.",
            "Return the {k} {cg} values ranked by total {cm} in the {ent}.",
        ];
        let cn = [
            "{ent}中总{cm}最大的{k}个{cg}是哪些？",
            "列出{ent}中按总{cm}排名前{k}的{cg}。",
            "找出{ent}中{cm}合计最高的{k}个{cg}。",
            "请展示{ent}中总{cm}最大的{k}个{cg}。",
            "需要{ent}中总{cm}领先的{k}个{cg}。",
            "返回{ent}中按总{cm}排序的{k}个{cg}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[("k", &ks), ("cg", &t.columns[gi].desc_en), ("cm", &t.columns[mi].desc_en), ("ent", &t.desc_en)],
            ),
            question_cn: fill(
                cn[p],
                &[("k", &ks), ("cg", &t.columns[gi].desc_cn), ("cm", &t.columns[mi].desc_cn), ("ent", &t.desc_cn)],
            ),
            archetype: "group_sum_topk",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![
                (t.name.clone(), t.columns[gi].name.clone()),
                (t.name.clone(), t.columns[mi].name.clone()),
            ],
        })
    }

    fn distinct_filter(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        let (ti, roles) = self.rand_table(rng, |r| !r.categories.is_empty() && !r.measures.is_empty())?;
        let t = &self.schema.tables[ti];
        let gi = *pick(&roles.categories, rng)?;
        let mi = *pick(&roles.measures, rng)?;
        let mv = sample_value(self.gdb, &t.name, mi, rng);
        let threshold = match mv {
            Value::Float(f) => format!("{:.2}", f),
            other => display(&other),
        };
        let sql = format!(
            "SELECT DISTINCT {} FROM {} WHERE {} > {}",
            t.columns[gi].name, t.name, t.columns[mi].name, threshold
        );
        let en = [
            "Which distinct {cg} values appear in {ent} records with {cm} above {x}?",
            "List the different {cg} values of the {ent} where the {cm} exceeds {x}.",
            "Find all unique {cg} values among {ent} entries whose {cm} is greater than {x}.",
            "Please show the distinct {cg} values for {ent} rows with {cm} over {x}.",
            "I want every different {cg} of the {ent} having {cm} larger than {x}.",
            "Return the unique {cg} values in the {ent} where {cm} is more than {x}.",
        ];
        let cn = [
            "{cm}高于{x}的{ent}记录中出现哪些不同的{cg}？",
            "列出{cm}超过{x}的{ent}的不同{cg}。",
            "找出{cm}大于{x}的{ent}条目中所有唯一的{cg}。",
            "请展示{cm}超出{x}的{ent}行的不同{cg}。",
            "需要{cm}大于{x}的{ent}的每种{cg}。",
            "返回{ent}中{cm}多于{x}的唯一{cg}。",
        ];
        Some(Draft {
            sql,
            question_en: fill(
                en[p],
                &[("cg", &t.columns[gi].desc_en), ("ent", &t.desc_en), ("cm", &t.columns[mi].desc_en), ("x", &threshold)],
            ),
            question_cn: fill(
                cn[p],
                &[("cg", &t.columns[gi].desc_cn), ("ent", &t.desc_cn), ("cm", &t.columns[mi].desc_cn), ("x", &threshold)],
            ),
            archetype: "distinct_filter",
            phrasing: p,
            tables: vec![t.name.clone()],
            columns: vec![
                (t.name.clone(), t.columns[gi].name.clone()),
                (t.name.clone(), t.columns[mi].name.clone()),
            ],
        })
    }

    fn three_join(&self, p: usize, rng: &mut StdRng) -> Option<Draft> {
        // Chain: fact A --fk--> master M <--fk-- fact B. Select from B,
        // filter on A.
        let n = self.schema.tables.len();
        let start = rng.gen_range(0..n);
        for k in 0..n {
            let ai = (start + k) % n;
            let a = &self.schema.tables[ai];
            let a_roles = classify(self.db_id, a, self.schema);
            if a_roles.text_filters.is_empty() || a_roles.fk_sources.is_empty() {
                continue;
            }
            let (a_fk_col, m_name, m_key) = a_roles.fk_sources[0].clone();
            // A second fact table with an FK into the same master.
            for bi in 0..n {
                if bi == ai {
                    continue;
                }
                let b = &self.schema.tables[bi];
                let b_roles = classify(self.db_id, b, self.schema);
                let Some((b_fk_col, _, _)) = b_roles
                    .fk_sources
                    .iter()
                    .find(|(_, t2, c2)| *t2 == m_name && *c2 == m_key)
                    .cloned()
                else {
                    continue;
                };
                if b_roles.selectable.is_empty() {
                    continue;
                }
                let mi = self.schema.table_index(&m_name)?;
                let m = &self.schema.tables[mi];
                let m_key_idx = m.column_index(&m_key)?;
                let fi = *pick(&a_roles.text_filters, rng)?;
                let si = *pick(&b_roles.selectable, rng)?;
                let v = sample_value(self.gdb, &a.name, fi, rng);
                let sql = format!(
                    "SELECT t3.{} FROM {} AS t1 JOIN {} AS t2 ON t1.{} = t2.{} JOIN {} AS t3 ON t2.{} = t3.{} WHERE t1.{} = {}",
                    b.columns[si].name,
                    a.name,
                    m.name,
                    a.columns[a_fk_col].name,
                    m.columns[m_key_idx].name,
                    b.name,
                    m.columns[m_key_idx].name,
                    b.columns[b_fk_col].name,
                    a.columns[fi].name,
                    sql_literal(&v)
                );
                let vs = display(&v);
                let en = [
                    "For the {m} whose {a} record has {cf} {v}, what is the {cs} in the {b}?",
                    "Show the {cs} from the {b} for the {m} whose {a} {cf} is {v}.",
                    "Find the {b} {cs} of the {m} linked to an {a} record where {cf} equals {v}.",
                    "Please list the {cs} in the {b} for the {m} whose {a} entry has {cf} {v}.",
                    "I want the {cs} from the {b} of the {m} whose {a} record shows {cf} {v}.",
                    "Return the {cs} recorded in the {b} for the {m} with {a} {cf} {v}.",
                ];
                let cn = [
                    "{a}中{cf}为{v}的{m}，其{b}中的{cs}是什么？",
                    "展示{a}的{cf}是{v}的{m}在{b}中的{cs}。",
                    "查找{a}记录{cf}等于{v}的{m}的{b}的{cs}。",
                    "请列出{a}条目{cf}为{v}的{m}在{b}中的{cs}。",
                    "需要{a}记录显示{cf}为{v}的{m}的{b}中的{cs}。",
                    "返回{a}的{cf}为{v}的{m}在{b}中记录的{cs}。",
                ];
                return Some(Draft {
                    sql,
                    question_en: fill(
                        en[p],
                        &[
                            ("m", &m.desc_en),
                            ("a", &a.desc_en),
                            ("cf", &a.columns[fi].desc_en),
                            ("v", &vs),
                            ("cs", &b.columns[si].desc_en),
                            ("b", &b.desc_en),
                        ],
                    ),
                    question_cn: fill(
                        cn[p],
                        &[
                            ("m", &m.desc_cn),
                            ("a", &a.desc_cn),
                            ("cf", &a.columns[fi].desc_cn),
                            ("v", &vs),
                            ("cs", &b.columns[si].desc_cn),
                            ("b", &b.desc_cn),
                        ],
                    ),
                    archetype: "three_join",
                    phrasing: p,
                    tables: vec![a.name.clone(), m.name.clone(), b.name.clone()],
                    columns: vec![
                        (b.name.clone(), b.columns[si].name.clone()),
                        (a.name.clone(), a.columns[a_fk_col].name.clone()),
                        (m.name.clone(), m.columns[m_key_idx].name.clone()),
                        (b.name.clone(), b.columns[b_fk_col].name.clone()),
                        (a.name.clone(), a.columns[fi].name.clone()),
                    ],
                });
            }
        }
        None
    }
}

/// A resolved fact→master join.
struct JoinPair {
    fact: usize,
    master: usize,
    fact_fk_col: usize,
    master_key_col: usize,
    fact_roles: Roles,
    master_roles: Roles,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::populate;
    use rand::SeedableRng;

    fn ctx_for(db: DbId) -> GeneratedDb {
        populate(db, 7)
    }

    #[test]
    fn every_archetype_instantiates_on_every_db() {
        for db in DbId::ALL {
            let gdb = ctx_for(db);
            let ctx = TemplateCtx::new(db, &gdb);
            let mut rng = StdRng::seed_from_u64(11);
            for &a in ARCHETYPES {
                // The macro database has a single foreign key, so no
                // three-table chain exists there — that archetype is
                // legitimately absent from macro questions.
                if db == DbId::Macro && a == "three_join" {
                    continue;
                }
                let mut ok = false;
                for _ in 0..30 {
                    if ctx.instantiate(a, 0, &mut rng).is_some() {
                        ok = true;
                        break;
                    }
                }
                assert!(ok, "archetype {a} never instantiated on {db}");
            }
        }
    }

    #[test]
    fn generated_sql_parses_and_executes() {
        let gdb = ctx_for(DbId::Fund);
        let ctx = TemplateCtx::new(DbId::Fund, &gdb);
        let mut rng = StdRng::seed_from_u64(23);
        let mut executed = 0;
        for &a in ARCHETYPES {
            for p in 0..PHRASINGS {
                if let Some(d) = ctx.instantiate(a, p, &mut rng) {
                    sqlkit::parse_statement(&d.sql)
                        .unwrap_or_else(|e| panic!("{a} produced unparseable SQL {:?}: {e}", d.sql));
                    sqlengine::run_sql(&gdb.db, &d.sql)
                        .unwrap_or_else(|e| panic!("{a} produced unexecutable SQL {:?}: {e}", d.sql));
                    executed += 1;
                }
            }
        }
        assert!(executed > 80, "only {executed} drafts executed");
    }

    #[test]
    fn questions_mention_slot_descriptions() {
        let gdb = ctx_for(DbId::Stock);
        let ctx = TemplateCtx::new(DbId::Stock, &gdb);
        let mut rng = StdRng::seed_from_u64(3);
        let d = loop {
            if let Some(d) = ctx.instantiate("filter_select", 0, &mut rng) {
                break d;
            }
        };
        // The question must carry lexical signal about the gold columns.
        assert!(!d.question_en.is_empty());
        assert!(d.question_en.contains("whose"));
        assert!(!d.question_cn.is_empty());
    }

    #[test]
    fn phrasings_differ() {
        let gdb = ctx_for(DbId::Fund);
        let ctx = TemplateCtx::new(DbId::Fund, &gdb);
        let mut rng = StdRng::seed_from_u64(5);
        let a = ctx.instantiate("count_filter", 0, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let b = ctx.instantiate("count_filter", 1, &mut rng).unwrap();
        assert_eq!(a.sql, b.sql, "same seed must give same slots");
        assert_ne!(a.question_en, b.question_en, "different phrasings must differ");
    }

    #[test]
    fn gold_metadata_is_consistent_with_sql() {
        let gdb = ctx_for(DbId::Fund);
        let ctx = TemplateCtx::new(DbId::Fund, &gdb);
        let mut rng = StdRng::seed_from_u64(9);
        for &a in ARCHETYPES {
            if let Some(d) = ctx.instantiate(a, 0, &mut rng) {
                for t in &d.tables {
                    assert!(
                        d.sql.contains(t.as_str()),
                        "{a}: gold table {t} missing from SQL {}",
                        d.sql
                    );
                }
                for (_, c) in &d.columns {
                    assert!(
                        d.sql.to_lowercase().contains(&c.to_lowercase()),
                        "{a}: gold column {c} missing from SQL {}",
                        d.sql
                    );
                }
            }
        }
    }
}
