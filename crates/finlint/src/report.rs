//! The machine-readable report (`results/FINLINT.json`), written by
//! hand — no serde in the offline image for this crate.

use crate::lints::Finding;
use crate::Analysis;
use std::collections::BTreeMap;

/// Renders the full analysis as pretty-printed JSON.
pub fn to_json(analysis: &Analysis) -> String {
    let mut by_lint: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &analysis.findings {
        *by_lint.entry(f.lint.id()).or_insert(0) += 1;
    }
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"finlint\",\n  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", analysis.files_scanned));
    out.push_str(&format!("  \"findings_total\": {},\n", analysis.findings.len()));
    out.push_str(&format!("  \"baselined_total\": {},\n", analysis.baselined.len()));
    out.push_str("  \"findings_by_lint\": {");
    let mut first = true;
    for (lint, n) in &by_lint {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {}: {n}", json_str(lint)));
    }
    out.push_str(if by_lint.is_empty() { "},\n" } else { "\n  },\n" });
    out.push_str("  \"findings\": [");
    render_findings(&mut out, &analysis.findings);
    out.push_str("],\n  \"baselined\": [");
    render_findings(&mut out, &analysis.baselined);
    out.push_str("]\n}\n");
    out
}

fn render_findings(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"excerpt\": {}}}",
            json_str(f.lint.id()),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            json_str(&f.excerpt)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Lint;

    #[test]
    fn json_escapes_and_counts() {
        let analysis = Analysis {
            files_scanned: 2,
            findings: vec![Finding {
                lint: Lint::PanicHygiene,
                path: "a/b.rs".into(),
                line: 7,
                message: "say \"why\"".into(),
                excerpt: "x.unwrap();\t// soon".into(),
            }],
            baselined: vec![],
        };
        let j = to_json(&analysis);
        assert!(j.contains("\"findings_total\": 1"));
        assert!(j.contains("\\\"why\\\""));
        assert!(j.contains("\\t"));
        assert!(j.contains("\"panic/hygiene\": 1"));
    }

    #[test]
    fn empty_report_is_valid_shape() {
        let j = to_json(&Analysis { files_scanned: 0, findings: vec![], baselined: vec![] });
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"findings_by_lint\": {}"));
    }
}
