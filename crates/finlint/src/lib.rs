//! `finlint` — the workspace-native static-analysis pass.
//!
//! Four invariant families keep the FinSQL evaluation story honest
//! (Tables 4/5 EX numbers are only meaningful if the fast paths are
//! bitwise identical to the serial reference):
//!
//! * **determinism** — no `HashMap`/`HashSet` iteration, unordered float
//!   fold or unstable float sort in answer-affecting crates without a
//!   `// finlint: ordered` justification ([`lints::determinism`]);
//! * **fingerprint coverage** — every `FinSqlConfig` field is either
//!   pushed in `fingerprint_config` or allowlisted, and every
//!   `DbRuntime` data-state field is either mixed into
//!   `config_fingerprint` (epoch, plugin identity) or proven a pure
//!   function of fingerprinted state ([`lints::fingerprint`]);
//! * **panic hygiene** — `unwrap`/`expect`/`panic!` in library code
//!   carries an `// INVARIANT:` comment ([`lints::panics`]);
//! * **lock discipline** — no nested shard locks, `Condvar::wait` always
//!   re-checked in a loop ([`lints::locks`]).
//!
//! Run as `cargo run -p finlint` from the workspace root; CI fails on
//! any finding not recorded in `crates/finlint/finlint.baseline` and
//! uploads the machine-readable `results/FINLINT.json`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod source;

use lints::Finding;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Crates whose code can change an answer: the determinism family runs
/// over all their sources.
const ANSWER_AFFECTING_CRATES: &[&str] = &["crossenc", "simllm", "sqlkit", "sqlengine"];

/// `finsql-core` answer-affecting files (the rest of the crate is
/// harness/metrics code where e.g. metric folds are not answer-bearing).
const ANSWER_AFFECTING_CORE_FILES: &[&str] = &[
    "crates/core/src/batch.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/tinylfu.rs",
];

/// Files holding the shard-locked serving structures the lock-discipline
/// family guards.
const LOCK_DISCIPLINE_FILES: &[&str] =
    &["crates/core/src/cache.rs", "crates/core/src/batch.rs", "crates/core/src/tinylfu.rs"];

/// Directory prefixes whose every source the lock-discipline family
/// guards: the serving front-end drives the shard-locked structures from
/// a single-threaded readiness loop and must never grow nested locking
/// or an unlooped `Condvar::wait`.
const LOCK_DISCIPLINE_DIRS: &[&str] = &["crates/serve/src/"];

/// The file defining `FinSqlConfig` + `fingerprint_config` (and
/// `DbRuntime` + `config_fingerprint`, the data-state half of the key).
const FINGERPRINT_FILE: &str = "crates/core/src/pipeline.rs";

/// Directories under `crates/` that are not library crates (binary
/// harnesses assert/panic by design).
const NON_LIBRARY_CRATES: &[&str] = &["bench"];

/// One scanned workspace.
#[derive(Debug)]
pub struct Analysis {
    pub files_scanned: usize,
    /// Findings not matched by the baseline.
    pub findings: Vec<Finding>,
    /// Findings suppressed by the baseline.
    pub baselined: Vec<Finding>,
}

/// Scans the workspace rooted at `root` and returns all findings,
/// partitioned by the baseline loaded from
/// `crates/finlint/finlint.baseline` (a missing baseline file means an
/// empty baseline).
pub fn run_workspace(root: &Path) -> Result<Analysis, String> {
    let baseline = baseline::load(&root.join(baseline::BASELINE_REL_PATH))?;
    let mut files_scanned = 0usize;
    let mut all = Vec::new();
    for path in workspace_sources(root)? {
        let rel = rel_path(root, &path);
        let krate = crate_of(&rel);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let file = SourceFile::parse(&rel, &krate, &text);
        files_scanned += 1;
        all.extend(check_file(&file));
    }
    all.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    let (baselined, findings) =
        all.into_iter().partition(|f| baseline.suppresses(f));
    Ok(Analysis { files_scanned, findings, baselined })
}

/// Runs every applicable lint family over one parsed file.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if determinism_scope(file) {
        out.extend(lints::determinism::check(file));
    }
    if file.rel_path == FINGERPRINT_FILE {
        out.extend(lints::fingerprint::check(file));
        out.extend(lints::fingerprint::check_runtime(file));
    }
    out.extend(lints::panics::check(file));
    if lock_discipline_scope(file) {
        out.extend(lints::locks::check(file));
    }
    out
}

/// True when the determinism family applies to this file.
fn determinism_scope(file: &SourceFile) -> bool {
    ANSWER_AFFECTING_CRATES.contains(&file.krate.as_str())
        || ANSWER_AFFECTING_CORE_FILES.contains(&file.rel_path.as_str())
}

/// True when the lock-discipline family applies to this file.
fn lock_discipline_scope(file: &SourceFile) -> bool {
    LOCK_DISCIPLINE_FILES.contains(&file.rel_path.as_str())
        || LOCK_DISCIPLINE_DIRS.iter().any(|d| file.rel_path.starts_with(d))
}

/// Every library `.rs` source in the workspace: `crates/*/src/**` (minus
/// the binary harness crates) and the workspace-root `src/`. Vendored
/// dependencies, tests, examples and benches are out of scope.
fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir crates: {e}"))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() && !NON_LIBRARY_CRATES.contains(&name.as_str()) {
            crate_dirs.push(path.join("src"));
        }
    }
    crate_dirs.push(root.join("src"));
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The crate a workspace-relative path belongs to.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        Some("src") => "finsql".to_string(),
        _ => "unknown".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/sqlkit/src/lexer.rs"), "sqlkit");
        assert_eq!(crate_of("src/lib.rs"), "finsql");
    }

    #[test]
    fn determinism_scope_is_the_issue_list() {
        let mk = |rel: &str, krate: &str| SourceFile::parse(rel, krate, "");
        assert!(determinism_scope(&mk("crates/simllm/src/embed.rs", "simllm")));
        assert!(determinism_scope(&mk("crates/core/src/cache.rs", "core")));
        assert!(determinism_scope(&mk("crates/core/src/tinylfu.rs", "core")));
        assert!(!determinism_scope(&mk("crates/core/src/metrics.rs", "core")));
        assert!(!determinism_scope(&mk("crates/bull/src/datagen.rs", "bull")));
    }

    #[test]
    fn lock_scope_covers_the_serving_front_end() {
        let mk = |rel: &str, krate: &str| SourceFile::parse(rel, krate, "");
        assert!(lock_discipline_scope(&mk("crates/core/src/cache.rs", "core")));
        assert!(lock_discipline_scope(&mk("crates/serve/src/server.rs", "serve")));
        assert!(lock_discipline_scope(&mk("crates/serve/src/bin/finsqld.rs", "serve")));
        assert!(!lock_discipline_scope(&mk("crates/core/src/metrics.rs", "core")));
    }

    #[test]
    fn serve_sources_are_scanned_for_panic_hygiene() {
        // `serve` is a library crate (plus the `finsqld` binary): it is
        // NOT in NON_LIBRARY_CRATES, so every panic site there needs an
        // INVARIANT justification like the rest of the library surface.
        assert!(!NON_LIBRARY_CRATES.contains(&"serve"));
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let sources = workspace_sources(&root).expect("scan sources");
        let serve: Vec<String> = sources
            .iter()
            .map(|p| rel_path(&root, p))
            .filter(|r| r.starts_with("crates/serve/src/"))
            .collect();
        assert!(
            serve.iter().any(|r| r == "crates/serve/src/server.rs")
                && serve.iter().any(|r| r == "crates/serve/src/bin/finsqld.rs"),
            "serve sources missing from the scan: {serve:?}"
        );
    }
}
