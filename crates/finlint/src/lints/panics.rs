//! Panic-hygiene lint: in library crates, a reachable panic site takes
//! down a serving worker. Every `unwrap()`/`expect()`/`panic!`-family
//! site in non-test library code must carry an `// INVARIANT:` comment
//! (same line or the comment block directly above) stating why it cannot
//! fire; real failure paths belong in `Result`/`Option` propagation
//! instead. Test code is exempt — panicking is how tests fail.

use super::{Finding, Lint};
use crate::source::SourceFile;

const INVARIANT: &str = "INVARIANT:";

/// `(needle, what)` pairs; needles are matched against masked code.
const SITES: &[(&str, &str)] = &[
    (".unwrap()", "unwrap()"),
    (".unwrap_err()", "unwrap_err()"),
    (".expect(", "expect()"),
    ("panic!(", "panic!"),
    ("unreachable!(", "unreachable!"),
    ("todo!(", "todo!"),
    ("unimplemented!(", "unimplemented!"),
];

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..file.masked.len() {
        if file.in_test[i] {
            continue;
        }
        let code = file.code(i);
        for (needle, what) in SITES {
            if !code.contains(needle) {
                continue;
            }
            // `debug_assert`/`assert` lines are deliberate checked
            // invariants, not accidental panics — out of scope here.
            if *needle == "panic!(" && code.contains("assert") {
                continue;
            }
            if !file.justified(i, INVARIANT) {
                out.push(Finding::at(
                    Lint::PanicHygiene,
                    file,
                    i,
                    format!(
                        "`{what}` in library code without an `// INVARIANT:` justification: \
                         state why this cannot fire, or propagate the failure as \
                         `Result`/`Option`"
                    ),
                ));
            }
            break; // one finding per line is enough
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("x.rs", "k", src))
    }

    #[test]
    fn flags_bare_unwrap_and_expect() {
        let f = findings("let a = x.unwrap();\nlet b = y.expect(\"msg\");\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.lint == Lint::PanicHygiene));
    }

    #[test]
    fn invariant_comment_silences() {
        let f = findings(
            "// INVARIANT: x is Some — filled two lines above.\nlet a = x.unwrap();\nlet b = y.unwrap(); // INVARIANT: same\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = findings("let a = x.unwrap_or(0);\nlet b = y.unwrap_or_else(Vec::new);\nlet c = z.unwrap_or_default();\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn strings_do_not_count() {
        let f = findings("let s = \"call .unwrap() later\";\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let f = findings("#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
