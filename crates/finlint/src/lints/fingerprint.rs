//! Fingerprint-coverage lint: every `FinSqlConfig` field must be pushed
//! into `fingerprint_config`, or sit in the explicit
//! [`NOT_FINGERPRINTED`] allowlist with a proven reason. This turns the
//! PR 4 proptest convention ("toggling a non-answer knob keeps cache
//! keys") into a compile-gate: adding a config knob without deciding its
//! fingerprint status fails the lint.
//!
//! A second pass ([`check_runtime`]) applies the same rule to the
//! *data-state* half of the cache key: every `DbRuntime` field must
//! either feed `config_fingerprint` (like the plugin identity and the
//! [`sqlengine::DataEpoch`]) or sit in [`RUNTIME_NOT_FINGERPRINTED`]
//! with a written proof that it is a pure function of already-
//! fingerprinted state. Adding a runtime field that carries fresh data
//! state without stamping it into the fingerprint is exactly the bug
//! that lets a stale cache entry survive a live append — this lint makes
//! that a build failure instead of a silent wrong answer.

use super::{Finding, Lint};
use crate::source::SourceFile;

/// Fields that are *proven* not to affect answers and therefore legally
/// absent from the fingerprint. Each entry needs a property test pinning
/// the claim down (see `crates/core/tests/fingerprint_prop.rs`):
///
/// - `link_mode`: serial and parallel schema linking produce
///   bit-identical rankings (`link_mode_does_not_move_the_fingerprint`).
/// - `cache_policy`: the eviction/admission policy decides which entries
///   stay resident — it can turn a hit into a miss, never change an
///   answer's bytes (`cache_policy_does_not_move_the_fingerprint`, plus
///   the cross-policy differential suite in
///   `crates/core/tests/cache_policy_prop.rs`).
pub const NOT_FINGERPRINTED: &[&str] = &["link_mode", "cache_policy"];

/// `DbRuntime` fields legally absent from `config_fingerprint` because
/// they are pure functions of state that *is* fingerprinted — rebuild
/// them from the same inputs and you get the same artifact, so they can
/// never make two fingerprint-equal systems answer differently:
///
/// - `schema`, `views`, `link_matrix`: derived from the immutable
///   database catalog (fixed per `DbId`, which is fingerprinted).
/// - `matrix`, `proto_index`: derived from the plugin's prototypes
///   (the plugin identity is fingerprinted).
/// - `values`: derived from row data — covered by `epoch`, which
///   advances on every append (`FinSql::absorb_appends` refreshes both
///   together; `crates/core/tests/live_equality.rs` proves the pairing).
pub const RUNTIME_NOT_FINGERPRINTED: &[&str] =
    &["schema", "views", "values", "matrix", "link_matrix", "proto_index"];

/// Checks fingerprint coverage of the config struct/fn in `file` (the
/// real pass hands this `crates/core/src/pipeline.rs`; fixture tests
/// hand it synthetic copies).
pub fn check(file: &SourceFile) -> Vec<Finding> {
    check_named(file, "FinSqlConfig", "fingerprint_config", "config", NOT_FINGERPRINTED)
}

/// Checks data-state fingerprint coverage: every `DbRuntime` field is
/// either accessed in `config_fingerprint` (as `rt.<field>`) or
/// allowlisted in [`RUNTIME_NOT_FINGERPRINTED`].
pub fn check_runtime(file: &SourceFile) -> Vec<Finding> {
    check_named(file, "DbRuntime", "config_fingerprint", "rt", RUNTIME_NOT_FINGERPRINTED)
}

/// [`check`] with configurable struct/fn/accessor names and allowlist,
/// for the runtime pass and for fixtures.
pub fn check_named(
    file: &SourceFile,
    struct_name: &str,
    fn_name: &str,
    accessor: &str,
    allowlist: &[&str],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some((fields, struct_line)) = struct_fields(file, struct_name) else {
        out.push(Finding {
            lint: Lint::FingerprintCoverage,
            path: file.rel_path.clone(),
            line: 1,
            message: format!("struct `{struct_name}` not found — fingerprint lint cannot run"),
            excerpt: String::new(),
        });
        return out;
    };
    let Some(body) = fn_body(file, fn_name) else {
        out.push(Finding {
            lint: Lint::FingerprintCoverage,
            path: file.rel_path.clone(),
            line: 1,
            message: format!("fn `{fn_name}` not found — fingerprint lint cannot run"),
            excerpt: String::new(),
        });
        return out;
    };
    for (name, line0) in &fields {
        let pushed = accesses_field(&body, accessor, name);
        let allowlisted = allowlist.contains(&name.as_str());
        if pushed && allowlisted {
            out.push(Finding::at(
                Lint::FingerprintCoverage,
                file,
                *line0,
                format!(
                    "`{struct_name}::{name}` is fingerprinted but also in the allowlist — \
                     remove the stale allowlist entry"
                ),
            ));
        } else if !pushed && !allowlisted {
            out.push(Finding::at(
                Lint::FingerprintCoverage,
                file,
                *line0,
                format!(
                    "`{struct_name}::{name}` is neither pushed in `{fn_name}` nor in the \
                     allowlist: an un-fingerprinted field silently reuses stale cache \
                     entries when it changes. Push it (fixed-width slot) or prove it \
                     answer-neutral and allowlist it"
                ),
            ));
        }
    }
    for entry in allowlist {
        if !fields.iter().any(|(n, _)| n == entry) {
            out.push(Finding::at(
                Lint::FingerprintCoverage,
                file,
                struct_line,
                format!(
                    "the allowlist names `{entry}`, which is not a `{struct_name}` \
                     field — remove the stale entry"
                ),
            ));
        }
    }
    out
}

/// True when `body` contains `<accessor>.<name>` with `<name>` as a
/// whole identifier (so field `cot` does not match `config.cot_x`, while
/// `rt.plugin` still matches through `rt.plugin.name`).
fn accesses_field(body: &str, accessor: &str, name: &str) -> bool {
    let needle = format!("{accessor}.{name}");
    let mut from = 0usize;
    while let Some(p) = body[from..].find(&needle) {
        let end = from + p + needle.len();
        let boundary = body[end..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

/// Field names (with 0-based lines) of the named struct: lines one brace
/// level inside the struct matching `pub? name: Type`.
fn struct_fields(file: &SourceFile, struct_name: &str) -> Option<(Vec<(String, usize)>, usize)> {
    let open = (0..file.masked.len()).find(|&i| {
        let c = file.code(i);
        !file.in_test[i] && c.contains(&format!("struct {struct_name}")) && c.contains('{')
    })?;
    let base = file.depth_at[open];
    let mut fields = Vec::new();
    let mut i = open + 1;
    while i < file.masked.len() && file.depth_at[i] > base {
        let code = file.code(i);
        // Only direct fields (depth base+1), not nested braces.
        if file.depth_at[i] == base + 1 {
            let t = code.trim_start();
            let t = t.strip_prefix("pub ").unwrap_or(t);
            if let Some(colon) = t.find(':') {
                let name = t[..colon].trim();
                if !name.is_empty()
                    && !t.starts_with('#')
                    && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                {
                    fields.push((name.to_string(), i));
                }
            }
        }
        i += 1;
    }
    Some((fields, open))
}

/// The concatenated masked body of the named fn.
fn fn_body(file: &SourceFile, fn_name: &str) -> Option<String> {
    let sig = (0..file.masked.len()).find(|&i| {
        !file.in_test[i] && file.code(i).contains(&format!("fn {fn_name}("))
    })?;
    // Find the line the body opens on (the signature may span lines).
    let mut open = sig;
    while open < file.masked.len() && !file.code(open).contains('{') {
        open += 1;
    }
    let base = file.depth_at[open];
    let mut body = String::new();
    let mut i = open;
    loop {
        body.push_str(file.code(i));
        body.push(' ');
        let mut depth = file.depth_at[i];
        for c in file.code(i).chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        i += 1;
        if i >= file.masked.len() || (i > open && depth <= base) {
            break;
        }
    }
    Some(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COVERED: &str = "\
pub struct FinSqlConfig {
    pub k_tables: usize,
    pub link_mode: InferenceMode,
    pub cache_policy: CachePolicy,
}
pub fn fingerprint_config(b: FingerprintBuilder, config: &FinSqlConfig) -> FingerprintBuilder {
    b.push_usize(config.k_tables)
}
";

    #[test]
    fn covered_struct_is_clean() {
        let f = check(&SourceFile::parse("p.rs", "core", COVERED));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_field_is_flagged() {
        let src = COVERED.replace("pub k_tables: usize,", "pub k_tables: usize,\n    pub rogue: u8,");
        let f = check(&SourceFile::parse("p.rs", "core", &src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("rogue"));
    }

    #[test]
    fn allowlisted_but_pushed_is_stale() {
        let src = COVERED.replace(
            "b.push_usize(config.k_tables)",
            "b.push_usize(config.k_tables).push_usize(config.link_mode as usize)",
        );
        let f = check(&SourceFile::parse("p.rs", "core", &src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("stale"));
    }

    #[test]
    fn missing_struct_reports() {
        let f = check(&SourceFile::parse("p.rs", "core", "fn nothing() {}\n"));
        assert_eq!(f.len(), 1);
    }
}
