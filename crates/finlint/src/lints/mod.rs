//! The four lint families and their shared finding model.

pub mod determinism;
pub mod fingerprint;
pub mod locks;
pub mod panics;

use crate::source::SourceFile;

/// Stable identifier of one lint rule, used in reports and baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Iterating a `HashMap`/`HashSet` in answer-affecting code.
    HashIteration,
    /// Float (or untyped) `.sum()`/`.product()` reductions.
    FloatReduction,
    /// `sort_unstable*` over float keys.
    UnstableFloatSort,
    /// Iterating a posting-list collection instead of indexing it by
    /// sorted interned term ids.
    PostingIteration,
    /// `FinSqlConfig` field neither fingerprinted nor allowlisted.
    FingerprintCoverage,
    /// `unwrap`/`expect`/`panic!`-family without an `// INVARIANT:`.
    PanicHygiene,
    /// A second lock acquired while a shard-lock guard is live.
    NestedLock,
    /// `Condvar::wait` not re-checked inside a `while`/`loop`.
    WaitNotInLoop,
}

impl Lint {
    /// The report identifier, `family/rule`.
    pub fn id(self) -> &'static str {
        match self {
            Lint::HashIteration => "determinism/hash-iteration",
            Lint::FloatReduction => "determinism/float-reduction",
            Lint::UnstableFloatSort => "determinism/unstable-float-sort",
            Lint::PostingIteration => "determinism/posting-iteration",
            Lint::FingerprintCoverage => "fingerprint/coverage",
            Lint::PanicHygiene => "panic/hygiene",
            Lint::NestedLock => "lock/nested",
            Lint::WaitNotInLoop => "lock/wait-not-in-loop",
        }
    }

    /// The justification tag that silences the lint at a specific site,
    /// if the family admits one.
    pub fn justification(self) -> Option<&'static str> {
        match self {
            Lint::HashIteration
            | Lint::FloatReduction
            | Lint::UnstableFloatSort
            | Lint::PostingIteration => {
                Some("finlint: ordered")
            }
            Lint::PanicHygiene | Lint::NestedLock => Some("INVARIANT:"),
            Lint::FingerprintCoverage | Lint::WaitNotInLoop => None,
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: Lint,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// The trimmed source line, for baseline matching and the report.
    pub excerpt: String,
}

impl Finding {
    pub fn at(lint: Lint, file: &SourceFile, line0: usize, message: String) -> Finding {
        Finding {
            lint,
            path: file.rel_path.clone(),
            line: line0 + 1,
            message,
            excerpt: file.raw.get(line0).map_or(String::new(), |l| l.trim().to_string()),
        }
    }
}
