//! Determinism lints: the answer path must be a pure function of
//! `(question, database, config)` — no iteration order, float fold order
//! or tie-breaking may depend on process-level randomness.
//!
//! Three rules, scoped to the answer-affecting crates:
//!
//! 1. **hash-iteration** — iterating a `HashMap`/`HashSet` (`for … in`,
//!    `.iter()`, `.keys()`, `.values()`, `.into_iter()`, `.drain()`)
//!    observes `RandomState` order, which differs per process. Sites
//!    whose result is genuinely order-independent (counts, sums into
//!    order-insensitive structures, maps drained into a sorted `Vec`)
//!    carry a `// finlint: ordered` justification saying why.
//! 2. **float-reduction** — `.sum()`/`.product()` folds: float addition
//!    is non-associative, so the fold order must be fixed and asserted
//!    with `// finlint: ordered`. Integer reductions are exempt, but the
//!    element type must be visible on the line (a `::<uNN/iNN/usize>`
//!    turbofish or an integer annotation) — an untyped `.sum()` is
//!    flagged until the type is spelled out.
//! 3. **unstable-float-sort** — `sort_unstable*` with a float key
//!    (`partial_cmp`/`total_cmp`/`f32`/`f64` on the line): equal keys
//!    come out in an unspecified order, so the comparator must be a
//!    total order over the *element* (not just the key) or the site must
//!    justify why ties are impossible.
//! 4. **posting-iteration** — iterating a posting-list collection (an
//!    identifier containing `posting`) directly. Inverted-index scoring
//!    accumulates floats, so the walk order over terms is part of the
//!    answer: posting lists must be *indexed* by previously sorted
//!    interned term ids (`postings[t]`), never iterated as a collection
//!    — a refactor to a keyed map would silently inherit hash order.
//!    Sites that iterate deliberately (e.g. build-time weights over a
//!    dense id-ordered `Vec`) justify with `// finlint: ordered`.

use super::{Finding, Lint};
use crate::source::{ident_before, SourceFile};

const ORDERED: &str = "finlint: ordered";

/// Method calls that observe a hash collection's iteration order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".into_keys()",
    ".values()",
    ".values_mut()",
    ".into_values()",
    ".drain(",
];

/// Integer turbofish types whose `.sum()` is order-independent.
const INT_TYPES: &[&str] = &[
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let tracked = hash_bindings(file);
    let mut out = Vec::new();
    for i in 0..file.masked.len() {
        if file.in_test[i] {
            continue;
        }
        let code = file.code(i).to_string();
        hash_iteration(file, i, &code, &tracked, &mut out);
        float_reduction(file, i, &code, &mut out);
        unstable_float_sort(file, i, &code, &mut out);
        posting_iteration(file, i, &code, &mut out);
    }
    out
}

/// Collects identifiers bound to `HashMap`/`HashSet` values in this
/// file: `let` bindings (by annotation or initializer), struct fields
/// and fn parameters (`name: …HashMap<…>`). Tracking is name-based and
/// file-local — a line-level approximation that errs toward flagging.
fn hash_bindings(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    let is_hashy = |s: &str| {
        s.contains("HashMap<")
            || s.contains("HashSet<")
            || s.contains("HashMap::")
            || s.contains("HashSet::")
    };
    for i in 0..file.masked.len() {
        if file.in_test[i] {
            continue;
        }
        let code = file.code(i);
        let trimmed = code.trim_start();
        // `let` with an initializer that names the type (the annotation
        // form is also caught by the colon scan below). Join the
        // statement in case the initializer continues on later lines.
        if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !name.is_empty() {
                let mut stmt = code.to_string();
                let mut j = i;
                while !stmt.contains(';') && !stmt.contains('{') && j + 1 < file.masked.len() && j - i < 8 {
                    j += 1;
                    stmt.push(' ');
                    stmt.push_str(file.code(j));
                }
                // A `{` opens a block/struct initializer: anything past it
                // (e.g. a nested `let idx: HashMap<…>` inside an `if`
                // block) describes a different binding, not this one.
                let stmt = stmt.split('{').next().unwrap_or(&stmt);
                if is_hashy(stmt) {
                    names.push(name);
                }
            }
        }
        // Annotation form anywhere on the line (fields, params, lets):
        // for each `HashMap<`/`HashSet<`, walk left to the single `:`
        // that annotates it and take the identifier before it.
        for needle in ["HashMap<", "HashSet<"] {
            let mut from = 0usize;
            while let Some(p) = code[from..].find(needle) {
                let pos = from + p;
                from = pos + needle.len();
                if let Some(name) = annotated_ident(code, pos) {
                    names.push(name);
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Walks left from a type position to the `name:` annotating it. Aborts
/// on any structural char (`>` `)` `,` `(` `{` `;` `=`) so a return-type
/// `-> HashMap<..>` or a bare expression does not bind a name, and skips
/// `::` path separators.
fn annotated_ident(code: &str, type_pos: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = type_pos;
    while i > 0 {
        i -= 1;
        match bytes[i] {
            b':' => {
                if i > 0 && bytes[i - 1] == b':' {
                    i -= 1; // path separator, keep walking
                    continue;
                }
                let head = code[..i].trim_end();
                let name: String = head
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                return if name.is_empty() || name.chars().next().is_some_and(|c| c.is_numeric()) {
                    None
                } else {
                    Some(name)
                };
            }
            b'>' | b')' | b',' | b'(' | b'{' | b';' | b'=' => return None,
            _ => {}
        }
    }
    None
}

fn hash_iteration(
    file: &SourceFile,
    i: usize,
    code: &str,
    tracked: &[String],
    out: &mut Vec<Finding>,
) {
    let mut hit: Option<String> = None;
    for m in ITER_METHODS {
        let mut from = 0usize;
        while let Some(p) = code[from..].find(m) {
            let pos = from + p;
            if let Some(recv) = ident_before(code, pos) {
                if tracked.iter().any(|t| t == recv) {
                    hit = Some(format!("{recv}{}", m.trim_end_matches('(')));
                }
            }
            from = pos + m.len();
        }
    }
    // `for x in map` / `for x in &map` / `for x in &self.map`: the
    // method forms are covered above; catch the bare-path form.
    if hit.is_none() && code.trim_start().starts_with("for ") {
        if let Some(p) = code.find(" in ") {
            let tail = code[p + 4..].trim_start().trim_start_matches('&');
            let tail = tail.trim_start_matches("mut ");
            let path: String =
                tail.chars().take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.').collect();
            let after = &tail[path.len()..];
            let is_bare = after.trim_start().starts_with('{') || after.trim().is_empty();
            let name = path.rsplit('.').next().unwrap_or("");
            if is_bare && tracked.iter().any(|t| t == name) {
                hit = Some(format!("for … in {path}"));
            }
        }
    }
    if let Some(what) = hit {
        if !file.justified(i, ORDERED) {
            out.push(Finding::at(
                Lint::HashIteration,
                file,
                i,
                format!(
                    "`{what}` iterates a HashMap/HashSet in answer-affecting code; \
                     iteration order is per-process random. Sort the results or justify \
                     order-independence with `// finlint: ordered — <why>`"
                ),
            ));
        }
    }
}

fn float_reduction(file: &SourceFile, i: usize, code: &str, out: &mut Vec<Finding>) {
    for needle in [".sum", ".product"] {
        let mut from = 0usize;
        while let Some(p) = code[from..].find(needle) {
            let pos = from + p;
            from = pos + needle.len();
            let after = &code[pos + needle.len()..];
            // `.sum()` or `.sum::<T>()`; skip `.sum_of` style idents.
            let turbofish = after.strip_prefix("::<");
            if !(after.starts_with('(') || turbofish.is_some()) {
                continue;
            }
            if let Some(t) = turbofish {
                let ty: String =
                    t.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
                if INT_TYPES.contains(&ty.as_str()) {
                    continue; // integer fold: order-independent
                }
            } else if !code.contains("f32") && !code.contains("f64") {
                // No turbofish and no float annotation in sight: the
                // element type is invisible at this site. Require it to
                // be spelled out (or justified) so integer sums are
                // provably integer.
                if !file.justified(i, ORDERED) {
                    out.push(Finding::at(
                        Lint::FloatReduction,
                        file,
                        i,
                        format!(
                            "untyped `{needle}()` in answer-affecting code: spell the element \
                             type (`{needle}::<usize>()` for integers) or justify the fold \
                             order with `// finlint: ordered — <why>`"
                        ),
                    ));
                }
                continue;
            }
            // Float fold (float turbofish or f32/f64 annotation).
            if !file.justified(i, ORDERED) {
                out.push(Finding::at(
                    Lint::FloatReduction,
                    file,
                    i,
                    format!(
                        "float `{needle}()` fold in answer-affecting code: float addition is \
                         non-associative, so the fold order must be fixed — justify with \
                         `// finlint: ordered — <why the iteration order is deterministic>`"
                    ),
                ));
            }
        }
    }
}

fn unstable_float_sort(file: &SourceFile, i: usize, code: &str, out: &mut Vec<Finding>) {
    if !code.contains("sort_unstable") {
        return;
    }
    let floaty = code.contains("partial_cmp")
        || code.contains("total_cmp")
        || code.contains("f32")
        || code.contains("f64");
    if floaty && !file.justified(i, ORDERED) {
        out.push(Finding::at(
            Lint::UnstableFloatSort,
            file,
            i,
            "`sort_unstable*` over float keys in answer-affecting code: equal keys come out \
             in unspecified order. Use a total order over the element, a stable sort, or \
             justify tie-impossibility with `// finlint: ordered — <why>`"
                .to_string(),
        ));
    }
}

/// Posting-list collections feed float vote accumulation, so their walk
/// order is answer-affecting: flag any direct iteration of an identifier
/// containing `posting` (method form or bare `for … in`). Indexed access
/// (`postings[t]`, `postings.get(t)`) driven by a sorted term list is
/// the sanctioned shape and stays quiet.
fn posting_iteration(file: &SourceFile, i: usize, code: &str, out: &mut Vec<Finding>) {
    let is_posting = |name: &str| name.to_ascii_lowercase().contains("posting");
    let mut hit: Option<String> = None;
    for m in ITER_METHODS {
        let mut from = 0usize;
        while let Some(p) = code[from..].find(m) {
            let pos = from + p;
            if let Some(recv) = ident_before(code, pos) {
                if is_posting(recv) {
                    hit = Some(format!("{recv}{}", m.trim_end_matches('(')));
                }
            }
            from = pos + m.len();
        }
    }
    if hit.is_none() && code.trim_start().starts_with("for ") {
        if let Some(p) = code.find(" in ") {
            let tail = code[p + 4..].trim_start().trim_start_matches('&');
            let tail = tail.trim_start_matches("mut ");
            let path: String = tail
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
                .collect();
            let name = path.rsplit('.').next().unwrap_or("");
            if is_posting(name) {
                hit = Some(format!("for … in {path}"));
            }
        }
    }
    if let Some(what) = hit {
        if !file.justified(i, ORDERED) {
            out.push(Finding::at(
                Lint::PostingIteration,
                file,
                i,
                format!(
                    "`{what}` iterates a posting-list collection; inverted-index scoring \
                     accumulates floats, so postings must be indexed by sorted interned term \
                     ids (`postings[t]`), not walked as a collection. Justify a deliberate \
                     id-ordered sweep with `// finlint: ordered — <why>`"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("x.rs", "k", src))
    }

    #[test]
    fn flags_hashmap_iteration() {
        let f = findings("let mut m: HashMap<String, u32> = HashMap::new();\nfor (k, v) in m.iter() { use_it(k, v); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::HashIteration);
    }

    #[test]
    fn justified_iteration_is_quiet() {
        let f = findings("let m = HashMap::<u32, u32>::new();\n// finlint: ordered — count only\nlet n = m.keys().count();\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lookups_are_not_iteration() {
        let f = findings("let mut m: HashMap<u32, u32> = HashMap::new();\nm.insert(1, 2);\nlet v = m.get(&1);\nlet has = m.contains_key(&1);\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_untyped_and_float_sums_not_integer() {
        let f = findings("let a: f32 = xs.iter().map(|x| x * x).sum();\n");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = findings("let a = xs.iter().map(Vec::len).sum::<usize>();\n");
        assert!(f.is_empty(), "{f:?}");
        let f = findings("let a = xs.iter().map(|x| x.n).sum();\n");
        assert_eq!(f.len(), 1, "untyped sum must be flagged: {f:?}");
    }

    #[test]
    fn flags_unstable_float_sort_only() {
        let f = findings("v.sort_unstable_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Less));\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::UnstableFloatSort);
        let f = findings("v.sort_unstable_by_key(|(i, _)| *i);\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn nested_hash_binding_does_not_taint_outer_vec() {
        // The HashMap inside the block initializer binds `index`, not
        // `groups`; iterating the Vec must stay quiet.
        let src = "let groups: Vec<Vec<u32>> = {\n    let mut index: HashMap<u32, usize> = HashMap::new();\n    index.insert(1, 0);\n    Vec::new()\n};\nfor group in groups { use_it(group); }\n";
        let f = findings(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_posting_collection_iteration() {
        let f = findings("for list in self.postings.iter() { score(list); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, Lint::PostingIteration);
        let f = findings("for list in postings { score(list); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, Lint::PostingIteration);
    }

    #[test]
    fn indexed_posting_access_is_the_sanctioned_shape() {
        let f = findings(
            "let list = self.postings.get(t as usize);\nlet w = postings[t as usize].len();\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn justified_posting_sweep_is_quiet() {
        let f = findings(
            "// finlint: ordered — dense Vec indexed by interned id, build-time only\n\
             let weights: Vec<f32> = postings.iter().map(|p| 1.0 / p.len() as f32).collect();\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = findings("#[cfg(test)]\nmod tests {\n    fn t() { let m: HashMap<u8,u8> = HashMap::new(); for x in m.iter() {} }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
