//! Lock-discipline lints for the serving-layer concurrency files
//! (`AnswerCache`, `BatchScheduler`):
//!
//! 1. **nested-lock** — acquiring any lock while a `let`-bound lock
//!    guard is still live. The cache is lock-striped exactly so no path
//!    ever holds two shard locks; a nested acquisition is a deadlock
//!    waiting for the right interleaving. Temporary guards
//!    (`x.lock().field` in one expression) are not tracked — they die at
//!    the end of the statement and cannot deadlock with themselves.
//! 2. **wait-not-in-loop** — every `Condvar::wait`/`wait_timeout` must
//!    sit inside a `while`/`loop` re-checking its predicate: condvars
//!    have spurious wakeups, and `notify_all` races mean the predicate
//!    may already be consumed by another thread when the waiter runs.

use super::{Finding, Lint};
use crate::source::SourceFile;

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    nested_locks(file, &mut out);
    wait_in_loop(file, &mut out);
    out
}

/// A live `let`-bound guard.
struct Guard {
    name: String,
    depth: i32,
}

fn nested_locks(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut guards: Vec<Guard> = Vec::new();
    for i in 0..file.masked.len() {
        if file.in_test[i] {
            guards.clear();
            continue;
        }
        let code = file.code(i).to_string();
        let mut depth = file.depth_at[i];
        // Drop guards whose scope closed before this line.
        guards.retain(|g| g.depth <= depth);
        let trimmed = code.trim_start();
        let let_guard = trimmed.strip_prefix("let ").map(|rest| {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect::<String>()
        });
        if code.contains(".lock(") {
            if let Some(live) = guards.last() {
                if !file.justified(i, "INVARIANT:") {
                    out.push(Finding::at(
                        Lint::NestedLock,
                        file,
                        i,
                        format!(
                            "lock acquired while guard `{}` is still held (taken at a shard \
                             lock above): nested shard-lock acquisition can deadlock. Drop \
                             the guard first (scope it or `drop()` it)",
                            live.name
                        ),
                    ));
                }
            }
            if let Some(name) = let_guard {
                if !name.is_empty() {
                    guards.push(Guard { name, depth });
                }
            }
        }
        // `drop(guard)` releases explicitly.
        let mut from = 0usize;
        while let Some(p) = code[from..].find("drop(") {
            let pos = from + p;
            from = pos + 5;
            let inner: String = code[pos + 5..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            guards.retain(|g| g.name != inner);
        }
        // Track depth across the line so same-line `{ … }` blocks work.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
    }
}

fn wait_in_loop(file: &SourceFile, out: &mut Vec<Finding>) {
    // Stack of block openers: (depth the block's body runs at, looping?).
    let mut blocks: Vec<(i32, bool)> = Vec::new();
    for i in 0..file.masked.len() {
        let code = file.code(i).to_string();
        let mut depth = file.depth_at[i];
        while blocks.last().is_some_and(|(d, _)| *d > depth) {
            blocks.pop();
        }
        if !file.in_test[i] {
            for needle in [".wait(", ".wait_timeout("] {
                let mut from = 0usize;
                while let Some(p) = code[from..].find(needle) {
                    let pos = from + p;
                    from = pos + needle.len();
                    // `slot.wait()` (no args) is not a condvar wait — a
                    // condvar wait consumes a guard argument.
                    if code[pos + needle.len()..].trim_start().starts_with(')') {
                        continue;
                    }
                    let in_loop = blocks.iter().any(|(_, looping)| *looping);
                    if !in_loop {
                        out.push(Finding::at(
                            Lint::WaitNotInLoop,
                            file,
                            i,
                            "`Condvar::wait` outside a `while`/`loop`: spurious wakeups and \
                             notify races mean the predicate must be re-checked in a loop \
                             around the wait"
                                .to_string(),
                        ));
                    }
                }
            }
        }
        // Record blocks opened on this line. A fn boundary resets the
        // loop context (blocks above the fn cannot catch its waits).
        let t = code.trim_start();
        let mut opener_looping =
            t.starts_with("while ") || t.starts_with("while(") || t == "loop {" || t.starts_with("loop {");
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    let is_fn = t.starts_with("fn ")
                        || t.starts_with("pub fn ")
                        || t.contains(") -> ")
                        || t.starts_with("impl ");
                    if is_fn {
                        blocks.clear();
                    }
                    blocks.push((depth, opener_looping));
                    opener_looping = false; // only the first block on the line
                }
                '}' => {
                    depth -= 1;
                    while blocks.last().is_some_and(|(d, _)| *d > depth) {
                        blocks.pop();
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("x.rs", "k", src))
    }

    #[test]
    fn nested_lock_is_flagged() {
        let f = findings(
            "fn f(&self) {\n    let mut a = self.shards[0].lock();\n    let b = self.shards[1].lock();\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, Lint::NestedLock);
    }

    #[test]
    fn dropped_guard_allows_second_lock() {
        let f = findings(
            "fn f(&self) {\n    let a = self.shards[0].lock();\n    drop(a);\n    let b = self.shards[1].lock();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scoped_guard_allows_second_lock() {
        let f = findings(
            "fn f(&self) {\n    {\n        let a = self.q.lock();\n    }\n    let b = self.q.lock();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn temporary_lock_is_not_a_guard() {
        let f = findings(
            "fn f(&self) -> usize {\n    self.shards.iter().map(|s| s.lock().map.len()).sum::<usize>()\n}\n",
        );
        assert!(f.iter().all(|f| f.lint != Lint::NestedLock), "{f:?}");
    }

    #[test]
    fn wait_outside_loop_is_flagged() {
        let f = findings(
            "fn f(&self) {\n    let mut g = self.m.lock();\n    if !*g {\n        g = self.cv.wait(g);\n    }\n}\n",
        );
        assert!(f.iter().any(|f| f.lint == Lint::WaitNotInLoop), "{f:?}");
    }

    #[test]
    fn wait_inside_while_is_clean() {
        let f = findings(
            "fn f(&self) {\n    let mut g = self.m.lock();\n    while !*g {\n        g = self.cv.wait(g);\n    }\n}\n",
        );
        assert!(f.iter().all(|f| f.lint != Lint::WaitNotInLoop), "{f:?}");
    }

    #[test]
    fn slot_wait_without_args_is_not_condvar() {
        let f = findings("fn f(&self) {\n    let a = slot.wait();\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
