//! CLI: `cargo run -p finlint [-- --root DIR --json PATH --write-baseline --quiet]`
//!
//! Exit codes: 0 clean (or fully baselined), 1 unbaselined findings,
//! 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    json: Option<PathBuf>,
    write_baseline: bool,
    quiet: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: workspace_root(),
        json: None, // defaults to <root>/results/FINLINT.json
        write_baseline: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(
                    args.next().ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--json" => {
                opts.json = Some(PathBuf::from(
                    args.next().ok_or_else(|| "--json needs a path".to_string())?,
                ));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => {
                println!(
                    "finlint — workspace invariant lints\n\n\
                     USAGE: cargo run -p finlint [-- OPTIONS]\n\n\
                     OPTIONS:\n  --root DIR         workspace root (default: auto-detected)\n  \
                     --json PATH        report path (default: results/FINLINT.json)\n  \
                     --write-baseline   rewrite the baseline from current findings\n  \
                     --quiet            suppress per-finding output"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

/// The workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(manifest)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("finlint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let analysis = finlint::run_workspace(&opts.root)?;
    // Machine-readable report.
    let json_path = opts.json.clone().unwrap_or_else(|| opts.root.join("results/FINLINT.json"));
    if let Some(dir) = json_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    std::fs::write(&json_path, finlint::report::to_json(&analysis))
        .map_err(|e| format!("write {}: {e}", json_path.display()))?;
    if opts.write_baseline {
        let all: Vec<_> =
            analysis.findings.iter().chain(&analysis.baselined).cloned().collect();
        let path = opts.root.join(finlint::baseline::BASELINE_REL_PATH);
        std::fs::write(&path, finlint::baseline::render(&all))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("finlint: baseline rewritten with {} entries at {}", all.len(), path.display());
        return Ok(ExitCode::SUCCESS);
    }
    if !opts.quiet {
        for f in &analysis.findings {
            println!("{}:{}: [{}] {}", f.path, f.line, f.lint.id(), f.message);
            if !f.excerpt.is_empty() {
                println!("    > {}", f.excerpt);
            }
        }
    }
    println!(
        "finlint: {} files scanned, {} finding(s), {} baselined — report at {}",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.baselined.len(),
        json_path.display()
    );
    if analysis.findings.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}
