//! The per-file source model the lints run over: masked lines, brace
//! depths, `#[cfg(test)]` regions and the justification-comment lookup.

use crate::lexer::{mask_source, MaskedLine};

/// One analysed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Crate the file belongs to (directory under `crates/`, or `finsql`
    /// for the workspace-root `src/`).
    pub krate: String,
    /// Raw line text, for reports and baseline hashing.
    pub raw: Vec<String>,
    /// Comment/literal-masked lines.
    pub masked: Vec<MaskedLine>,
    /// Brace depth *at the start* of each line.
    pub depth_at: Vec<i32>,
    /// True for lines inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, krate: &str, text: &str) -> SourceFile {
        let raw: Vec<String> = text.split('\n').map(str::to_string).collect();
        let masked = mask_source(text);
        let depth_at = depths(&masked);
        let in_test = test_regions(&masked, &depth_at);
        SourceFile {
            rel_path: rel_path.to_string(),
            krate: krate.to_string(),
            raw,
            masked,
            depth_at,
            in_test,
        }
    }

    /// Masked code of line `i` (0-based).
    pub fn code(&self, i: usize) -> &str {
        self.masked.get(i).map_or("", |l| l.code.as_str())
    }

    /// True when the finding on 0-based line `i` is justified by a tag:
    /// the tag may sit in a comment on the same line or in the comment
    /// block immediately above (consecutive comment-only lines).
    pub fn justified(&self, i: usize, tag: &str) -> bool {
        if self.masked[i].comment.contains(tag) {
            return true;
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            let line = &self.masked[j];
            let code_empty = line.code.trim().is_empty();
            if !code_empty {
                return false;
            }
            if line.comment.contains(tag) {
                return true;
            }
            if line.comment.is_empty() && line.code.trim().is_empty() && self.raw[j].trim().is_empty()
            {
                return false; // blank line ends the adjacent block
            }
        }
        false
    }
}

/// Brace depth at the start of each masked line.
fn depths(masked: &[MaskedLine]) -> Vec<i32> {
    let mut out = Vec::with_capacity(masked.len());
    let mut depth = 0i32;
    for line in masked {
        out.push(depth);
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    out
}

/// Marks every line inside an item gated by `#[cfg(test)]` (test modules
/// and test-only functions) — those are exempt from the lints.
fn test_regions(masked: &[MaskedLine], depth_at: &[i32]) -> Vec<bool> {
    let mut in_test = vec![false; masked.len()];
    let mut i = 0usize;
    while i < masked.len() {
        if masked[i].code.trim().starts_with("#[cfg(test)]") {
            // The gated item starts at the next non-attribute line; the
            // region runs until depth returns to the attribute's depth.
            let base = depth_at[i];
            let mut j = i;
            let mut braceless = false;
            // Find the line where the item's block opens; a `;` first
            // means a braceless item (`#[cfg(test)] use …;`) — the
            // region is just those lines.
            while j < masked.len() && !masked[j].code.contains('{') {
                in_test[j] = true;
                let done = masked[j].code.contains(';');
                j += 1;
                if done {
                    braceless = true;
                    break;
                }
            }
            if braceless {
                i = j;
                continue;
            }
            // Mark until the matching close brace.
            while j < masked.len() {
                in_test[j] = true;
                let mut depth = depth_at[j];
                for c in masked[j].code.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                j += 1;
                if depth <= base && j > i {
                    break;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Extracts the identifier immediately preceding byte offset `pos` in
/// `code` (the receiver of a method call found at `pos`), tolerating a
/// closing paren/bracket chain like `foo()` or `foo[i]`.
pub fn ident_before(code: &str, pos: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut end = pos;
    // Skip back over one bracket/paren group: receiver like `m[k]` or
    // `f()` — we want the path segment, so step over the group.
    if end > 0 && (bytes[end - 1] == b')' || bytes[end - 1] == b']') {
        let close = bytes[end - 1];
        let open = if close == b')' { b'(' } else { b'[' };
        let mut bal = 0i32;
        while end > 0 {
            end -= 1;
            if bytes[end] == close {
                bal += 1;
            } else if bytes[end] == open {
                bal -= 1;
                if bal == 0 {
                    break;
                }
            }
        }
    }
    let tail = &code[..end];
    let start = tail
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .last()
        .map(|(i, _)| i)?;
    if start == tail.len() {
        return None;
    }
    Some(&tail[start..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_detection() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::parse("x.rs", "k", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn justification_same_line_and_block_above() {
        let src = "// INVARIANT: fine\nlet a = x.unwrap();\nlet b = y.unwrap(); // INVARIANT: ok\n\nlet c = z.unwrap();\n";
        let f = SourceFile::parse("x.rs", "k", src);
        assert!(f.justified(1, "INVARIANT:"));
        assert!(f.justified(2, "INVARIANT:"));
        assert!(!f.justified(4, "INVARIANT:"));
    }

    #[test]
    fn ident_before_method() {
        let code = "for v in m.iter() {";
        let pos = code.find(".iter").unwrap();
        assert_eq!(ident_before(code, pos), Some("m"));
        let code2 = "self.map.keys()";
        assert_eq!(ident_before(code2, code2.find(".keys").unwrap()), Some("map"));
    }
}
