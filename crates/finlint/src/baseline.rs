//! The baseline (suppression) file: grandfathered findings recorded as
//! `lint-id <TAB> path <TAB> fnv64(trimmed source line)` so entries
//! survive line-number drift but die when the offending line changes.
//! Regenerate with `cargo run -p finlint -- --write-baseline`; the goal
//! state (and the shipped state) is an *empty* file — every entry is a
//! debt marker.

use crate::lints::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// Baseline location relative to the workspace root.
pub const BASELINE_REL_PATH: &str = "crates/finlint/finlint.baseline";

/// Loaded suppression set.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(String, String, u64)>,
}

impl Baseline {
    pub fn suppresses(&self, f: &Finding) -> bool {
        self.entries.contains(&(f.lint.id().to_string(), f.path.clone(), line_hash(&f.excerpt)))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// FNV-1a over the trimmed line text — stable across reformats that only
/// move the line.
pub fn line_hash(excerpt: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in excerpt.trim().as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Loads a baseline file; a missing file is an empty baseline. Lines are
/// `lint\tpath\thash-hex`, `#` starts a comment.
pub fn load(path: &Path) -> Result<Baseline, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    let mut entries = BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let (lint, path_part, hash) = (parts.next(), parts.next(), parts.next());
        let (Some(lint), Some(path_part), Some(hash)) = (lint, path_part, hash) else {
            return Err(format!("baseline line {}: expected lint\\tpath\\thash", lineno + 1));
        };
        let hash = u64::from_str_radix(hash.trim(), 16)
            .map_err(|e| format!("baseline line {}: bad hash: {e}", lineno + 1))?;
        entries.insert((lint.to_string(), path_part.to_string(), hash));
    }
    Ok(Baseline { entries })
}

/// Serialises findings as a baseline file body.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# finlint baseline — grandfathered findings, one per line:\n\
         #   lint-id<TAB>path<TAB>fnv64-of-trimmed-line (hex)\n\
         # Regenerate: cargo run -p finlint -- --write-baseline\n\
         # Every entry is debt; the target state is an empty file.\n",
    );
    let mut lines: BTreeSet<String> = BTreeSet::new();
    for f in findings {
        lines.insert(format!("{}\t{}\t{:016x}", f.lint.id(), f.path, line_hash(&f.excerpt)));
    }
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Lint;

    fn finding(path: &str, excerpt: &str) -> Finding {
        Finding {
            lint: Lint::PanicHygiene,
            path: path.to_string(),
            line: 3,
            message: String::new(),
            excerpt: excerpt.to_string(),
        }
    }

    #[test]
    fn roundtrip_suppresses() {
        let f = finding("crates/x/src/lib.rs", "let a = x.unwrap();");
        let body = render(std::slice::from_ref(&f));
        let dir = std::env::temp_dir().join("finlint-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.baseline");
        std::fs::write(&path, &body).unwrap();
        let b = load(&path).unwrap();
        assert_eq!(b.len(), 1);
        assert!(b.suppresses(&f));
        // A changed line no longer matches.
        assert!(!b.suppresses(&finding("crates/x/src/lib.rs", "let a = x?;")));
    }

    #[test]
    fn missing_file_is_empty() {
        let b = load(Path::new("/definitely/not/here.baseline")).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn hash_ignores_indentation_only() {
        assert_eq!(line_hash("  x.unwrap();  "), line_hash("x.unwrap();"));
        assert_ne!(line_hash("x.unwrap();"), line_hash("y.unwrap();"));
    }
}
