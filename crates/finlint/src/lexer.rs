//! A minimal Rust source lexer: good enough to *mask* the contents of
//! comments, string/char literals and raw strings so the line-level
//! lints never match tokens inside text, while extracting `//` comment
//! bodies for the justification-comment grammar.
//!
//! This is not a full lexer — it tracks exactly the state that can span
//! or hide tokens: `//` line comments, (nested) `/* */` block comments,
//! `"…"` strings with escapes, `r#"…"#` raw strings, byte/raw-byte
//! strings, and char literals (disambiguated from lifetimes). Everything
//! else is copied through verbatim.

/// One source line after masking: `code` has every comment and literal
/// body replaced by spaces (delimiters kept), `comment` holds the text of
/// any `//` comment starting on this line (without the slashes).
#[derive(Debug, Clone, Default)]
pub struct MaskedLine {
    pub code: String,
    pub comment: String,
}

/// Lexer state carried across lines.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    Normal,
    /// Inside `/* … */`; the payload is the nesting depth (Rust block
    /// comments nest).
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`s.
    RawStr(u32),
}

/// Masks a whole file, returning one [`MaskedLine`] per input line.
pub fn mask_source(text: &str) -> Vec<MaskedLine> {
    let mut out = Vec::new();
    let mut state = State::Normal;
    for line in text.split('\n') {
        let (masked, next) = mask_line(line, state);
        out.push(masked);
        state = next;
    }
    out
}

/// True when `c` can continue an identifier.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Masks one line starting in `state`, returning the masked line and the
/// state the next line starts in.
fn mask_line(line: &str, mut state: State) -> (MaskedLine, State) {
    let chars: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        match state {
            State::Block(depth) => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    code.push_str("  ");
                    i += 2;
                    state = if depth > 1 { State::Block(depth - 1) } else { State::Normal };
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    code.push_str("  ");
                    i += 2;
                    state = State::Block(depth + 1);
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if chars[i] == '\\' {
                    code.push_str("  ");
                    i += 2; // escape sequence: skip the escaped char too
                } else if chars[i] == '"' {
                    code.push('"');
                    i += 1;
                    state = State::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Normal => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment (incl. doc comments): rest of line.
                    comment = chars[i + 2..].iter().collect::<String>().trim().to_string();
                    break;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    code.push_str("  ");
                    i += 2;
                    state = State::Block(1);
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    i += 1;
                    state = State::Str;
                    continue;
                }
                // Raw / byte string starts: r", r#", br", b", rb is not
                // a thing; handle r and optional leading b.
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some((consumed, hashes, raw)) = string_prefix(&chars, i) {
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        code.push('"');
                        i += consumed + 1;
                        state = if raw { State::RawStr(hashes) } else { State::Str };
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime. A char literal is 'x' or
                    // an escape '\…'; a lifetime is 'ident with no
                    // closing quote right after one ident.
                    if let Some(len) = char_literal_len(&chars, i) {
                        code.push('\'');
                        for _ in 1..len {
                            code.push(' ');
                        }
                        i += len;
                        continue;
                    }
                    // Lifetime: copy through.
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
        }
    }
    // A line comment never spans lines; strings/blocks may.
    (MaskedLine { code, comment }, state)
}

/// True when the char before `i` continues an identifier (so `r` in
/// `for` is not a raw-string prefix).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident(chars[i - 1])
}

/// If a string starts at `i` with a `r`/`b`/`br` prefix, returns
/// `(prefix_len, hashes, is_raw)` where `prefix_len` counts chars before
/// the opening quote.
fn string_prefix(chars: &[char], i: usize) -> Option<(usize, u32, bool)> {
    let mut j = i;
    let mut raw = false;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    if j == i {
        return None;
    }
    let mut hashes = 0u32;
    while raw && chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j - i, hashes, raw))
    } else {
        None
    }
}

/// True when position `i` starts `hashes` consecutive `#` chars.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If a char literal starts at `i` (which holds `'`), returns its total
/// length in chars; `None` means it is a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    let next = *chars.get(i + 1)?;
    if next == '\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        if chars.get(j) == Some(&'\'') || chars.get(j) == Some(&'\\') {
            j += 1; // '\'' and '\\'
        }
        while j < chars.len() && chars[j] != '\'' {
            j += 1;
        }
        return if j < chars.len() { Some(j - i + 1) } else { None };
    }
    if next == '\'' {
        return None; // '' is not a char literal
    }
    // 'x' — a single char then a closing quote. Anything else ('static,
    // 'a) is a lifetime.
    if chars.get(i + 2) == Some(&'\'') {
        Some(3)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(s: &str) -> String {
        mask_source(s).into_iter().map(|l| l.code).collect::<Vec<_>>().join("\n")
    }

    #[test]
    fn masks_line_comments_and_extracts_text() {
        let m = mask_source("let x = 1; // finlint: ordered — count");
        assert_eq!(m[0].code, "let x = 1; ");
        assert!(m[0].comment.contains("finlint: ordered"));
    }

    #[test]
    fn masks_string_contents() {
        let input = r#"f("a.unwrap() // no")"#;
        let expected = format!("f(\"{}\")", " ".repeat("a.unwrap() // no".len()));
        assert_eq!(code(input), expected);
    }

    #[test]
    fn masks_raw_strings_across_lines() {
        let masked = code("let s = r#\"unwrap()\nstill .lock() here\"#;");
        assert!(!masked.contains("unwrap"));
        assert!(!masked.contains("lock"));
        assert!(masked.ends_with(';'));
    }

    #[test]
    fn masks_nested_block_comments() {
        let masked = code("a /* x /* y */ .unwrap() */ b");
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains('a') && masked.contains('b'));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let masked = code("fn f<'a>(x: &'a str) { g('x', \"s\") }");
        assert!(masked.contains("<'a>"));
        assert!(masked.contains("&'a str"));
        assert!(!masked.contains('x') || !masked.contains("'x'"));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let masked = code(r"let q = '\''; let n = '\n'; let u = '\u{1F600}'; done()");
        assert!(masked.contains("done()"));
    }

    #[test]
    fn byte_strings_masked() {
        let masked = code(r##"let b = b"unwrap()"; let r = br#"x"#;"##);
        assert!(!masked.contains("unwrap"));
    }
}
