//! The workspace-level gate as a test: the repo's own sources produce
//! zero unbaselined findings (and the shipped baseline is empty, so zero
//! findings at all). This is the same check CI runs via
//! `cargo run -p finlint`.

use std::path::Path;

#[test]
fn workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = finlint::run_workspace(&root).expect("scan workspace");
    assert!(analysis.files_scanned > 50, "scanned only {} files", analysis.files_scanned);
    assert!(
        analysis.findings.is_empty(),
        "unbaselined findings:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.lint.id(), f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        analysis.baselined.is_empty(),
        "the shipped baseline must stay empty — fix or justify at the source"
    );
}
