//! Fixture-driven tests: each lint family has one violation fixture
//! (every rule fires) and one clean fixture (the sanctioned forms are
//! quiet), plus the synthetic-field drill against the *real*
//! `FinSqlConfig` proving the fingerprint gate would catch a new
//! un-fingerprinted knob.

use finlint::lints::{self, Lint};
use finlint::source::SourceFile;
use std::path::Path;

fn fixture(name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    SourceFile::parse(&format!("fixtures/{name}"), "fixture", &text)
}

#[test]
fn determinism_violation_fires_every_rule() {
    let f = lints::determinism::check(&fixture("determinism_violation.rs"));
    let lints_hit: Vec<Lint> = f.iter().map(|f| f.lint).collect();
    assert!(lints_hit.contains(&Lint::HashIteration), "{f:#?}");
    assert!(lints_hit.contains(&Lint::FloatReduction), "{f:#?}");
    assert!(lints_hit.contains(&Lint::UnstableFloatSort), "{f:#?}");
    assert_eq!(f.len(), 3, "{f:#?}");
}

#[test]
fn determinism_clean_is_quiet() {
    let f = lints::determinism::check(&fixture("determinism_clean.rs"));
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn fingerprint_violation_flags_the_uncovered_field() {
    let f = lints::fingerprint::check(&fixture("fingerprint_violation.rs"));
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(f[0].message.contains("synthetic_knob"), "{f:#?}");
}

#[test]
fn fingerprint_clean_is_quiet() {
    let f = lints::fingerprint::check(&fixture("fingerprint_clean.rs"));
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn runtime_epoch_violation_flags_the_unstamped_field() {
    let f = lints::fingerprint::check_runtime(&fixture("runtime_epoch_violation.rs"));
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(f[0].message.contains("tick_buffer"), "{f:#?}");
}

#[test]
fn runtime_epoch_clean_is_quiet() {
    let f = lints::fingerprint::check_runtime(&fixture("runtime_epoch_clean.rs"));
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn panic_violation_flags_each_site() {
    let f = lints::panics::check(&fixture("panic_violation.rs"));
    assert_eq!(f.len(), 3, "{f:#?}");
    assert!(f.iter().all(|f| f.lint == Lint::PanicHygiene));
}

#[test]
fn panic_clean_is_quiet() {
    let f = lints::panics::check(&fixture("panic_clean.rs"));
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn locks_violation_flags_nesting_and_unlooped_wait() {
    let f = lints::locks::check(&fixture("locks_violation.rs"));
    let lints_hit: Vec<Lint> = f.iter().map(|f| f.lint).collect();
    assert!(lints_hit.contains(&Lint::NestedLock), "{f:#?}");
    assert!(lints_hit.contains(&Lint::WaitNotInLoop), "{f:#?}");
    assert_eq!(f.len(), 2, "{f:#?}");
}

#[test]
fn locks_clean_is_quiet() {
    let f = lints::locks::check(&fixture("locks_clean.rs"));
    assert!(f.is_empty(), "{f:#?}");
}

/// The acceptance drill: take the real `crates/core/src/pipeline.rs`,
/// add a synthetic config field without touching `fingerprint_config`,
/// and prove the lint fails — i.e. a future knob cannot land silently.
#[test]
fn synthetic_field_in_real_config_fails_the_lint() {
    let pipeline = Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/src/pipeline.rs");
    let text = std::fs::read_to_string(&pipeline).expect("read core pipeline source");

    // Unmodified source is clean.
    let clean = SourceFile::parse("crates/core/src/pipeline.rs", "core", &text);
    let f = lints::fingerprint::check(&clean);
    assert!(f.is_empty(), "real FinSqlConfig must be fully covered: {f:#?}");

    // Inject `pub synthetic_knob: usize,` as the first field.
    let struct_open = text.find("pub struct FinSqlConfig {").expect("config struct present");
    let insert_at = text[struct_open..].find('\n').expect("newline after struct opener")
        + struct_open
        + 1;
    let mut patched = text.clone();
    patched.insert_str(insert_at, "    pub synthetic_knob: usize,\n");
    let dirty = SourceFile::parse("crates/core/src/pipeline.rs", "core", &patched);
    let f = lints::fingerprint::check(&dirty);
    assert_eq!(f.len(), 1, "exactly the synthetic field must be flagged: {f:#?}");
    assert!(f[0].message.contains("synthetic_knob"), "{f:#?}");
}

/// Same drill for the data-state half of the key: add a synthetic
/// `DbRuntime` field to the *real* pipeline source without stamping it
/// into `config_fingerprint` or the runtime allowlist, and prove the
/// runtime-coverage pass fails — a field that could carry un-epoched
/// data state cannot land silently.
#[test]
fn synthetic_field_in_real_runtime_fails_the_lint() {
    let pipeline = Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/src/pipeline.rs");
    let text = std::fs::read_to_string(&pipeline).expect("read core pipeline source");

    // Unmodified source is clean: db/plugin/epoch are fingerprinted,
    // everything else is an allowlisted pure-derived artifact.
    let clean = SourceFile::parse("crates/core/src/pipeline.rs", "core", &text);
    let f = lints::fingerprint::check_runtime(&clean);
    assert!(f.is_empty(), "real DbRuntime must be fully covered: {f:#?}");

    let struct_open = text.find("pub struct DbRuntime {").expect("runtime struct present");
    let insert_at = text[struct_open..].find('\n').expect("newline after struct opener")
        + struct_open
        + 1;
    let mut patched = text.clone();
    patched.insert_str(insert_at, "    pub tick_buffer: usize,\n");
    let dirty = SourceFile::parse("crates/core/src/pipeline.rs", "core", &patched);
    let f = lints::fingerprint::check_runtime(&dirty);
    assert_eq!(f.len(), 1, "exactly the synthetic field must be flagged: {f:#?}");
    assert!(f[0].message.contains("tick_buffer"), "{f:#?}");
}
