//! Fixture: every determinism rule violated once.
//! Not compiled — parsed by `tests/fixtures.rs`.
use std::collections::HashMap;

pub fn leak_order(m: &HashMap<String, f32>) -> Vec<f32> {
    let mut out = Vec::new();
    for (_k, v) in m.iter() {
        out.push(*v);
    }
    out
}

pub fn unordered_total(xs: &[f32]) -> f32 {
    xs.iter().copied().sum()
}

pub fn tie_unstable(xs: &mut Vec<(usize, f32)>) {
    xs.sort_unstable_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
}
