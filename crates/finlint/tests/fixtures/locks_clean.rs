//! Fixture: guard dropped before the second acquisition; wait re-checked
//! in a while loop. Not compiled — parsed by `tests/fixtures.rs`.
impl Cache {
    pub fn transfer(&self, from: usize, to: usize) {
        let moved = {
            let mut a = self.shards[from].lock();
            a.drain_all()
        };
        let mut b = self.shards[to].lock();
        b.extend(moved);
    }

    pub fn wait_ready(&self) -> bool {
        let mut g = self.state.lock();
        while !g.ready {
            g = self.cv.wait(g);
        }
        true
    }
}
