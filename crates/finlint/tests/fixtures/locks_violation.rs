//! Fixture: nested shard locks and a wait outside any loop.
//! Not compiled — parsed by `tests/fixtures.rs`.
impl Cache {
    pub fn transfer(&self, from: usize, to: usize) {
        let a = self.shards[from].lock();
        let b = self.shards[to].lock();
        b.extend(a.drain());
    }

    pub fn wait_once(&self) -> bool {
        let g = self.state.lock();
        if !g.ready {
            let g = self.cv.wait(g);
            return g.ready;
        }
        true
    }
}
