//! Fixture: justified invariants and test-only panics.
//! Not compiled — parsed by `tests/fixtures.rs`.
pub fn head(xs: &[u32]) -> u32 {
    // INVARIANT: callers check non-emptiness before calling.
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> i64 {
    s.parse().expect("digits only") // INVARIANT: s came from to_string on an i64
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v: Vec<u32> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
