//! Fixture: every FinSqlConfig field fingerprinted except the
//! allowlisted `link_mode` and `cache_policy`. Not compiled — parsed by `tests/fixtures.rs`.
pub struct FinSqlConfig {
    pub k_tables: usize,
    pub seed: u64,
    pub link_mode: InferenceMode,
    pub cache_policy: CachePolicy,
}

pub fn fingerprint_config(b: FingerprintBuilder, config: &FinSqlConfig) -> FingerprintBuilder {
    b.push_usize(config.k_tables).push_u64(config.seed)
}
