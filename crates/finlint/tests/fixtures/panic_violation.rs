//! Fixture: unjustified panic sites in library code.
//! Not compiled — parsed by `tests/fixtures.rs`.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> i64 {
    s.parse().expect("numeric input")
}

pub fn boom() {
    panic!("unconditional");
}
