//! Fixture: a DbRuntime copy carrying one data-state field
//! (`tick_buffer`) that is neither mixed into `config_fingerprint` nor
//! allowlisted — the exact shape of the bug that lets a cache entry
//! outlive the data it was computed against.
//! Not compiled — parsed by `tests/fixtures.rs`.
pub struct DbRuntime {
    pub db: DbId,
    pub schema: CatalogSchema,
    pub views: SchemaViews,
    pub values: ValueIndex,
    pub plugin: Arc<LoraPlugin>,
    pub matrix: PrototypeMatrix,
    pub link_matrix: SchemaFeatureMatrix,
    pub proto_index: PrototypeIndex,
    pub tick_buffer: Vec<Row>,
    pub epoch: DataEpoch,
}

pub fn config_fingerprint(b: FingerprintBuilder, runtimes: &[DbRuntime]) -> FingerprintBuilder {
    let mut b = b;
    for rt in runtimes {
        b = b
            .push_str(rt.db.as_str())
            .push_str(&rt.plugin.name)
            .push_u64(rt.epoch.0);
    }
    b
}
