//! Fixture: a FinSqlConfig copy with one field (`synthetic_knob`) that
//! is neither fingerprinted nor allowlisted.
//! Not compiled — parsed by `tests/fixtures.rs`.
pub struct FinSqlConfig {
    pub k_tables: usize,
    pub synthetic_knob: usize,
    pub link_mode: InferenceMode,
    pub cache_policy: CachePolicy,
}

pub fn fingerprint_config(b: FingerprintBuilder, config: &FinSqlConfig) -> FingerprintBuilder {
    b.push_usize(config.k_tables)
}
