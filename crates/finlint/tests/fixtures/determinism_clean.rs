//! Fixture: the same operations as `determinism_violation.rs`, each in
//! its sanctioned form. Not compiled — parsed by `tests/fixtures.rs`.
use std::collections::HashMap;

pub fn sorted_drain(m: &HashMap<String, f32>) -> Vec<(String, f32)> {
    let mut out: Vec<(String, f32)> = Vec::new();
    // finlint: ordered — drained into a Vec and sorted before use
    for (k, v) in m.iter() {
        out.push((k.clone(), *v));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

pub fn integer_total(xs: &[usize]) -> usize {
    xs.iter().copied().sum::<usize>()
}

pub fn slice_norm(v: &[f32]) -> f32 {
    // finlint: ordered — sequential left-to-right fold over a slice
    v.iter().map(|x| x * x).sum::<f32>()
}

pub fn tie_free(xs: &mut [(usize, u32)]) {
    xs.sort_unstable_by_key(|(i, _)| *i);
}
