//! Skew-aware serving-traffic harness: an open-loop workload generator
//! simulating a large synthetic user base drawing Zipf-skewed questions
//! across all three databases, driven through the full coalescing
//! [`BatchScheduler`] path against a capacity-bounded [`AnswerCache`].
//!
//! The harness exists to measure *eviction/admission policy* — plain LRU
//! vs segmented-LRU with TinyLFU admission — under realistic skew, so it
//! is built around two invariants the rest of the suite proves and this
//! module re-checks end to end:
//!
//! 1. **The policy can only change hit or miss, never an answer.** Every
//!    served answer is compared byte-for-byte against a fresh uncached
//!    reference minted before the run; a mismatch counts as a stale hit
//!    and fails the run.
//! 2. **Determinism.** The request schedule is minted once per skew
//!    setting from a seeded RNG (the same `seed → stream` discipline as
//!    `FinSql::question_rng`) and replayed identically against every
//!    policy, so hit-rate deltas are attributable to the policy alone.

use bull::{BullDataset, DbId, Lang, Split};
use finsql_core::batch::{BatchConfig, BatchScheduler};
use finsql_core::cache::{AnswerCache, Answerer, CachePolicy};
use finsql_core::metrics::{EvalMetrics, HistogramSnapshot};
use finsql_core::pipeline::FinSql;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Inverse-CDF Zipf sampler over ranks `0..n`: rank `r` is drawn with
/// probability proportional to `1/(r+1)^s`. The vendored `rand` has no
/// Zipf distribution, so the cumulative weights are precomputed once and
/// each draw is a uniform `f64` plus a binary search — deterministic
/// given a seeded RNG.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf population must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let r: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c <= r).min(self.cdf.len() - 1)
    }
}

/// One traffic scenario: `requests` draws from a Zipf(s) distribution
/// over a `population` of unique questions, submitted by `submitters`
/// concurrent threads impersonating users drawn uniformly from a
/// `user_space`-sized id space, against a cache capped at `capacity`
/// entries.
#[derive(Debug, Clone, Copy)]
pub struct TrafficSpec {
    pub s: f64,
    pub population: usize,
    pub requests: usize,
    pub capacity: usize,
    pub submitters: usize,
    pub batch: usize,
    pub user_space: u64,
    pub seed: u64,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec {
            s: 1.0,
            population: 4096,
            requests: 30_000,
            capacity: 512,
            submitters: 4,
            batch: 8,
            user_space: 10_000_000,
            seed: 0x51C0_FFEE,
        }
    }
}

/// The unique-question universe: the three dev sets round-robin
/// interleaved (so the Zipf head spans all databases), extended past the
/// dev sets with deterministic `(variant k)` paraphrase suffixes — the
/// pipeline answers any question string deterministically, so variants
/// are as legitimate as dev questions and blow the population up to
/// whatever multiple of the cache capacity the scenario asks for.
pub fn build_population(ds: &BullDataset, lang: Lang, population: usize) -> Vec<(DbId, String)> {
    let per_db: Vec<Vec<String>> = DbId::ALL
        .into_iter()
        .map(|db| {
            ds.examples_for(db, Split::Dev)
                .into_iter()
                .map(|e| e.question(lang).to_string())
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(population);
    let mut k = 0usize;
    while out.len() < population {
        for (di, db) in DbId::ALL.into_iter().enumerate() {
            if out.len() >= population {
                break;
            }
            let dev = &per_db[di];
            let base = &dev[k % dev.len()];
            let variant = k / dev.len();
            let question = if variant == 0 {
                base.clone()
            } else {
                format!("{base} (variant {variant})")
            };
            out.push((db, question));
        }
        k += 1;
    }
    out
}

/// Fresh uncached reference answers for the whole population — the byte
/// standard every cached/scheduled answer is checked against.
pub fn reference_answers(system: &FinSql, population: &[(DbId, String)]) -> Vec<String> {
    population.iter().map(|(db, q)| system.answer_fresh(*db, q, None)).collect()
}

/// A minted request schedule: `questions[i]` is the population index of
/// request `i`. The same schedule is replayed against every policy.
pub struct RequestStream {
    pub questions: Vec<u32>,
    /// Distinct synthetic users that issued the requests.
    pub distinct_users: usize,
}

/// Mints the request schedule for a spec: each request draws a user
/// uniformly from the id space and a question rank from Zipf(s).
pub fn request_stream(spec: &TrafficSpec) -> RequestStream {
    let zipf = ZipfSampler::new(spec.population, spec.s);
    // Seed folds in the skew bits so each s gets its own stream, same
    // discipline as the per-question RNG seeding in the pipeline.
    let mut rng = StdRng::seed_from_u64(spec.seed ^ spec.s.to_bits());
    let mut users: HashSet<u64> = HashSet::new();
    let mut questions = Vec::with_capacity(spec.requests);
    for _ in 0..spec.requests {
        users.insert(rng.gen_range(0..spec.user_space));
        questions.push(zipf.sample(&mut rng) as u32);
    }
    RequestStream { questions, distinct_users: users.len() }
}

/// Everything one policy's run produced.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    pub policy: CachePolicy,
    pub hits: u64,
    pub misses: u64,
    pub admission_rejected: u64,
    pub evictions: u64,
    pub entries: usize,
    pub protected_entries: usize,
    /// Answers that did not match the fresh reference byte-for-byte. A
    /// cache serving across a key boundary shows up here; must be 0.
    pub stale_hits: u64,
    pub wall: Duration,
    pub latency: HistogramSnapshot,
    /// Two lookups of the hottest resident key returned the same `Arc`
    /// allocation (a hit is a refcount bump, not a copy).
    pub hit_is_refcount_bump: bool,
}

impl PolicyOutcome {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    pub fn byte_identical(&self) -> bool {
        self.stale_hits == 0
    }

    pub fn throughput_qps(&self, requests: usize) -> f64 {
        requests as f64 / self.wall.as_secs_f64()
    }
}

/// Replays one minted schedule against one policy through the full
/// scheduler path: `submitters` threads submit concurrently, workers
/// coalesce micro-batches, the cache sits in front of the engine, and
/// per-request latency (queue wait + batching window + compute) lands in
/// the metrics histogram. Every answer is checked against `refs`.
pub fn run_policy(
    engine: &Arc<FinSql>,
    population: &[(DbId, String)],
    refs: &[String],
    stream: &RequestStream,
    spec: &TrafficSpec,
    policy: CachePolicy,
) -> PolicyOutcome {
    let cache = Arc::new(AnswerCache::with_policy(spec.capacity, policy));
    let metrics = Arc::new(EvalMetrics::new());
    let stale = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let wall = Instant::now();
    {
        let scheduler = BatchScheduler::new(
            Arc::clone(engine),
            Some(Arc::clone(&cache)),
            Some(Arc::clone(&metrics)),
            BatchConfig {
                max_batch: spec.batch.max(1),
                flush: Duration::from_micros(200),
                workers: spec.submitters.max(1),
                queue_cap: 256,
            },
        );
        crossbeam::scope(|scope| {
            for _ in 0..spec.submitters.max(1) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= stream.questions.len() {
                        break;
                    }
                    let qi = stream.questions[i] as usize;
                    let (db, question) = &population[qi];
                    let answer = scheduler.answer(*db, question);
                    if *answer != refs[qi] {
                        stale.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        // INVARIANT: scope() only errs when a submitter panicked, which
        // is a harness failure by design.
        .expect("traffic submitter panicked");
    }
    let wall = wall.elapsed();
    let stats = cache.stats();

    // Allocation-free-hit probe: the hottest rank is all but guaranteed
    // resident after a Zipf run; two lookups must share one allocation.
    let (db, question) = &population[0];
    let fingerprint = engine.config_fingerprint();
    let a = cache.get(*db, question, fingerprint);
    let b = cache.get(*db, question, fingerprint);
    let hit_is_refcount_bump = match (a, b) {
        (Some(a), Some(b)) => Arc::ptr_eq(&a, &b),
        _ => false,
    };

    PolicyOutcome {
        policy,
        hits: stats.hits,
        misses: stats.misses,
        admission_rejected: stats.admission_rejected,
        evictions: stats.evictions,
        entries: stats.entries,
        protected_entries: stats.protected_entries,
        stale_hits: stale.into_inner(),
        wall,
        latency: metrics.snapshot().latency,
        hit_is_refcount_bump,
    }
}

/// Proves the no-clone key-interning invariant end to end: a question
/// submitted to the scheduler as an `Arc<str>` must reach the cache key
/// as *that same allocation* (`Arc::ptr_eq`), not a byte copy — the
/// submit-time allocation rides the queue, the mixed-batch path and the
/// cache fill untouched. Runs against a fresh unbounded cache so TinyLFU
/// admission (which only engages at a capacity cap) cannot decline the
/// insert. Returns whether the invariant held.
pub fn key_interning_probe(engine: &Arc<FinSql>) -> bool {
    let cache = Arc::new(AnswerCache::unbounded());
    let question: Arc<str> = Arc::from("key interning probe: list all fund names");
    let answer = {
        let mut scheduler = BatchScheduler::new(
            Arc::clone(engine),
            Some(Arc::clone(&cache)),
            None,
            BatchConfig::default(),
        );
        let Ok(ticket) = scheduler.try_submit(DbId::Fund, Arc::clone(&question)) else {
            return false;
        };
        let answer = ticket.wait();
        scheduler.shutdown();
        answer
    };
    if *answer != engine.answer_fresh(DbId::Fund, &question, None) {
        return false; // never trade correctness for allocation savings
    }
    let fingerprint = engine.config_fingerprint();
    match cache.interned_key(DbId::Fund, &question, fingerprint) {
        Some(key) => Arc::ptr_eq(&key, &question),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampler_is_skewed_and_deterministic() {
        let zipf = ZipfSampler::new(100, 1.0);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..2000).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed must replay the same stream");
        let head = a.iter().filter(|&&r| r < 10).count();
        assert!(head > 800, "Zipf(1.0) head (top 10/100) drew only {head}/2000");
        assert!(a.iter().all(|&r| r < 100));
    }

    #[test]
    fn steeper_skew_concentrates_the_head() {
        let mut heads = Vec::new();
        for s in [0.8, 1.2] {
            let zipf = ZipfSampler::new(1000, s);
            let mut rng = StdRng::seed_from_u64(11);
            let head =
                (0..4000).map(|_| zipf.sample(&mut rng)).filter(|&r| r < 20).count();
            heads.push(head);
        }
        assert!(heads[1] > heads[0], "s=1.2 must concentrate more than s=0.8: {heads:?}");
    }

    #[test]
    fn request_stream_is_deterministic_and_covers_users() {
        let spec = TrafficSpec { requests: 5000, population: 64, ..TrafficSpec::default() };
        let a = request_stream(&spec);
        let b = request_stream(&spec);
        assert_eq!(a.questions, b.questions);
        assert_eq!(a.distinct_users, b.distinct_users);
        // 5000 draws from a 10M id space collide rarely.
        assert!(a.distinct_users > 4900, "only {} distinct users", a.distinct_users);
        let different = request_stream(&TrafficSpec { s: 1.2, ..spec });
        assert_ne!(a.questions, different.questions, "each skew gets its own stream");
    }
}
