//! Regenerates `results/BENCH_traffic.json`: skew-aware cache policy
//! comparison under Zipf traffic through the full scheduler path.
//!
//! For each skew s ∈ {0.8, 1.0, 1.2}, one request schedule is minted
//! from a seeded RNG and replayed against both cache policies (plain
//! LRU, SLRU + TinyLFU admission) at equal capacity, with the question
//! population a multiple of the capacity so eviction pressure is real.
//! Reported per (s, policy): hit rate, admission/eviction counters,
//! latency p50/p99/p999 from the scheduler-path histogram, throughput,
//! stale-hit count (must be 0 — every answer is byte-checked against a
//! fresh uncached reference) and the allocation-free-hit probe.
//!
//! Flags: `--traffic-requests N`, `--traffic-population N`,
//! `--cache-cap N` (capacity; default 512), `--workers N` (submitter
//! threads), `--batch N` (scheduler micro-batch).

use bench::traffic::{build_population, reference_answers, request_stream, PolicyOutcome, TrafficSpec};
use bench::{dataset, headline_profile, HarnessOpts};
use bull::Lang;
use finsql_core::cache::CachePolicy;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::sync::Arc;

const SKEWS: [f64; 3] = [0.8, 1.0, 1.2];

fn micros(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut spec = TrafficSpec::default();
    if opts.cache_cap > 0 {
        spec.capacity = opts.cache_cap;
    }
    if opts.workers > 0 {
        spec.submitters = opts.workers;
    }
    if opts.batch > 0 {
        spec.batch = opts.batch;
    }
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--traffic-requests" => {
                spec.requests =
                    args.next().and_then(|v| v.parse().ok()).expect("--traffic-requests N");
            }
            "--traffic-population" => {
                spec.population =
                    args.next().and_then(|v| v.parse().ok()).expect("--traffic-population N");
            }
            _ => {}
        }
    }
    assert!(
        spec.population >= 4 * spec.capacity,
        "population ({}) must be >= 4x capacity ({}) for real eviction pressure",
        spec.population,
        spec.capacity
    );

    let ds = dataset();
    let engine = Arc::new(FinSql::build(
        &ds,
        headline_profile(Lang::En),
        FinSqlConfig::standard(Lang::En),
    ));
    let population = build_population(&ds, Lang::En, spec.population);
    println!(
        "traffic: {} requests over {} unique questions, cache capacity {}, \
         {} submitters, batch {}",
        spec.requests, spec.population, spec.capacity, spec.submitters, spec.batch
    );
    let refs = reference_answers(&engine, &population);

    let mut rows: Vec<String> = Vec::new();
    for s in SKEWS {
        let stream = request_stream(&TrafficSpec { s, ..spec });
        println!("--- Zipf s={s}: {} distinct users ---", stream.distinct_users);
        let mut per_policy: Vec<PolicyOutcome> = Vec::new();
        for policy in CachePolicy::ALL {
            let out =
                bench::traffic::run_policy(&engine, &population, &refs, &stream, &spec, policy);
            assert_eq!(
                out.stale_hits, 0,
                "{policy} at s={s} served an answer differing from the fresh reference"
            );
            assert!(out.byte_identical());
            println!(
                "{:<13} hit rate {:>6.2}%  p50 {:>8.1}us  p99 {:>9.1}us  p999 {:>9.1}us  \
                 {:>8.0} q/s  rejected {:>6}  evicted {:>6}",
                policy.as_str(),
                out.hit_rate() * 100.0,
                micros(out.latency.p50()),
                micros(out.latency.p99()),
                micros(out.latency.p999()),
                out.throughput_qps(spec.requests),
                out.admission_rejected,
                out.evictions,
            );
            rows.push(format!(
                "    {{\"s\": {s}, \"policy\": \"{}\", \"requests\": {}, \"population\": {}, \
                 \"capacity\": {}, \"distinct_users\": {}, \"hit_rate\": {:.4}, \
                 \"hits\": {}, \"misses\": {}, \"admission_rejected\": {}, \"evictions\": {}, \
                 \"entries\": {}, \"protected_entries\": {}, \"p50_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"wall_secs\": {:.3}, \
                 \"questions_per_sec\": {:.1}, \"stale_hits\": {}, \"byte_identical\": {}, \
                 \"hit_is_refcount_bump\": {}}}",
                policy.as_str(),
                spec.requests,
                spec.population,
                spec.capacity,
                stream.distinct_users,
                out.hit_rate(),
                out.hits,
                out.misses,
                out.admission_rejected,
                out.evictions,
                out.entries,
                out.protected_entries,
                micros(out.latency.p50()),
                micros(out.latency.p99()),
                micros(out.latency.p999()),
                out.wall.as_secs_f64(),
                out.throughput_qps(spec.requests),
                out.stale_hits,
                out.byte_identical(),
                out.hit_is_refcount_bump,
            ));
            per_policy.push(out);
        }
        let lru = &per_policy[0];
        let slru = &per_policy[1];
        println!(
            "  SLRU+TinyLFU vs LRU hit-rate delta at s={s}: {:+.2} pts",
            (slru.hit_rate() - lru.hit_rate()) * 100.0
        );
        if (s - 1.0).abs() < f64::EPSILON {
            assert!(
                slru.hit_rate() > lru.hit_rate(),
                "SLRU+TinyLFU must strictly beat LRU at s=1.0: {:.4} vs {:.4}",
                slru.hit_rate(),
                lru.hit_rate()
            );
            assert!(
                slru.hit_is_refcount_bump,
                "the hottest key must be served as a shared allocation"
            );
        }
    }

    assert!(
        bench::traffic::key_interning_probe(&engine),
        "a question submitted as Arc<str> must become the cache key allocation itself \
         (no byte copy on the insert path)"
    );

    let json = format!(
        "{{\n  \"spec\": {{\"requests\": {}, \"population\": {}, \"capacity\": {}, \
         \"submitters\": {}, \"batch\": {}, \"user_space\": {}, \"seed\": {}}},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        spec.requests,
        spec.population,
        spec.capacity,
        spec.submitters,
        spec.batch,
        spec.user_space,
        spec.seed,
        rows.join(",\n"),
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_traffic.json", json).expect("write BENCH_traffic.json");
    println!("wrote results/BENCH_traffic.json");
}
