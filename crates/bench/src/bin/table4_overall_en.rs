//! Regenerates the paper's Table 4: overall EX and cost per SQL on
//! BULL-en.

fn main() {
    bench::run_overall_table(bull::Lang::En);
}
