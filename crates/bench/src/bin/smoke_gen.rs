//! CI smoke run for pruned prototype retrieval: for a ~200-question
//! slice of the three dev sets, generate SQL candidates with the full
//! matrix sweep and with the inverted-index-pruned generator, and assert
//! the candidate lists are byte-identical. Also asserts the certificate
//! actually engages (some questions certified, i.e. pruning is not
//! vacuously falling back to the full sweep everywhere) and that the
//! pruned path stays inside a fixed overhead budget relative to the full
//! sweep. At the current hub size (n ≈ 36 prototypes) the exact sweep is
//! ~2 µs/q, so index probing cannot win outright — the budget assert is
//! a regression tripwire that fires if the probe or certificate ever
//! grows from "a few percent of generation" to "dominating it". Exits
//! non-zero on any violation, so CI catches an index or bound that
//! drifts from the exact argmax.

use bench::{dataset, headline_profile, HarnessOpts};
use bull::{DbId, Lang, Split};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use simllm::{GenConfig, SqlGenerator};
use std::time::Instant;

const PER_DB: usize = 67;

fn main() {
    let _opts = HarnessOpts::from_args();
    let ds = dataset();
    let system = FinSql::build(&ds, headline_profile(Lang::En), FinSqlConfig::standard(Lang::En));
    let cfg = GenConfig {
        n_samples: system.config.n_candidates,
        temperature: system.config.temperature,
        skeleton_temperature: None,
    };

    let mut total = 0usize;
    let mut full_wall = std::time::Duration::ZERO;
    let mut pruned_wall = std::time::Duration::ZERO;
    for db in DbId::ALL {
        let rt = system.runtime(db);
        let qs: Vec<&str> = ds
            .examples_for(db, Split::Dev)
            .into_iter()
            .take(PER_DB)
            .map(|e| e.question(Lang::En))
            .collect();
        let linked = system.linker.link_batch(&qs, &rt.link_matrix);
        let schemas: Vec<_> = linked
            .iter()
            .map(|l| l.project(&rt.schema, system.config.k_tables, system.config.k_columns))
            .collect();
        let full_gen =
            SqlGenerator::with_matrix(&system.base, &rt.plugin, &rt.matrix, system.profile);
        let pruned_gen =
            SqlGenerator::with_matrix(&system.base, &rt.plugin, &rt.matrix, system.profile)
                .with_index(&rt.proto_index);

        // One untimed warm-up pass per path, then three timed trials,
        // keeping the minimum wall per path — the budget assertion
        // should compare steady-state work, not first-touch cache misses
        // or a scheduler hiccup in one trial.
        for (q, s) in qs.iter().zip(&schemas) {
            let mut rng = system.question_rng(db, q);
            let _ = full_gen.generate(q, s, &rt.values, cfg, &mut rng);
            let mut rng = system.question_rng(db, q);
            let _ = pruned_gen.generate(q, s, &rt.values, cfg, &mut rng);
        }
        let mut full: Vec<Vec<String>> = Vec::new();
        let mut pruned: Vec<Vec<String>> = Vec::new();
        let mut db_full = std::time::Duration::MAX;
        let mut db_pruned = std::time::Duration::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            full = qs
                .iter()
                .zip(&schemas)
                .map(|(q, s)| {
                    let mut rng = system.question_rng(db, q);
                    full_gen.generate(q, s, &rt.values, cfg, &mut rng)
                })
                .collect();
            db_full = db_full.min(start.elapsed());
            let start = Instant::now();
            pruned = qs
                .iter()
                .zip(&schemas)
                .map(|(q, s)| {
                    let mut rng = system.question_rng(db, q);
                    pruned_gen.generate(q, s, &rt.values, cfg, &mut rng)
                })
                .collect();
            db_pruned = db_pruned.min(start.elapsed());
        }
        full_wall += db_full;
        pruned_wall += db_pruned;

        for ((q, f), p) in qs.iter().zip(&full).zip(&pruned) {
            assert_eq!(f, p, "{db}: pruned generation diverged from the full sweep on {q:?}");
        }
        total += qs.len();
        println!("{db}: {} questions byte-identical, pruned vs full sweep", qs.len());
    }

    let (certified, fallback): (u64, u64) = DbId::ALL
        .into_iter()
        .map(|db| system.runtime(db).proto_index.stats.snapshot())
        .fold((0, 0), |(c, f), (dc, df)| (c + dc, f + df));
    println!(
        "pruning certificate over {total} questions x4 passes: {certified} certified, {fallback} fallbacks"
    );
    assert!(certified > 0, "the pruning certificate never engaged — the index is vacuous");
    assert!(
        certified * 5 >= (certified + fallback),
        "certificate rate collapsed below 20% ({certified} of {}) — the bound went loose",
        certified + fallback
    );

    let qps = |wall: std::time::Duration| total as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "generation full sweep: {:.0} q/s; pruned: {:.0} q/s",
        qps(full_wall),
        qps(pruned_wall)
    );
    // Overhead budget: index probe + certificate may cost at most 35% of
    // the generation stage. Measured steady state is ~10 µs/q of probe
    // overhead on a ~75 µs/q stage (ratio ≈ 1.15–1.25 after min-of-3);
    // the assert fires when the pruned path regresses into real slowness
    // (a quadratic probe, a thrashing certificate), while absorbing the
    // noise floor of sub-100 µs/q wall timings.
    assert!(
        pruned_wall.as_secs_f64() <= full_wall.as_secs_f64() * 1.35,
        "pruned generation ({pruned_wall:.2?}) blew its 35% overhead budget vs the full sweep ({full_wall:.2?})"
    );
    println!("smoke_gen: OK");
}
