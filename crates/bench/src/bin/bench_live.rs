//! Regenerates `results/BENCH_live.json`: the cost profile of the
//! live-data append path. Three measurements per epoch, differential
//! against a cold shadow engine the whole way:
//!
//! * **insert throughput** — rows/s through the validated
//!   `Database::apply_changes` path (schema + FK checks + WAL logging);
//! * **incremental vs rebuild refresh** — wall time for the live
//!   engine's `absorb_appends` (WAL-tail absorption into the value
//!   index) vs the shadow's `rebuild_data` (from-scratch rebuild after
//!   replaying the log), plus the post-refresh answer latency of both
//!   engines — byte-compared, so the speedup is proven answer-neutral;
//! * **warm-hit rate across epochs** — a shared answer cache re-serves
//!   the same dev slice twice per epoch; the first pass after every
//!   append must miss (the epoch re-keys the cache) and the second must
//!   hit, so the expected steady-state rate is 50%.

use bench::{dataset, headline_profile};
use bull::{BullDataset, DbId, Lang, Split};
use finsql_core::cache::{Answerer, AnswerCache};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::time::{Duration, Instant};

const EPOCH_ROUNDS: usize = 4;
const ROWS_PER_TABLE: usize = 8;
const QUESTIONS_PER_DB: usize = 12;

fn main() {
    let mut ds = dataset();
    let mut cold_ds = BullDataset::generate(bench::SEED);
    let config = FinSqlConfig::standard(Lang::En);
    let mut live = FinSql::build(&ds, headline_profile(Lang::En), config);
    let mut cold = FinSql::build(&cold_ds, headline_profile(Lang::En), config);

    let slate: Vec<(DbId, String)> = DbId::ALL
        .into_iter()
        .flat_map(|db| {
            ds.examples_for(db, Split::Dev)
                .into_iter()
                .take(QUESTIONS_PER_DB)
                .map(move |e| (db, e.question(Lang::En).to_string()))
                .collect::<Vec<_>>()
        })
        .collect();

    let cache = AnswerCache::unbounded();
    let mut rows_appended = 0usize;
    let mut records_appended = 0usize;
    let mut insert_wall = Duration::ZERO;
    let mut absorb_wall = Duration::ZERO;
    let mut rebuild_wall = Duration::ZERO;
    let mut live_answer_wall = Duration::ZERO;
    let mut cold_answer_wall = Duration::ZERO;
    let mut answers_timed = 0usize;

    for round in 1..=EPOCH_ROUNDS {
        // Validated insert path: schema + FK checks, WAL append, epoch
        // bump — timed per row.
        for db in DbId::ALL {
            let ticks = ds.mint_ticks(db, 0xBE9C_u64.wrapping_add(round as u64), ROWS_PER_TABLE);
            records_appended += ticks.len();
            rows_appended += ticks.iter().map(|(_, r)| r.len()).sum::<usize>();
            let t = Instant::now();
            ds.db_mut(db).apply_changes(ticks).expect("minted ticks are valid");
            insert_wall += t.elapsed();

            // Incremental refresh on the live engine.
            let t = Instant::now();
            live.absorb_appends(db, ds.db(db));
            absorb_wall += t.elapsed();

            // From-scratch refresh on the shadow: replay the log, then
            // rebuild the data-derived artifacts (timed — the cost the
            // incremental path avoids).
            cold_ds.db_mut(db).replay(ds.db(db).change_log()).expect("replay");
            let t = Instant::now();
            cold.rebuild_data(db, cold_ds.db(db));
            rebuild_wall += t.elapsed();
        }
        assert_eq!(
            live.config_fingerprint(),
            cold.config_fingerprint(),
            "incremental and rebuilt engines diverged at round {round}"
        );

        // Post-insert answer latency, incremental vs rebuilt — byte-
        // compared so both engines demonstrably answer from the same
        // data state.
        for (db, q) in &slate {
            let t = Instant::now();
            let a = live.answer_fresh(*db, q, None);
            live_answer_wall += t.elapsed();
            let t = Instant::now();
            let b = cold.answer_fresh(*db, q, None);
            cold_answer_wall += t.elapsed();
            assert_eq!(a, b, "post-insert answers diverged ({db}: {q})");
            answers_timed += 1;
        }

        // Two cached passes per epoch through the shared cache: the
        // append re-keyed everything, so pass 1 misses and pass 2 hits.
        for (db, q) in &slate {
            live.answer_cached(&cache, *db, q, None);
        }
        for (db, q) in &slate {
            live.answer_cached(&cache, *db, q, None);
        }
    }

    let stats = cache.stats();
    let hit_rate = stats.hit_rate();
    let inserts_per_sec = rows_appended as f64 / insert_wall.as_secs_f64();
    let per_answer =
        |wall: Duration| wall.as_secs_f64() * 1e6 / answers_timed.max(1) as f64;
    let refresh_speedup = rebuild_wall.as_secs_f64() / absorb_wall.as_secs_f64().max(1e-9);

    println!(
        "{EPOCH_ROUNDS} epoch rounds: {records_appended} change records, {rows_appended} rows"
    );
    println!("insert path: {inserts_per_sec:>10.0} rows/s  ({insert_wall:.2?} total)");
    println!(
        "refresh:     incremental {absorb_wall:.2?} vs rebuild {rebuild_wall:.2?}  \
         ({refresh_speedup:.1}x)"
    );
    println!(
        "post-insert answer latency: incremental engine {:.1} us, rebuilt engine {:.1} us \
         (byte-identical answers)",
        per_answer(live_answer_wall),
        per_answer(cold_answer_wall)
    );
    println!(
        "warm-hit rate across epochs: {:.1}% ({} hits / {} misses; expected 50% — every \
         epoch bump forces one cold pass)",
        hit_rate * 100.0,
        stats.hits,
        stats.misses
    );
    assert_eq!(
        stats.hits,
        (EPOCH_ROUNDS * slate.len()) as u64,
        "exactly one warm pass per epoch must hit"
    );

    let json = format!(
        "{{\n  \"epoch_rounds\": {EPOCH_ROUNDS},\n  \"rows_per_table\": {ROWS_PER_TABLE},\n  \
         \"appends\": {{\"change_records\": {records_appended}, \"rows\": {rows_appended}, \
         \"rows_per_sec\": {inserts_per_sec:.0}}},\n  \
         \"refresh\": {{\"incremental_secs\": {:.6}, \"rebuild_secs\": {:.6}, \
         \"rebuild_over_incremental\": {refresh_speedup:.2}}},\n  \
         \"post_insert_answer_latency_us\": {{\"incremental\": {:.1}, \"rebuilt\": {:.1}, \
         \"byte_identical\": true}},\n  \
         \"cache_across_epochs\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
         \"stale_hits\": 0}}\n}}\n",
        absorb_wall.as_secs_f64(),
        rebuild_wall.as_secs_f64(),
        per_answer(live_answer_wall),
        per_answer(cold_answer_wall),
        stats.hits,
        stats.misses,
        hit_rate,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_live.json", json).expect("write BENCH_live.json");
    println!("wrote results/BENCH_live.json");
}
