//! CI smoke run for the live-data append path: drives the packaged
//! differential scenario (`finsql_core::live::evaluate_ex_live`) at the
//! acceptance scale — a 200+-question dev slice interleaved with 50+
//! appended rows — and exits non-zero unless every served answer
//! (fresh, cached, micro-batched, and scheduler paths) is byte-identical
//! to a cold engine rebuilt from the replayed change log at the same
//! epoch, every post-append cache pass starts cold, and every warm pass
//! is served entirely from cache. The scenario itself asserts all of
//! that internally; this binary pins the scale and prints the evidence.

use bench::{dataset, headline_profile, HarnessOpts};
use bull::Lang;
use finsql_core::live::{evaluate_ex_live, LiveConfig};
use finsql_core::metrics::EvalMetrics;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::time::Instant;

fn main() {
    let opts = HarnessOpts::from_args();
    let mut ds = dataset();
    let system = FinSql::build(&ds, headline_profile(Lang::En), FinSqlConfig::standard(Lang::En));
    let cfg = LiveConfig {
        epochs: 3,
        rows_per_table: 3,
        questions_per_db: 20,
        tick_seed: 0x71C5,
        batch: if opts.batch == 0 { 3 } else { opts.batch },
        workers: if opts.workers == 0 { 2 } else { opts.workers },
    };
    let metrics = EvalMetrics::new();
    let wall = Instant::now();
    let (_system, outcome) = evaluate_ex_live(&mut ds, system, bench::SEED, &cfg, Some(&metrics));
    let wall = wall.elapsed();

    let mut fresh_serves = 0usize;
    for (round, r) in outcome.rounds.iter().enumerate() {
        println!(
            "round {round}: epochs {:?}  EX {}/{}  served {}  cache first-pass hits {}  \
             second-pass hits {}",
            r.epochs, r.ex.correct, r.ex.total, r.served, r.first_pass_hits, r.second_pass_hits
        );
        fresh_serves += r.ex.total;
    }
    let snap = metrics.snapshot();
    println!(
        "totals: {} answers served across 4 paths, {} change records / {} rows appended, \
         {:.2?} wall",
        outcome.served, outcome.change_records, outcome.appended_rows, wall
    );
    println!(
        "metrics: {} live appends ({} rows), cache {} hits / {} misses",
        snap.live_appends, snap.live_rows, snap.cache_hits, snap.cache_misses
    );

    // The acceptance bar: a 200+-question slice interleaved with >= 50
    // inserted rows, all four serving paths differential-checked (the
    // scenario already asserted byte-identity at every epoch).
    assert!(fresh_serves >= 200, "only {fresh_serves} questions scored — need 200+");
    assert!(
        outcome.appended_rows >= 50,
        "only {} rows appended — need 50+",
        outcome.appended_rows
    );
    assert_eq!(snap.live_appends, outcome.change_records as u64);
    assert_eq!(snap.live_rows, outcome.appended_rows as u64);
    println!("smoke_live: OK");
}
