//! Regenerates `results/BENCH_gen.json`: generation-stage throughput of
//! the pruned (inverted n-gram index) prototype retrieval vs the full
//! matrix sweep, plus the cold/warm end-to-end answer path, over the
//! full three-database dev sweep.
//!
//! The pruned and full-sweep generators are run over every dev question
//! and their emitted SQL candidate lists are compared for byte equality
//! — the certified-pruning contract is that pruning can *never* change
//! an answer, only skip work the certificate proves irrelevant. The
//! certified/fallback split of the pruning certificate is reported so
//! regressions in index selectivity are visible in the JSON trail.

use bench::{dataset, headline_profile, HarnessOpts};
use bull::{DbId, Lang, Split};
use finsql_core::cache::AnswerCache;
use finsql_core::metrics::EvalMetrics;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use simllm::{GenConfig, SqlGenerator};
use std::time::Instant;

/// The batched cold-cache answer-path throughput recorded at the PR 4
/// head (commit 6d72340) on this machine, full three-database dev sweep
/// (`results/BENCH_link.json` history; EXPERIMENTS.md). The issue's
/// acceptance bar is >= 2x this figure.
const PR4_BATCHED_COLD_QPS: f64 = 1625.0;

fn main() {
    let opts = HarnessOpts::from_args();
    let batch = if opts.batch == 0 { 8 } else { opts.batch };
    let ds = dataset();
    let system = FinSql::build(&ds, headline_profile(Lang::En), FinSqlConfig::standard(Lang::En));
    let cfg = GenConfig {
        n_samples: system.config.n_candidates,
        temperature: system.config.temperature,
        skeleton_temperature: None,
    };

    // --- End-to-end: batched answer path, cold then warm. ---
    // Runs first: the cold measurement must not inherit warmed-up
    // allocators, branch predictors, or tokenisation memos from the
    // stage sweep below.
    let cache = AnswerCache::unbounded();
    let metrics = EvalMetrics::new();
    let per_db: Vec<(DbId, Vec<&str>)> = DbId::ALL
        .into_iter()
        .map(|db| {
            let qs =
                ds.examples_for(db, Split::Dev).into_iter().map(|e| e.question(Lang::En)).collect();
            (db, qs)
        })
        .collect();
    let cold = Instant::now();
    for (db, qs) in &per_db {
        for chunk in qs.chunks(batch) {
            system.answer_batch_cached(&cache, *db, chunk, Some(&metrics));
        }
    }
    let cold = cold.elapsed();
    let warm = Instant::now();
    for (db, qs) in &per_db {
        for chunk in qs.chunks(batch) {
            system.answer_batch_cached(&cache, *db, chunk, Some(&metrics));
        }
    }
    let warm = warm.elapsed();

    // --- Stage sweep: full-sweep vs pruned generation, per database. ---
    // Both paths run the identical per-question loop (same linked prompt
    // schemas, same per-question RNGs); the only difference is whether
    // the generator carries the prototype index.
    let mut total = 0usize;
    let mut full_secs = 0.0f64;
    let mut pruned_secs = 0.0f64;
    let mut per_db_counts: Vec<(DbId, usize)> = Vec::new();
    for db in DbId::ALL {
        let rt = system.runtime(db);
        let qs: Vec<&str> =
            ds.examples_for(db, Split::Dev).into_iter().map(|e| e.question(Lang::En)).collect();
        let linked = system.linker.link_batch(&qs, &rt.link_matrix);
        let schemas: Vec<_> = linked
            .iter()
            .map(|l| l.project(&rt.schema, system.config.k_tables, system.config.k_columns))
            .collect();
        let full_gen =
            SqlGenerator::with_matrix(&system.base, &rt.plugin, &rt.matrix, system.profile);
        let pruned_gen =
            SqlGenerator::with_matrix(&system.base, &rt.plugin, &rt.matrix, system.profile)
                .with_index(&rt.proto_index);

        let t = Instant::now();
        let full_out: Vec<Vec<String>> = qs
            .iter()
            .zip(&schemas)
            .map(|(q, s)| {
                let mut rng = system.question_rng(db, q);
                full_gen.generate(q, s, &rt.values, cfg, &mut rng)
            })
            .collect();
        full_secs += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let pruned_out: Vec<Vec<String>> = qs
            .iter()
            .zip(&schemas)
            .map(|(q, s)| {
                let mut rng = system.question_rng(db, q);
                pruned_gen.generate(q, s, &rt.values, cfg, &mut rng)
            })
            .collect();
        pruned_secs += t.elapsed().as_secs_f64();

        assert_eq!(
            full_out, pruned_out,
            "pruned generation must be byte-identical to the full sweep ({db})"
        );
        total += qs.len();
        per_db_counts.push((db, qs.len()));
    }
    let (certified, fallback): (u64, u64) = DbId::ALL
        .into_iter()
        .map(|db| system.runtime(db).proto_index.stats.snapshot())
        .fold((0, 0), |(c, f), (dc, df)| (c + dc, f + df));

    let gen_qps = |secs: f64| total as f64 / secs;
    let cold_qps = total as f64 / cold.as_secs_f64();
    let warm_qps = total as f64 / warm.as_secs_f64();
    let gen_speedup = full_secs / pruned_secs;
    let speedup_vs_pr4 = cold_qps / PR4_BATCHED_COLD_QPS;

    println!("full dev sweep: {total} questions, batch size {batch}");
    println!(
        "generation full sweep:  {:>9.1} q/s  ({:.1} us/q)",
        gen_qps(full_secs),
        1e6 * full_secs / total as f64
    );
    println!(
        "generation pruned:      {:>9.1} q/s  ({:.1} us/q)",
        gen_qps(pruned_secs),
        1e6 * pruned_secs / total as f64
    );
    println!("generation speedup (pruned/full): {gen_speedup:.2}x");
    println!(
        "pruning certificate: {certified} certified, {fallback} full-sweep fallbacks ({:.1}% certified)",
        100.0 * certified as f64 / (certified + fallback).max(1) as f64
    );
    println!("end-to-end batched cold: {cold_qps:>8.1} q/s  ({cold:.2?})");
    println!("end-to-end batched warm: {warm_qps:>8.1} q/s  ({warm:.2?})");
    println!(
        "speedup vs PR 4 batched cold baseline ({PR4_BATCHED_COLD_QPS} q/s): {speedup_vs_pr4:.2}x"
    );

    let json = format!(
        "{{\n  \"sweep\": {{\"questions\": {total}, \"per_db\": {{{}}}}},\n  \
         \"batch\": {batch},\n  \"threads\": 1,\n  \"generation_stage\": {{\n    \
         \"full_sweep\": {{\"wall_secs\": {:.4}, \"questions_per_sec\": {:.1}}},\n    \
         \"pruned\": {{\"wall_secs\": {:.4}, \"questions_per_sec\": {:.1}}},\n    \
         \"speedup\": {:.2},\n    \
         \"pruned_equals_full\": true,\n    \
         \"certified\": {certified},\n    \"fallback\": {fallback}\n  }},\n  \
         \"answer_path\": {{\n    \
         \"batched_cold\": {{\"wall_secs\": {:.3}, \"questions_per_sec\": {:.1}}},\n    \
         \"batched_warm\": {{\"wall_secs\": {:.3}, \"questions_per_sec\": {:.1}}}\n  }},\n  \
         \"pr4_baseline\": {{\"commit\": \"6d72340\", \"batched_cold_questions_per_sec\": {PR4_BATCHED_COLD_QPS}}},\n  \
         \"speedup_cold_vs_pr4_batched\": {:.2}\n}}\n",
        per_db_counts
            .iter()
            .map(|(db, n)| format!("\"{db}\": {n}"))
            .collect::<Vec<_>>()
            .join(", "),
        full_secs,
        gen_qps(full_secs),
        pruned_secs,
        gen_qps(pruned_secs),
        gen_speedup,
        cold.as_secs_f64(),
        cold_qps,
        warm.as_secs_f64(),
        warm_qps,
        speedup_vs_pr4,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_gen.json", json).expect("write BENCH_gen.json");
    println!("wrote results/BENCH_gen.json");
}
