//! Regenerates the paper's Table 3: CoT generation success with vs
//! without the self-check prompt design, on the Chinese training data.

use augment::{generate_cot, CotSettings};
use bench::{dataset, SEED};
use bull::{DbId, Lang};
use finsql_core::peft::training_pairs;

fn main() {
    let ds = dataset();
    println!("Table 3: Success rate of generating CoT (Chinese training data)");
    println!("{:<16} {:>9} {:>9} {:>17}", "Method", "Success", "Failure", "Empty Execution");
    for (label, golden) in [("w self-check", true), ("w/o self-check", false)] {
        let mut totals = (0usize, 0usize, 0usize);
        for db in DbId::ALL {
            let pairs = training_pairs(&ds, db, Lang::Cn);
            let report = generate_cot(
                ds.db(db),
                &pairs,
                CotSettings { golden_sql_in_prompt: golden, seed: SEED, ..Default::default() },
            );
            totals.0 += report.success;
            totals.1 += report.failure;
            totals.2 += report.empty;
        }
        let total = (totals.0 + totals.1 + totals.2) as f64;
        println!(
            "{:<16} {:>8.2}% {:>8.2}% {:>16.2}%",
            label,
            100.0 * totals.0 as f64 / total,
            100.0 * totals.1 as f64 / total,
            100.0 * totals.2 as f64 / total
        );
    }
}
