//! Regenerates the paper's Table 6: schema-linking AUC for tables and
//! columns in both registers.

use bench::{dataset, SEED};
use bull::{DbId, Lang, Split};
use crossenc::metrics::evaluate;
use crossenc::model::SchemaViews;
use crossenc::LinkExample;
use finsql_core::pipeline::train_linker;

fn main() {
    let ds = dataset();
    println!("Table 6: Performance of Schema Linking (AUC)");
    println!("{:<16} {:>8} {:>8}", "Schema Item", "Table", "Column");
    for lang in [Lang::En, Lang::Cn] {
        let linker = train_linker(&ds, lang, &DbId::ALL, SEED);
        let schemas: Vec<_> = DbId::ALL.iter().map(|&db| ds.db(db).catalog()).collect();
        let views: Vec<_> = schemas.iter().map(|s| SchemaViews::build(s, lang)).collect();
        let examples: Vec<LinkExample> = DbId::ALL
            .iter()
            .enumerate()
            .flat_map(|(si, &db)| {
                ds.examples_for(db, Split::Dev).into_iter().map(move |e| (si, e))
            })
            .map(|(si, e)| LinkExample {
                question: e.question(lang).to_string(),
                gold_tables: e.gold_tables.clone(),
                gold_columns: e.gold_columns.clone(),
                schema_idx: si,
            })
            .collect();
        let eval = evaluate(&linker, &schemas, &views, &examples, &[], &[]);
        println!(
            "AUC (BULL-{}) {:>10.4} {:>8.4}",
            lang.suffix(),
            eval.table_auc,
            eval.column_auc
        );
    }
}
