//! CI smoke run for the skew-aware cache: a small Zipf(s=1.0) traffic
//! replay through the scheduler against both cache policies at equal
//! capacity. Asserts (1) every served answer is byte-identical to the
//! fresh uncached reference under *both* policies — the eviction policy
//! can change hit/miss, never an answer; (2) zero stale hits; (3) the
//! SLRU+TinyLFU hit rate is at least plain LRU's at equal capacity; and
//! (4) a cache hit is a refcount bump, not a string copy. Exits non-zero
//! on any violation.

use bench::traffic::{build_population, reference_answers, request_stream, TrafficSpec};
use bench::{dataset, headline_profile, HarnessOpts};
use bull::Lang;
use finsql_core::cache::CachePolicy;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::sync::Arc;

fn main() {
    let opts = HarnessOpts::from_args();
    let spec = TrafficSpec {
        s: 1.0,
        population: 768,
        requests: 8_000,
        capacity: 128,
        submitters: if opts.workers > 0 { opts.workers } else { 4 },
        batch: if opts.batch > 0 { opts.batch } else { 8 },
        ..TrafficSpec::default()
    };
    let ds = dataset();
    let engine = Arc::new(FinSql::build(
        &ds,
        headline_profile(Lang::En),
        FinSqlConfig::standard(Lang::En),
    ));
    let population = build_population(&ds, Lang::En, spec.population);
    let refs = reference_answers(&engine, &population);
    let stream = request_stream(&spec);
    println!(
        "smoke traffic: {} requests, {} unique questions, capacity {}, {} distinct users",
        spec.requests, spec.population, spec.capacity, stream.distinct_users
    );

    let mut outcomes = Vec::new();
    for policy in CachePolicy::ALL {
        let out = bench::traffic::run_policy(&engine, &population, &refs, &stream, &spec, policy);
        println!(
            "{:<13} hit rate {:>6.2}%  hits {:>6}  misses {:>6}  rejected {:>5}  \
             stale {}  p99 {:?}",
            policy.as_str(),
            out.hit_rate() * 100.0,
            out.hits,
            out.misses,
            out.admission_rejected,
            out.stale_hits,
            out.latency.p99(),
        );
        assert_eq!(
            out.stale_hits, 0,
            "{policy}: a served answer differed from the fresh uncached reference"
        );
        assert!(out.byte_identical(), "{policy}: answers must be byte-identical across the run");
        outcomes.push(out);
    }
    let (lru, slru) = (&outcomes[0], &outcomes[1]);
    assert!(
        slru.hit_rate() >= lru.hit_rate(),
        "SLRU+TinyLFU hit rate ({:.4}) fell below plain LRU ({:.4}) at equal capacity on Zipf 1.0",
        slru.hit_rate(),
        lru.hit_rate()
    );
    assert!(
        slru.hit_is_refcount_bump,
        "the hottest key must be served as a shared allocation, not a copy"
    );
    assert_eq!(lru.admission_rejected, 0, "plain LRU must never reject an insert");
    assert!(
        bench::traffic::key_interning_probe(&engine),
        "a question submitted as Arc<str> must become the cache key allocation itself \
         (no byte copy on the insert path)"
    );
    println!(
        "SLRU+TinyLFU vs LRU hit-rate delta: {:+.2} pts",
        (slru.hit_rate() - lru.hit_rate()) * 100.0
    );
    println!("smoke_traffic: OK");
}
