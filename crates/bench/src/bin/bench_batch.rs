//! Regenerates `results/BENCH_batch.json`: answer-path throughput of the
//! batched engine vs the per-question path over the full three-database
//! dev sweep, cold-cache and warm-cache, plus the recorded PR 2 baseline
//! the batched speedup is claimed against.
//!
//! The measurement is answers-only (no execution-accuracy checking) so it
//! isolates the inference path the batching optimises; the batched and
//! unbatched answer strings are compared for byte equality over the whole
//! sweep, which both validates the determinism guarantee at scale and
//! keeps the two measured paths honest about doing the same work.

use bench::{dataset, headline_profile, HarnessOpts};
use bull::{DbId, Lang, Split};
use finsql_core::cache::{Answerer, AnswerCache};
use finsql_core::metrics::EvalMetrics;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::time::Instant;

/// The unbatched cold-cache answer-path throughput recorded at the PR 2
/// head (commit a7fb7c9) on this machine, full three-database dev sweep.
const PR2_UNBATCHED_COLD_QPS: f64 = 455.2;
/// The same run with execution-accuracy checking (context: EX checking,
/// not inference, dominated the with-EX wall clock).
const PR2_WITH_EX_QPS: f64 = 107.5;
const PR2_EX: &str = "850/1000";

fn main() {
    let opts = HarnessOpts::from_args();
    let batch = if opts.batch == 0 { 8 } else { opts.batch };
    let ds = dataset();
    let system = FinSql::build(&ds, headline_profile(Lang::En), FinSqlConfig::standard(Lang::En));

    // The full dev sweep: every (db, question) pair, databases chunked
    // per db for the batched path.
    let per_db: Vec<(DbId, Vec<&str>)> = DbId::ALL
        .into_iter()
        .map(|db| {
            let qs =
                ds.examples_for(db, Split::Dev).into_iter().map(|e| e.question(Lang::En)).collect();
            (db, qs)
        })
        .collect();
    let total: usize = per_db.iter().map(|(_, qs)| qs.len()).sum();

    // Unbatched, cold then warm through one cache.
    let cache = AnswerCache::unbounded();
    let mut unbatched_answers: Vec<std::sync::Arc<str>> = Vec::with_capacity(total);
    let cold = Instant::now();
    for (db, qs) in &per_db {
        for q in qs {
            unbatched_answers.push(system.answer_cached(&cache, *db, q, None));
        }
    }
    let unbatched_cold = cold.elapsed();
    let warm = Instant::now();
    for (db, qs) in &per_db {
        for q in qs {
            system.answer_cached(&cache, *db, q, None);
        }
    }
    let unbatched_warm = warm.elapsed();

    // Batched, cold then warm through a fresh cache.
    let cache = AnswerCache::unbounded();
    let metrics = EvalMetrics::new();
    let mut batched_answers: Vec<std::sync::Arc<str>> = Vec::with_capacity(total);
    let cold = Instant::now();
    for (db, qs) in &per_db {
        for chunk in qs.chunks(batch) {
            batched_answers.extend(system.answer_batch_cached(&cache, *db, chunk, Some(&metrics)));
        }
    }
    let batched_cold = cold.elapsed();
    let warm = Instant::now();
    for (db, qs) in &per_db {
        for chunk in qs.chunks(batch) {
            system.answer_batch_cached(&cache, *db, chunk, Some(&metrics));
        }
    }
    let batched_warm = warm.elapsed();

    assert_eq!(
        unbatched_answers, batched_answers,
        "batched answers must be byte-identical to the per-question path"
    );
    let snap = metrics.snapshot();
    let qps = |wall: std::time::Duration| total as f64 / wall.as_secs_f64();
    let speedup_cold = qps(batched_cold) / qps(unbatched_cold);
    let speedup_vs_pr2 = qps(batched_cold) / PR2_UNBATCHED_COLD_QPS;

    println!("full dev sweep: {total} questions, batch size {batch}");
    println!("unbatched cold: {:>8.1} q/s  ({unbatched_cold:.2?})", qps(unbatched_cold));
    println!("unbatched warm: {:>8.1} q/s  ({unbatched_warm:.2?})", qps(unbatched_warm));
    println!("batched   cold: {:>8.1} q/s  ({batched_cold:.2?})", qps(batched_cold));
    println!("batched   warm: {:>8.1} q/s  ({batched_warm:.2?})", qps(batched_warm));
    println!(
        "micro-batches: {} (mean size {:.1}, max {}), amortised embeds {}",
        snap.batches,
        snap.mean_batch_size(),
        snap.max_batch,
        snap.amortised_embeds()
    );
    println!("speedup batched/unbatched (cold, this run): {speedup_cold:.2}x");
    println!("speedup vs PR 2 unbatched cold baseline ({PR2_UNBATCHED_COLD_QPS} q/s): {speedup_vs_pr2:.2}x");

    let json = format!(
        "{{\n  \"sweep\": {{\"questions\": {total}, \"per_db\": {{{}}}}},\n  \
         \"batch\": {batch},\n  \"threads\": 1,\n  \"runs\": {{\n    \
         \"unbatched_cold\": {{\"wall_secs\": {:.3}, \"questions_per_sec\": {:.1}}},\n    \
         \"unbatched_warm\": {{\"wall_secs\": {:.3}, \"questions_per_sec\": {:.1}}},\n    \
         \"batched_cold\": {{\"wall_secs\": {:.3}, \"questions_per_sec\": {:.1}}},\n    \
         \"batched_warm\": {{\"wall_secs\": {:.3}, \"questions_per_sec\": {:.1}}}\n  }},\n  \
         \"micro_batches\": {{\"count\": {}, \"mean_size\": {:.2}, \"max_size\": {}, \"amortised_embeds\": {}}},\n  \
         \"batched_equals_unbatched\": true,\n  \
         \"pr2_baseline\": {{\"commit\": \"a7fb7c9\", \"unbatched_cold_questions_per_sec\": {PR2_UNBATCHED_COLD_QPS}, \
         \"with_ex_questions_per_sec\": {PR2_WITH_EX_QPS}, \"ex\": \"{PR2_EX}\"}},\n  \
         \"speedup_cold_vs_pr2_unbatched\": {:.2},\n  \
         \"speedup_cold_this_run\": {:.2}\n}}\n",
        per_db
            .iter()
            .map(|(db, qs)| format!("\"{db}\": {}", qs.len()))
            .collect::<Vec<_>>()
            .join(", "),
        unbatched_cold.as_secs_f64(),
        qps(unbatched_cold),
        unbatched_warm.as_secs_f64(),
        qps(unbatched_warm),
        batched_cold.as_secs_f64(),
        qps(batched_cold),
        batched_warm.as_secs_f64(),
        qps(batched_warm),
        snap.batches,
        snap.mean_batch_size(),
        snap.max_batch,
        snap.amortised_embeds(),
        speedup_vs_pr2,
        speedup_cold,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_batch.json", json).expect("write BENCH_batch.json");
    println!("wrote results/BENCH_batch.json");
}
