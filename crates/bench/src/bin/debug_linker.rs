use bench::dataset;
use bull::{DbId, Lang, Split};
use crossenc::metrics::evaluate;
use crossenc::model::SchemaViews;
use crossenc::{LinkExample, TrainConfig};
use finsql_core::pipeline::train_linker;

fn main() {
    let ds = dataset();
    let linker = train_linker(&ds, Lang::En, &DbId::ALL, 0xF1A5);
    let schemas: Vec<_> = DbId::ALL.iter().map(|&db| ds.db(db).catalog()).collect();
    let views: Vec<_> = schemas.iter().map(|s| SchemaViews::build(s, Lang::En)).collect();
    let mut examples = Vec::new();
    for (si, &db) in DbId::ALL.iter().enumerate() {
        for e in ds.examples_for(db, Split::Dev) {
            examples.push(LinkExample {
                question: e.question(Lang::En).to_string(),
                gold_tables: e.gold_tables.clone(),
                gold_columns: e.gold_columns.clone(),
                schema_idx: si,
            });
        }
    }
    let _ = TrainConfig::default();
    let eval = evaluate(&linker, &schemas, &views, &examples, &[3, 4, 5, 10], &[5, 7, 8, 10]);
    println!("table AUC {:.4}  column AUC {:.4}", eval.table_auc, eval.column_auc);
    for (k, r) in &eval.table_recall { println!("table R@{k} = {:.1}%", r * 100.0); }
    for (k, r) in &eval.column_recall { println!("col   R@{k} = {:.1}%", r * 100.0); }
}
