//! Quick calibration probe: FinSQL EX on the fund dev set.

use bench::{dataset, headline_profile};
use bull::{DbId, Lang};
use finsql_core::eval::evaluate_ex;
use finsql_core::pipeline::{FinSql, FinSqlConfig};

fn main() {
    let ds = dataset();
    for lang in [Lang::En, Lang::Cn] {
        let system = FinSql::build(&ds, headline_profile(lang), FinSqlConfig::standard(lang));
        let mut pooled = (0usize, 0usize);
        for db in DbId::ALL {
            let out = evaluate_ex(&ds, db, lang, |q| {
                let mut rng = system.question_rng(db, q);
                system.answer(db, q, &mut rng)
            });
            pooled.0 += out.correct;
            pooled.1 += out.total;
            println!("{lang:?} {db}: EX = {:.1}%  ({}/{})", out.ex_pct(), out.correct, out.total);
        }
        println!("{lang:?} pooled: {:.1}%", 100.0 * pooled.0 as f64 / pooled.1 as f64);
    }
}
