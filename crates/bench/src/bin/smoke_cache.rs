//! CI smoke run for the answer cache: evaluate a slice of the dev sets
//! twice through one cache and assert a non-zero hit rate, identical EX
//! counts, and zero evictions on the unbounded cache. Exits non-zero on
//! any violation, so CI catches a cache that silently stops hitting.

use bench::{dataset, headline_profile, HarnessOpts};
use bull::Lang;
use finsql_core::cache::{Answerer, AnswerCache};
use finsql_core::eval::evaluate_ex_all_interleaved;
use finsql_core::metrics::EvalMetrics;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::time::Instant;

const PER_DB: usize = 25;

fn main() {
    let opts = HarnessOpts::from_args();
    let ds = dataset();
    let system = FinSql::build(&ds, headline_profile(Lang::En), FinSqlConfig::standard(Lang::En));
    let cache = AnswerCache::with_capacity(opts.cache_cap);
    let mut passes = Vec::new();
    for pass in 0..2 {
        let metrics = EvalMetrics::new();
        let wall = Instant::now();
        let outcome = evaluate_ex_all_interleaved(&ds, Lang::En, opts.workers, Some(PER_DB), |db, q| {
            system.answer_cached(&cache, db, q, Some(&metrics))
        });
        let wall = wall.elapsed();
        let snap = metrics.snapshot();
        println!(
            "pass {pass}: EX {}/{}  {:.1} questions/sec  cache hit rate {:.1}%",
            outcome.pooled().correct,
            outcome.pooled().total,
            snap.questions_per_sec(wall),
            snap.cache_hit_rate() * 100.0
        );
        passes.push((outcome, snap));
    }
    let stats = cache.stats();
    println!(
        "cache: {} hits / {} misses / {} inserts / {} evictions / {} entries",
        stats.hits, stats.misses, stats.inserts, stats.evictions, stats.entries
    );
    assert_eq!(passes[0].0, passes[1].0, "warm pass must reproduce cold EX counts exactly");
    // A cap below the working set may FIFO-evict every entry between
    // passes, so only demand hits when the whole slice fits.
    if opts.cache_cap == 0 || opts.cache_cap >= 3 * PER_DB {
        assert!(stats.hits > 0, "repeated questions produced no cache hits");
    }
    if opts.cache_cap == 0 {
        assert_eq!(
            passes[1].1.cache_hits,
            (3 * PER_DB) as u64,
            "every second-pass question must be a cache hit"
        );
        assert_eq!(stats.evictions, 0, "the unbounded cache must never evict");
        assert_eq!(stats.entries, stats.inserts as usize);
    }
    println!("smoke_cache: OK");
}
