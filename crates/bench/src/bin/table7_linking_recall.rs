//! Regenerates the paper's Table 7: recall@k of the parallel
//! Cross-Encoder for tables (R@3/5/10) and columns (R@5/7/10).

use bench::{dataset, SEED};
use bull::{DbId, Lang, Split};
use crossenc::metrics::evaluate;
use crossenc::model::SchemaViews;
use crossenc::LinkExample;
use finsql_core::pipeline::train_linker;

fn main() {
    let ds = dataset();
    println!("Table 7: recall@k of the Parallel Cross-Encoder");
    println!(
        "{:<10} {:>6} {:>6} {:>6}   {:>6} {:>6} {:>6}",
        "Dataset", "T R@3", "T R@5", "T R@10", "C R@5", "C R@7", "C R@10"
    );
    for lang in [Lang::En, Lang::Cn] {
        let linker = train_linker(&ds, lang, &DbId::ALL, SEED);
        let schemas: Vec<_> = DbId::ALL.iter().map(|&db| ds.db(db).catalog()).collect();
        let views: Vec<_> = schemas.iter().map(|s| SchemaViews::build(s, lang)).collect();
        let examples: Vec<LinkExample> = DbId::ALL
            .iter()
            .enumerate()
            .flat_map(|(si, &db)| {
                ds.examples_for(db, Split::Dev).into_iter().map(move |e| (si, e))
            })
            .map(|(si, e)| LinkExample {
                question: e.question(lang).to_string(),
                gold_tables: e.gold_tables.clone(),
                gold_columns: e.gold_columns.clone(),
                schema_idx: si,
            })
            .collect();
        let eval = evaluate(&linker, &schemas, &views, &examples, &[3, 5, 10], &[5, 7, 10]);
        print!("BULL-{:<5}", lang.suffix());
        for (_, r) in &eval.table_recall {
            print!(" {:>6.1}", r * 100.0);
        }
        print!("  ");
        for (_, r) in &eval.column_recall {
            print!(" {:>6.1}", r * 100.0);
        }
        println!();
    }
}
