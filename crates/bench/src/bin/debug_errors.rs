//! Aggregate error breakdown on the fund dev set.

use bench::{dataset, headline_profile};
use bull::{DbId, Lang, Split};
use crossenc::InferenceMode;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::collections::HashMap;

fn main() {
    let ds = dataset();
    let system = FinSql::build(&ds, headline_profile(Lang::En), FinSqlConfig::standard(Lang::En));
    let rt = system.runtime(DbId::Fund);
    let plugin = &rt.plugin;
    let mut skel_ok = 0; let mut skel_total = 0;
    let mut prompt_miss = 0;
    let mut ex_when_skel_ok = (0, 0);
    let mut ex_by_arch: HashMap<&str, (usize, usize)> = HashMap::new();
    for e in ds.examples_for(DbId::Fund, Split::Dev) {
        let q = e.question(Lang::En);
        let gold_skel = sqlkit::skeleton_of(&e.sql).unwrap_or_default();
        let emb = system.base.embed(q, Some(&plugin.lora));
        let best = plugin.prototypes.iter()
            .max_by(|a, b| simllm::embed::cosine(&emb, &a.centroid).total_cmp(&simllm::embed::cosine(&emb, &b.centroid)))
            .map(|p| p.skeleton.clone()).unwrap_or_default();
        let sk = best == gold_skel;
        skel_total += 1; if sk { skel_ok += 1; }
        let linked = system.linker.link(q, &rt.views, InferenceMode::Parallel);
        let prompt_schema = linked.project(&rt.schema, 4, 8);
        let miss = e.gold_columns.iter().any(|(t,c)| !prompt_schema.has_column(t,c));
        if miss { prompt_miss += 1; }
        let mut rng = system.question_rng(DbId::Fund, q);
        let final_sql = system.answer(DbId::Fund, q, &mut rng);
        let ok = sqlengine::execution_accuracy(ds.db(DbId::Fund), &final_sql, &e.sql);
        let ent = ex_by_arch.entry(e.archetype).or_insert((0,0));
        ent.1 += 1; if ok { ent.0 += 1; }
        if sk { ex_when_skel_ok.1 += 1; if ok { ex_when_skel_ok.0 += 1; } }
    }
    println!("skeleton top-1 acc: {}/{} = {:.1}%", skel_ok, skel_total, 100.0*skel_ok as f64/skel_total as f64);
    println!("prompt missing gold cols: {}/{}", prompt_miss, skel_total);
    println!("EX when skeleton correct: {}/{} = {:.1}%", ex_when_skel_ok.0, ex_when_skel_ok.1, 100.0*ex_when_skel_ok.0 as f64/ex_when_skel_ok.1.max(1) as f64);
    let mut archs: Vec<_> = ex_by_arch.into_iter().collect();
    archs.sort();
    for (a, (c, t)) in archs {
        println!("  {a:24} {c:3}/{t:3} = {:.0}%", 100.0*c as f64/t as f64);
    }
}
