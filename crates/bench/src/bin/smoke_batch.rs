//! CI smoke run for the batched answer engine: evaluate a slice of the
//! dev sets unbatched and batched and assert the per-database EX counts
//! are identical (batching cannot change an answer), then run the same
//! slice twice through a [`BatchScheduler`] with cache-first routing and
//! assert the warm pass reproduces the cold counts from the cache. Exits
//! non-zero on any violation, so CI catches a batched path that drifts
//! from the per-question reference.

use bench::{dataset, headline_profile, HarnessOpts};
use bull::{DbId, Lang};
use finsql_core::batch::{BatchConfig, BatchScheduler};
use finsql_core::cache::AnswerCache;
use finsql_core::eval::{evaluate_ex_all_interleaved, evaluate_ex_all_interleaved_batched};
use finsql_core::metrics::EvalMetrics;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::sync::Arc;
use std::time::Instant;

const PER_DB: usize = 25;

fn main() {
    let opts = HarnessOpts::from_args();
    let batch = if opts.batch == 0 { 8 } else { opts.batch };
    let ds = dataset();
    let system = FinSql::build(&ds, headline_profile(Lang::En), FinSqlConfig::standard(Lang::En));

    // Per-question reference pass.
    let wall = Instant::now();
    let unbatched = evaluate_ex_all_interleaved(&ds, Lang::En, opts.workers, Some(PER_DB), |db, q| {
        let mut rng = system.question_rng(db, q);
        system.answer(db, q, &mut rng)
    });
    let unbatched_wall = wall.elapsed();

    // Batched pass over the same slice.
    let metrics = EvalMetrics::new();
    let wall = Instant::now();
    let batched = evaluate_ex_all_interleaved_batched(
        &ds,
        Lang::En,
        opts.workers,
        Some(PER_DB),
        batch,
        |db, qs| system.answer_batch_with_metrics(db, qs, Some(&metrics)),
    );
    let batched_wall = wall.elapsed();
    let snap = metrics.snapshot();
    let n = unbatched.pooled().total as f64;
    println!(
        "unbatched: EX {}/{}  {:.1} questions/sec",
        unbatched.pooled().correct,
        unbatched.pooled().total,
        n / unbatched_wall.as_secs_f64()
    );
    println!(
        "batched (--batch {batch}): EX {}/{}  {:.1} questions/sec  \
         {} micro-batches (mean size {:.1}, max {}), {} amortised embeds",
        batched.pooled().correct,
        batched.pooled().total,
        n / batched_wall.as_secs_f64(),
        snap.batches,
        snap.mean_batch_size(),
        snap.max_batch,
        snap.amortised_embeds()
    );
    for db in DbId::ALL {
        assert_eq!(
            unbatched.outcome(db),
            batched.outcome(db),
            "{db}: batched EX counts must equal the per-question reference"
        );
    }
    assert!(snap.batches > 0, "the batched pass must actually batch");
    assert!(snap.max_batch > 1, "micro-batches never coalesced more than one question");

    // Scheduler front-end: cold pass fills the cache, warm pass must be
    // served from it with identical counts.
    let system = Arc::new(system);
    let cache = Arc::new(AnswerCache::unbounded());
    let sched_metrics = Arc::new(EvalMetrics::new());
    let scheduler = BatchScheduler::new(
        Arc::clone(&system),
        Some(Arc::clone(&cache)),
        Some(Arc::clone(&sched_metrics)),
        BatchConfig { max_batch: batch, ..BatchConfig::default() },
    );
    let mut passes = Vec::new();
    for pass in 0..2 {
        let wall = Instant::now();
        let outcome =
            evaluate_ex_all_interleaved(&ds, Lang::En, opts.workers, Some(PER_DB), |db, q| {
                scheduler.answer(db, q)
            });
        let wall = wall.elapsed();
        println!(
            "scheduler pass {pass}: EX {}/{}  {:.1} questions/sec",
            outcome.pooled().correct,
            outcome.pooled().total,
            n / wall.as_secs_f64()
        );
        passes.push(outcome);
    }
    assert_eq!(passes[0], unbatched, "scheduler answers must equal the per-question reference");
    assert_eq!(passes[0], passes[1], "warm scheduler pass must reproduce cold EX counts");
    let stats = cache.stats();
    println!(
        "cache: {} hits / {} misses / {} entries",
        stats.hits, stats.misses, stats.entries
    );
    assert!(stats.hits >= (3 * PER_DB) as u64, "warm pass must be served from the cache");
    drop(scheduler);
    println!("smoke_batch: OK");
}
