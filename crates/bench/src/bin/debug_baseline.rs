//! Failure attribution for the fine-tuned baselines and DAIL ICL.

use bench::{dataset, t5_profile};
use bull::{DbId, Lang, Split};
use finsql_core::baselines::FtBaseline;
use std::collections::HashMap;

fn main() {
    let ds = dataset();
    let tokenprep = FtBaseline::token_preprocessing(&ds, t5_profile(Lang::En), Lang::En);
    let mut by_phrasing: HashMap<bool, (usize, usize)> = HashMap::new();
    let mut by_arch: HashMap<&str, (usize, usize)> = HashMap::new();
    for e in ds.examples_for(DbId::Fund, Split::Dev) {
        let q = e.question(Lang::En);
        let mut rng = tokenprep.question_rng(DbId::Fund, q);
        let sql = tokenprep.answer(DbId::Fund, q, &mut rng);
        let ok = sqlengine::execution_accuracy(ds.db(DbId::Fund), &sql, &e.sql);
        let unseen = e.phrasing >= bull::dataset::TRAIN_PHRASINGS;
        let ent = by_phrasing.entry(unseen).or_insert((0, 0));
        ent.1 += 1; if ok { ent.0 += 1; }
        let ent = by_arch.entry(e.archetype).or_insert((0, 0));
        ent.1 += 1; if ok { ent.0 += 1; }
    }
    for (unseen, (c, t)) in &by_phrasing {
        println!("unseen_phrasing={unseen}: {c}/{t} = {:.1}%", 100.0 * *c as f64 / *t as f64);
    }
    let mut archs: Vec<_> = by_arch.into_iter().collect();
    archs.sort();
    for (a, (c, t)) in archs {
        println!("  {a:24} {c:3}/{t:3} = {:.0}%", 100.0 * c as f64 / t as f64);
    }
}
