use bench::{dataset, gpt_ex, SEED};
use bull::Lang;
use finsql_core::baselines::{GptMethod, GptModel};
fn main() {
    let ds = dataset();
    for (label, model, shots) in [("GPT-4", GptModel::Gpt4, 12usize), ("ChatGPT", GptModel::ChatGpt, 8)] {
        let (out, cost, _) = gpt_ex(&ds, Lang::En, GptMethod::DailSql { shots }, model, 40, SEED);
        println!("DAIL {label}: EX {:.1} cost {:.4}", out.ex_pct(), cost);
    }
}
