//! Regenerates the paper's Figure 2: per-database BULL details.

use bench::dataset;
use bull::stats::db_details;

fn main() {
    let ds = dataset();
    println!("Figure 2: BULL databases");
    println!(
        "{:<8} {:>8} {:>9} {:>9} {:>7} {:>6}",
        "DB", "#Tab Num", "#Avg Col", "#Max Col", "train", "dev"
    );
    for d in db_details(&ds) {
        println!(
            "{:<8} {:>8} {:>9.1} {:>9} {:>7} {:>6}",
            d.db.as_str(),
            d.tables,
            d.avg_cols,
            d.max_cols,
            d.train,
            d.dev
        );
    }
}
