//! Regenerates the paper's Figure 13: execution accuracy of
//! weights-merging-based few-shot LoRA on the macro-economy database,
//! across the four base models, as a function of the number of macro
//! training shots.
//!
//! LoRA: a plugin trained from scratch on only the k macro shots.
//! LoRA-Merge: the fund and stock plugins merged with uniform weights,
//! then fine-tuned further on the same k shots (paper §7.3).

use augment::{build_training_mix, AugmentationFlags};
use bench::{dataset, SEED};
use bull::{BullDataset, DbId, Lang, Split};
use crossenc::{CrossEncoder, InferenceMode};
use finsql_core::calibrate::{calibrate, CalibrationConfig};
use finsql_core::peft::{fewshot_from_scratch, fewshot_with_merge};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simllm::{
    BaseModelProfile, EmbeddingModel, GenConfig, LoraPlugin, PluginHub, SqlGenerator, TrainOpts,
    ValueIndex,
};

const SHOTS: &[usize] = &[0, 10, 25, 50, 100, 200, 400, 550];

fn main() {
    let ds = dataset();
    let lang_for = |p: &BaseModelProfile| {
        if p.name.contains("Baichuan") || p.name.contains("mT5") {
            Lang::Cn
        } else {
            Lang::En
        }
    };
    println!("Figure 13: EX of weights-merging-based few-shot LoRA on macro");
    println!("{:<14} {:>5} {:>9} {:>11} {:>9}", "model", "k", "LoRA", "LoRA-Merge", "gap");
    for profile in simllm::profiles::ALL_PROFILES {
        let lang = lang_for(profile);
        let base = EmbeddingModel::pretrained(SEED);
        let hub = PluginHub::new();
        // Source plugins on fund and stock (full training data).
        train_source_plugins(&ds, &base, &hub, lang);
        for &k in SHOTS {
            // Shots: the first k macro training examples, augmented.
            let pairs: Vec<(String, String)> = ds
                .examples_for(DbId::Macro, Split::Train)
                .into_iter()
                .take(k)
                .map(|e| (e.question(lang).to_string(), e.sql.clone()))
                .collect();
            let shots = build_training_mix(
                ds.db(DbId::Macro),
                &pairs,
                lang,
                AugmentationFlags::default(),
            );
            // Linker trained on fund + stock + the k macro shots.
            let linker = train_linker_with_shots(&ds, lang, k);
            let opts = TrainOpts { seed: SEED ^ k as u64, ..Default::default() };
            let scratch = fewshot_from_scratch(&base, &hub, &format!("macro-scratch-{k}"), &shots, opts);
            let merged = fewshot_with_merge(
                &base,
                &hub,
                &[&plugin_name(DbId::Fund, lang), &plugin_name(DbId::Stock, lang)],
                &format!("macro-merge-{k}"),
                &shots,
                opts,
            )
            .expect("source plugins exist");
            let ex_scratch = macro_ex(&ds, lang, &base, &linker, &scratch, profile);
            let ex_merge = macro_ex(&ds, lang, &base, &linker, &merged, profile);
            println!(
                "{:<14} {:>5} {:>8.1}% {:>10.1}% {:>+8.1}",
                profile.name,
                k,
                ex_scratch * 100.0,
                ex_merge * 100.0,
                (ex_merge - ex_scratch) * 100.0
            );
        }
        println!();
    }
}

use finsql_core::peft::plugin_name;

/// Trains fund+stock plugins into the hub (shared across k).
fn train_source_plugins(ds: &BullDataset, base: &EmbeddingModel, hub: &PluginHub, lang: Lang) {
    for db in [DbId::Fund, DbId::Stock] {
        finsql_core::peft::train_database_plugin(
            base,
            hub,
            ds,
            db,
            lang,
            AugmentationFlags::default(),
            TrainOpts { seed: SEED ^ db as u64, ..Default::default() },
        );
    }
}

/// Linker on fund + stock training data plus k macro shots.
fn train_linker_with_shots(ds: &BullDataset, lang: Lang, k: usize) -> CrossEncoder {
    use crossenc::{LinkExample, TrainConfig};
    let schemas: Vec<_> = DbId::ALL.iter().map(|&db| ds.db(db).catalog()).collect();
    let mut examples = Vec::new();
    for (si, &db) in DbId::ALL.iter().enumerate() {
        let take = if db == DbId::Macro { k } else { usize::MAX };
        for e in ds.examples_for(db, Split::Train).into_iter().take(take) {
            examples.push(LinkExample {
                question: e.question(lang).to_string(),
                gold_tables: e.gold_tables.clone(),
                gold_columns: e.gold_columns.clone(),
                schema_idx: si,
            });
        }
    }
    crossenc::train::train(lang, &schemas, &examples, TrainConfig { seed: SEED, ..Default::default() })
}

/// EX on the macro dev set for one plugin.
fn macro_ex(
    ds: &BullDataset,
    lang: Lang,
    base: &EmbeddingModel,
    linker: &CrossEncoder,
    plugin: &LoraPlugin,
    profile: &BaseModelProfile,
) -> f64 {
    let schema = ds.db(DbId::Macro).catalog();
    let views = crossenc::model::SchemaViews::build(schema, lang);
    let values = ValueIndex::build(ds.db(DbId::Macro));
    let generator = SqlGenerator::new(base, Some(plugin), profile);
    let calib = CalibrationConfig::default();
    let mut correct = 0usize;
    let mut total = 0usize;
    for e in ds.examples_for(DbId::Macro, Split::Dev) {
        let q = e.question(lang);
        let linked = linker.link(q, &views, InferenceMode::Parallel);
        let prompt_schema = linked.project(schema, 4, 8);
        let mut rng = StdRng::seed_from_u64(SEED ^ q.len() as u64 ^ total as u64);
        let candidates = generator.generate(
            q,
            &prompt_schema,
            &values,
            GenConfig { n_samples: 5, temperature: 0.7, skeleton_temperature: None },
            &mut rng,
        );
        let sql = calibrate(&candidates, schema, &calib)
            .unwrap_or_else(|| candidates.first().cloned().unwrap_or_default());
        if sqlengine::execution_accuracy(ds.db(DbId::Macro), &sql, &e.sql) {
            correct += 1;
        }
        total += 1;
    }
    correct as f64 / total.max(1) as f64
}
