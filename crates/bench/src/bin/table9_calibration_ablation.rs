//! Regenerates the paper's Table 9: the output-calibration ablation.

use bench::{dataset, finsql_ex, headline_profile};
use bull::Lang;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use finsql_core::CalibrationConfig;

fn main() {
    let ds = dataset();
    let rows: [(&str, CalibrationConfig, usize); 4] = [
        ("FinSQL", CalibrationConfig::default(), 5),
        ("w/o Output Calibration", CalibrationConfig::off(), 5),
        (
            "w/o Self-Consistency",
            CalibrationConfig { self_consistency: false, ..Default::default() },
            5,
        ),
        ("w/o Alignment", CalibrationConfig { alignment: false, ..Default::default() }, 5),
    ];
    println!("Table 9: Effect of Output Calibration");
    println!("{:<26} {:>13} {:>13}", "Technique", "EX (Chinese)", "EX (English)");
    let mut results: Vec<(&str, f64, f64)> = Vec::new();
    for (label, calibration, n) in rows {
        let mut ex = [0.0f64; 2];
        for (i, lang) in [Lang::Cn, Lang::En].into_iter().enumerate() {
            let config = FinSqlConfig {
                calibration,
                n_candidates: n,
                ..FinSqlConfig::standard(lang)
            };
            let system = FinSql::build(&ds, headline_profile(lang), config);
            ex[i] = finsql_ex(&system, &ds).ex_pct();
        }
        results.push((label, ex[0], ex[1]));
    }
    let (base_cn, base_en) = (results[0].1, results[0].2);
    for (i, (label, cn, en)) in results.iter().enumerate() {
        if i == 0 {
            println!("{label:<26} {cn:>13.1} {en:>13.1}");
        } else {
            println!(
                "{label:<26} {:>13} {:>13}",
                format!("{:.1} ({:+.1})", cn, cn - base_cn),
                format!("{:.1} ({:+.1})", en, en - base_en)
            );
        }
    }
}
