//! Regenerates `results/BENCH_serve.json`: open-loop serving latency of
//! `finsqld` over real loopback TCP at several offered rates.
//!
//! For each offered rate, a fresh server is bound on a loopback port and
//! a seeded schedule of Poisson arrivals (exponential inter-arrival
//! times) over a Zipf(s=1.0) question population is replayed by a small
//! pool of client connections. The generator is **open-loop**: requests
//! are sent at their scheduled arrival time whether or not earlier
//! responses have returned, and per-request latency is measured from the
//! *scheduled* arrival to response completion — so queueing delay under
//! overload is measured instead of silently omitted (no coordinated
//! omission). Every `Ok` payload is compared byte-for-byte against a
//! fresh uncached reference minted before any server starts; a mismatch
//! is a stale response and fails the run. `Busy` responses are the
//! admission controller shedding load — counted and reported, never
//! wrong.
//!
//! Flags: `--serve-secs F` (offered seconds of traffic per rate, default
//! 1.0), `--serve-population N` (unique questions, default 1024),
//! `--serve-conns N` (client connections, default 4), plus the shared
//! harness flags `--workers N` / `--batch N` for the server's scheduler
//! pool.

use bench::traffic::{build_population, reference_answers, ZipfSampler};
use bench::{dataset, headline_profile, HarnessOpts};
use bull::Lang;
use finsql_core::batch::BatchConfig;
use finsql_core::cache::AnswerCache;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use finsql_serve::wire::{Frame, FrameDecoder, Kind, Status};
use finsql_serve::{BlockingClient, ServeConfig, Server};
use bull::DbId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Offered rates (questions/sec). The top rate is chosen to exceed what
/// the compute path sustains cold, so admission-control shedding is
/// exercised, not just measured at comfort.
const RATES: [f64; 3] = [2_000.0, 8_000.0, 32_000.0];
const SEED: u64 = 0x5E17_F00D;

/// What one connection's reader observed.
#[derive(Default)]
struct ConnOutcome {
    /// Open-loop latency (scheduled arrival → response complete), ns,
    /// `Ok` responses only.
    ok_latency_ns: Vec<u64>,
    busy: u64,
    shutdown: u64,
    stale: u64,
}

/// One rate's aggregated result.
struct RateOutcome {
    offered_qps: f64,
    requests: usize,
    served: u64,
    busy: u64,
    shutdown: u64,
    stale: u64,
    /// Sorted open-loop latencies of served requests, ns.
    latency_ns: Vec<u64>,
    wall: Duration,
    cache_hits: u64,
    cache_misses: u64,
}

impl RateOutcome {
    fn quantile_us(&self, q: f64) -> f64 {
        if self.latency_ns.is_empty() {
            return 0.0;
        }
        let idx = ((self.latency_ns.len() - 1) as f64 * q).round() as usize;
        self.latency_ns[idx.min(self.latency_ns.len() - 1)] as f64 / 1e3
    }

    fn achieved_qps(&self) -> f64 {
        (self.served + self.busy + self.shutdown) as f64 / self.wall.as_secs_f64()
    }
}

fn run_rate(
    engine: &Arc<FinSql>,
    population: &[(DbId, String)],
    refs: &[String],
    rate: f64,
    secs: f64,
    conns: usize,
    config: ServeConfig,
) -> RateOutcome {
    // Mint the schedule up front: Poisson arrivals at `rate`, question
    // ranks from Zipf(1.0). Seed folds in the rate so each rate gets its
    // own deterministic stream.
    let requests = (rate * secs).round() as usize;
    let zipf = ZipfSampler::new(population.len(), 1.0);
    let mut rng = StdRng::seed_from_u64(SEED ^ rate.to_bits());
    let mut arrivals_ns: Vec<u64> = Vec::with_capacity(requests);
    let mut qidx: Vec<u32> = Vec::with_capacity(requests);
    let mut t = 0.0f64;
    for _ in 0..requests {
        let u: f64 = rng.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / rate;
        arrivals_ns.push((t * 1e9) as u64);
        qidx.push(zipf.sample(&mut rng) as u32);
    }

    // Fresh cache per rate: every rate starts cold, so runs compare like
    // for like.
    let cache = Arc::new(AnswerCache::unbounded());
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(engine),
        Some(Arc::clone(&cache)),
        None,
        config,
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.spawn();

    let streams: Vec<TcpStream> = (0..conns)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect load connection");
            let _ = s.set_nodelay(true);
            s
        })
        .collect();

    let arrivals_ns = &arrivals_ns;
    let qidx = &qidx;
    let start = Instant::now();
    let outcomes: Vec<ConnOutcome> = crossbeam::scope(|scope| {
        let mut joins = Vec::new();
        for (c, stream) in streams.into_iter().enumerate() {
            let reader_stream = stream.try_clone().expect("clone stream for reader");
            // Requests are partitioned round-robin over connections; the
            // reader knows exactly how many responses to expect.
            let mine: Vec<usize> = (c..requests).step_by(conns.max(1)).collect();
            let writer = {
                let mine = mine.clone();
                let mut stream = stream;
                scope.spawn(move |_| {
                    for &i in &mine {
                        // Open loop: send at the scheduled instant,
                        // regardless of outstanding responses.
                        let target = start + Duration::from_nanos(arrivals_ns[i]);
                        let now = Instant::now();
                        if target > now {
                            std::thread::sleep(target - now);
                        }
                        let (db, question) = &population[qidx[i] as usize];
                        let frame = Frame::request(i as u64, db.index() as u8, question);
                        stream.write_all(&frame.encode()).expect("send request");
                    }
                })
            };
            let reader = scope.spawn(move |_| {
                let mut stream = reader_stream;
                let mut decoder = FrameDecoder::new();
                let mut buf = [0u8; 16384];
                let mut out = ConnOutcome::default();
                let mut remaining = mine.len();
                while remaining > 0 {
                    let n = stream.read(&mut buf).expect("read response");
                    assert!(n > 0, "server closed the connection mid-run");
                    decoder.push(&buf[..n]);
                    while let Some(frame) =
                        decoder.next_frame().expect("well-formed response stream")
                    {
                        let done_ns = start.elapsed().as_nanos() as u64;
                        assert_eq!(frame.kind, Kind::Response);
                        let i = frame.request_id as usize;
                        match frame.status().expect("known status") {
                            Status::Ok => {
                                out.ok_latency_ns
                                    .push(done_ns.saturating_sub(arrivals_ns[i]));
                                if frame.payload.as_slice()
                                    != refs[qidx[i] as usize].as_bytes()
                                {
                                    out.stale += 1;
                                }
                            }
                            Status::Busy => out.busy += 1,
                            Status::Shutdown => out.shutdown += 1,
                            other => panic!("unexpected status {other:?} for request {i}"),
                        }
                        remaining -= 1;
                    }
                }
                out
            });
            joins.push((writer, reader));
        }
        joins
            .into_iter()
            .map(|(w, r)| {
                w.join().expect("writer thread panicked");
                r.join().expect("reader thread panicked")
            })
            .collect()
    })
    .expect("load generator panicked");
    let wall = start.elapsed();

    // The STATS verb over the same wire, then a graceful drain.
    let mut client = BlockingClient::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    let report = handle.shutdown().expect("server thread must exit cleanly");

    let mut latency_ns: Vec<u64> = Vec::new();
    let (mut busy, mut shutdown, mut stale) = (0u64, 0u64, 0u64);
    for mut o in outcomes {
        latency_ns.append(&mut o.ok_latency_ns);
        busy += o.busy;
        shutdown += o.shutdown;
        stale += o.stale;
    }
    latency_ns.sort_unstable();
    assert_eq!(
        report.served,
        latency_ns.len() as u64,
        "the server's count of Ok responses must match the client's"
    );
    assert_eq!(report.busy_rejected, busy, "Busy counts must agree across the wire");
    assert!(
        stats.contains(&format!("\"served\":{}", report.served)),
        "STATS must agree with the lifetime report: {stats}"
    );
    let cache_stats = cache.stats();
    RateOutcome {
        offered_qps: rate,
        requests,
        served: report.served,
        busy,
        shutdown,
        stale,
        latency_ns,
        wall,
        cache_hits: cache_stats.hits,
        cache_misses: cache_stats.misses,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut secs = 1.0f64;
    let mut population_size = 1024usize;
    let mut conns = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--serve-secs" => {
                secs = args.next().and_then(|v| v.parse().ok()).expect("--serve-secs F");
            }
            "--serve-population" => {
                population_size =
                    args.next().and_then(|v| v.parse().ok()).expect("--serve-population N");
            }
            "--serve-conns" => {
                conns = args.next().and_then(|v| v.parse().ok()).expect("--serve-conns N");
            }
            _ => {}
        }
    }
    assert!(secs > 0.0 && population_size > 0 && conns > 0);

    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: if opts.batch > 0 { opts.batch } else { 8 },
            flush: Duration::from_micros(200),
            workers: if opts.workers > 0 { opts.workers } else { 4 },
            queue_cap: 256,
        },
        ..ServeConfig::default()
    };

    let ds = dataset();
    let engine = Arc::new(FinSql::build(
        &ds,
        headline_profile(Lang::En),
        FinSqlConfig::standard(Lang::En),
    ));
    let population = build_population(&ds, Lang::En, population_size);
    println!(
        "serve: {}s of Zipf(1.0) traffic over {} questions per rate, {} connections, \
         budget {} in flight",
        secs,
        population.len(),
        conns,
        config.max_in_flight
    );
    let refs = reference_answers(&engine, &population);

    let mut rows: Vec<String> = Vec::new();
    for rate in RATES {
        let out = run_rate(&engine, &population, &refs, rate, secs, conns, config);
        assert_eq!(
            out.stale, 0,
            "a served answer at {rate} q/s differed from the fresh reference"
        );
        assert_eq!(out.served + out.busy + out.shutdown, out.requests as u64);
        println!(
            "offered {:>7.0} q/s  served {:>6}  busy {:>6}  p50 {:>9.1}us  p99 {:>9.1}us  \
             p999 {:>9.1}us  achieved {:>8.0} q/s",
            out.offered_qps,
            out.served,
            out.busy,
            out.quantile_us(0.50),
            out.quantile_us(0.99),
            out.quantile_us(0.999),
            out.achieved_qps(),
        );
        rows.push(format!(
            "    {{\"offered_qps\": {:.0}, \"requests\": {}, \"served\": {}, \
             \"busy_rejected\": {}, \"shutdown_rejected\": {}, \"stale\": {}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \
             \"wall_secs\": {:.3}, \"achieved_qps\": {:.1}, \"cache_hits\": {}, \
             \"cache_misses\": {}}}",
            out.offered_qps,
            out.requests,
            out.served,
            out.busy,
            out.shutdown,
            out.stale,
            out.quantile_us(0.50),
            out.quantile_us(0.99),
            out.quantile_us(0.999),
            out.wall.as_secs_f64(),
            out.achieved_qps(),
            out.cache_hits,
            out.cache_misses,
        ));
    }

    let json = format!(
        "{{\n  \"spec\": {{\"secs_per_rate\": {secs}, \"population\": {}, \
         \"connections\": {conns}, \"zipf_s\": 1.0, \"max_in_flight\": {}, \
         \"workers\": {}, \"max_batch\": {}, \"queue_cap\": {}, \"seed\": {SEED}}},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        population.len(),
        config.max_in_flight,
        config.batch.workers,
        config.batch.max_batch,
        config.batch.queue_cap,
        rows.join(",\n"),
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_serve.json", json).expect("write BENCH_serve.json");
    println!("wrote results/BENCH_serve.json");
}
