//! Regenerates `results/BENCH_link.json`: schema-linking throughput of
//! the batched matrix sweep vs the per-question paths over the full
//! three-database dev sweep, plus the end-to-end answer-path throughput
//! with batched linking wired in, against the recorded PR 3 baseline.
//!
//! Two measurements, both over every dev question of every database:
//!
//! 1. *Linking only* — per-question serial, per-question parallel, and
//!    one `link_batch` matrix sweep per database, with the three outputs
//!    asserted bitwise identical before any number is reported.
//! 2. *Full answer path* — `answer_batch_cached` cold and warm, the
//!    measurement `BENCH_batch.json` records, now with linking riding
//!    the precomputed schema feature matrix.

use bench::{dataset, headline_profile, HarnessOpts};
use bull::{DbId, Lang, Split};
use crossenc::{InferenceMode, LinkedSchema};
use finsql_core::cache::AnswerCache;
use finsql_core::metrics::EvalMetrics;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::time::{Duration, Instant};

/// The batched cold-cache answer-path throughput recorded at the PR 3
/// head (commit 3217b68) on this machine, full three-database dev sweep,
/// batch size 8 — linking still per-question inside the batch.
const PR3_BATCHED_COLD_QPS: f64 = 1119.0;

/// `(index, score-bits)` image of one ranking level — bitwise comparable.
type RankBits = Vec<(usize, u32)>;

fn bits(linked: &LinkedSchema) -> (RankBits, Vec<RankBits>) {
    let key = |v: &[(usize, f32)]| -> RankBits {
        v.iter().map(|(i, s)| (*i, s.to_bits())).collect()
    };
    (key(&linked.tables), linked.columns.iter().map(|c| key(c)).collect())
}

fn main() {
    let opts = HarnessOpts::from_args();
    let batch = if opts.batch == 0 { 8 } else { opts.batch };
    let ds = dataset();
    let system = FinSql::build(&ds, headline_profile(Lang::En), FinSqlConfig::standard(Lang::En));

    let per_db: Vec<(DbId, Vec<&str>)> = DbId::ALL
        .into_iter()
        .map(|db| {
            let qs =
                ds.examples_for(db, Split::Dev).into_iter().map(|e| e.question(Lang::En)).collect();
            (db, qs)
        })
        .collect();
    let total: usize = per_db.iter().map(|(_, qs)| qs.len()).sum();

    // 1. Linking-only sweep, three paths, asserted bitwise identical.
    let mut serial_wall = Duration::ZERO;
    let mut parallel_wall = Duration::ZERO;
    let mut batched_wall = Duration::ZERO;
    for (db, qs) in &per_db {
        let rt = system.runtime(*db);
        let start = Instant::now();
        let serial: Vec<LinkedSchema> =
            qs.iter().map(|q| system.linker.link(q, &rt.views, InferenceMode::Serial)).collect();
        serial_wall += start.elapsed();
        let start = Instant::now();
        let parallel: Vec<LinkedSchema> =
            qs.iter().map(|q| system.linker.link(q, &rt.views, InferenceMode::Parallel)).collect();
        parallel_wall += start.elapsed();
        let start = Instant::now();
        let batched = system.linker.link_batch(qs, &rt.link_matrix);
        batched_wall += start.elapsed();
        for (((q, s), p), b) in qs.iter().zip(&serial).zip(&parallel).zip(&batched) {
            assert_eq!(bits(s), bits(p), "{db}: serial vs parallel diverged on {q:?}");
            assert_eq!(bits(s), bits(b), "{db}: batched sweep diverged on {q:?}");
        }
    }
    let lps = |wall: Duration| total as f64 / wall.as_secs_f64().max(1e-9);
    println!("linking-only sweep: {total} questions");
    println!("  per-question serial:   {:>9.0} links/sec  ({serial_wall:.2?})", lps(serial_wall));
    println!("  per-question parallel: {:>9.0} links/sec  ({parallel_wall:.2?})", lps(parallel_wall));
    println!("  batched matrix sweep:  {:>9.0} links/sec  ({batched_wall:.2?})", lps(batched_wall));
    let link_speedup = lps(batched_wall) / lps(serial_wall);
    println!("  speedup batched/serial: {link_speedup:.2}x");

    // 2. Full answer path, batched engine, cold then warm.
    let cache = AnswerCache::unbounded();
    let metrics = EvalMetrics::new();
    let cold = Instant::now();
    for (db, qs) in &per_db {
        for chunk in qs.chunks(batch) {
            system.answer_batch_cached(&cache, *db, chunk, Some(&metrics));
        }
    }
    let answer_cold = cold.elapsed();
    let warm = Instant::now();
    for (db, qs) in &per_db {
        for chunk in qs.chunks(batch) {
            system.answer_batch_cached(&cache, *db, chunk, Some(&metrics));
        }
    }
    let answer_warm = warm.elapsed();
    let qps = |wall: Duration| total as f64 / wall.as_secs_f64();
    let speedup_vs_pr3 = qps(answer_cold) / PR3_BATCHED_COLD_QPS;
    println!("answer path (batch size {batch}):");
    println!("  cold: {:>8.1} q/s  ({answer_cold:.2?})", qps(answer_cold));
    println!("  warm: {:>8.1} q/s  ({answer_warm:.2?})", qps(answer_warm));
    println!(
        "  vs PR 3 batched cold baseline ({PR3_BATCHED_COLD_QPS} q/s): {speedup_vs_pr3:.2}x"
    );
    let snap = metrics.snapshot();
    print!("{}", snap.report(answer_cold + answer_warm));

    let json = format!(
        "{{\n  \"sweep\": {{\"questions\": {total}, \"per_db\": {{{}}}}},\n  \
         \"batch\": {batch},\n  \"linking_only\": {{\n    \
         \"per_question_serial\": {{\"wall_secs\": {:.4}, \"links_per_sec\": {:.0}}},\n    \
         \"per_question_parallel\": {{\"wall_secs\": {:.4}, \"links_per_sec\": {:.0}}},\n    \
         \"batched_matrix_sweep\": {{\"wall_secs\": {:.4}, \"links_per_sec\": {:.0}}},\n    \
         \"speedup_batched_vs_serial\": {:.2},\n    \
         \"bitwise_identical\": true\n  }},\n  \"answer_path\": {{\n    \
         \"batched_cold\": {{\"wall_secs\": {:.3}, \"questions_per_sec\": {:.1}}},\n    \
         \"batched_warm\": {{\"wall_secs\": {:.3}, \"questions_per_sec\": {:.1}}}\n  }},\n  \
         \"pr3_baseline\": {{\"commit\": \"3217b68\", \"batched_cold_questions_per_sec\": {PR3_BATCHED_COLD_QPS}}},\n  \
         \"speedup_cold_vs_pr3_batched\": {:.2}\n}}\n",
        per_db
            .iter()
            .map(|(db, qs)| format!("\"{db}\": {}", qs.len()))
            .collect::<Vec<_>>()
            .join(", "),
        serial_wall.as_secs_f64(),
        lps(serial_wall),
        parallel_wall.as_secs_f64(),
        lps(parallel_wall),
        batched_wall.as_secs_f64(),
        lps(batched_wall),
        link_speedup,
        answer_cold.as_secs_f64(),
        qps(answer_cold),
        answer_warm.as_secs_f64(),
        qps(answer_warm),
        speedup_vs_pr3,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_link.json", json).expect("write BENCH_link.json");
    println!("wrote results/BENCH_link.json");
}
