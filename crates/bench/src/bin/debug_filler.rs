//! Oracle-shape slot-filler accuracy: feed the gold shape, perfect skill.

use bench::{dataset, headline_profile};
use bull::{DbId, Lang, Split};
use crossenc::InferenceMode;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use simllm::slots::{FillOptions, SlotFiller};
use std::collections::HashMap;

fn main() {
    let ds = dataset();
    let system = FinSql::build(&ds, headline_profile(Lang::En), FinSqlConfig::standard(Lang::En));
    let rt = system.runtime(DbId::Fund);
    let mut by_arch: HashMap<&str, (usize, usize)> = HashMap::new();
    let mut fails: HashMap<&str, Vec<(String, String, String)>> = HashMap::new();
    for e in ds.examples_for(DbId::Fund, Split::Dev) {
        let q = e.question(Lang::En);
        let Some(shape) = simllm::shape_of(&e.sql) else { continue };
        let linked = system.linker.link(q, &rt.views, InferenceMode::Parallel);
        let prompt_schema = linked.project(&rt.schema, 4, 8);
        let filler = SlotFiller::new(&prompt_schema, &rt.values, q);
        // The shared per-question stream, so this probe's draws line up
        // with what the same question sees under evaluation.
        let mut rng = system.question_rng(DbId::Fund, q);
        let opts = FillOptions { cot: true, slot_skill: 1.0, join_skill: 1.0 };
        let sql = filler.fill(shape, &opts, &mut rng).unwrap_or_else(|| filler.fallback_sql());
        let ok = sqlengine::execution_accuracy(ds.db(DbId::Fund), &sql, &e.sql);
        let ent = by_arch.entry(e.archetype).or_insert((0, 0));
        ent.1 += 1;
        if ok { ent.0 += 1; } else {
            let v = fails.entry(e.archetype).or_default();
            if v.len() < 4 { v.push((q.to_string(), e.sql.clone(), sql)); }
        }
    }
    let mut archs: Vec<_> = by_arch.iter().collect();
    archs.sort();
    let (mut c, mut t) = (0, 0);
    for (a, (ca, ta)) in &archs {
        println!("{a:24} {ca:3}/{ta:3} = {:.0}%", 100.0 * *ca as f64 / *ta as f64);
        c += ca; t += ta;
    }
    println!("TOTAL {c}/{t} = {:.1}%", 100.0 * c as f64 / t as f64);
    println!("\n--- sample failures ---");
    for (a, v) in fails.iter() {
        for (q, gold, got) in v.iter().take(4) {
            println!("[{a}] {q}\n  gold: {gold}\n  got : {got}\n");
        }
    }
}
