//! CI smoke run for the `finsqld` serving front-end over real loopback
//! TCP. Asserts (1) every served answer is byte-identical to the fresh
//! uncached library reference — the wire, the driver loop and the
//! scheduler can change latency, never an answer; (2) the `STATS` verb
//! counts every request; (3) garbage bytes are answered `BadFrame` and
//! the connection is closed; (4) a pipelined burst against an admission
//! budget of one is shed with `Busy`, never queued unboundedly and never
//! answered wrong; and (5) both servers drain and join cleanly. Exits
//! non-zero on any violation.

use bench::traffic::{build_population, reference_answers};
use bench::{dataset, headline_profile, HarnessOpts};
use bull::{DbId, Lang};
use finsql_core::batch::BatchConfig;
use finsql_core::cache::AnswerCache;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use finsql_serve::wire::{Frame, FrameDecoder, Kind, Status};
use finsql_serve::{BlockingClient, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let opts = HarnessOpts::from_args();
    let ds = dataset();
    let engine = Arc::new(FinSql::build(
        &ds,
        headline_profile(Lang::En),
        FinSqlConfig::standard(Lang::En),
    ));
    let population = build_population(&ds, Lang::En, 200);
    let refs = reference_answers(&engine, &population);
    println!("smoke serve: {} questions across {} databases", population.len(), DbId::ALL.len());

    // 1. Byte identity over a live socket, plus protocol-level error
    // handling on the same server.
    let mut config = ServeConfig::default();
    if opts.workers > 0 {
        config.batch.workers = opts.workers;
    }
    if opts.batch > 0 {
        config.batch.max_batch = opts.batch;
    }
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        Some(Arc::new(AnswerCache::unbounded())),
        None,
        config,
    )
    .expect("bind loopback");
    let handle = server.spawn();
    let mut client = BlockingClient::connect(handle.addr()).expect("connect");
    for ((db, question), reference) in population.iter().zip(&refs) {
        let (status, answer) = client.ask(*db, question).expect("ask");
        assert_eq!(status, Status::Ok, "{db:?}: {question}");
        assert_eq!(
            &answer, reference,
            "a served answer must be byte-identical to the library path: {db:?}: {question}"
        );
    }
    let stats = client.stats().expect("stats");
    assert!(
        stats.contains(&format!("\"served\":{}", population.len())),
        "STATS must count every served request: {stats}"
    );
    assert!(stats.contains("\"p99_ns\":"), "STATS must expose latency quantiles: {stats}");

    // Garbage on a fresh connection: BadFrame, then close.
    let mut garbage = TcpStream::connect(handle.addr()).expect("connect garbage");
    garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write garbage");
    garbage.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
    let mut bytes = Vec::new();
    garbage.read_to_end(&mut bytes).expect("read until server closes");
    let mut decoder = FrameDecoder::new();
    decoder.push(&bytes);
    let frame = decoder
        .next_frame()
        .expect("the rejection itself is well-formed")
        .expect("a BadFrame response must arrive before close");
    assert_eq!(frame.status(), Some(Status::BadFrame));

    client.shutdown_server().expect("shutdown handshake");
    let report = handle.join().expect("server thread must exit cleanly");
    assert_eq!(report.served as usize, population.len());
    assert!(report.bad_frames >= 1, "the garbage connection must be counted: {report:?}");
    println!(
        "byte identity: {} served answers matched the library path; garbage got BadFrame",
        report.served
    );

    // 2. Admission control: budget of one in-flight request, one slow
    // worker — a pipelined burst must shed with Busy immediately.
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        Some(Arc::new(AnswerCache::unbounded())),
        None,
        ServeConfig {
            max_in_flight: 1,
            batch: BatchConfig {
                max_batch: 1,
                flush: Duration::from_micros(1),
                workers: 1,
                queue_cap: 1,
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let handle = server.spawn();
    let mut client = BlockingClient::connect(handle.addr()).expect("connect");
    let burst = 12u64;
    for i in 0..burst {
        let question = format!("how many funds exist (smoke burst {i})");
        client
            .send(&Frame::request(i, DbId::Fund.index() as u8, &question))
            .expect("pipelined send");
    }
    let (mut ok, mut busy) = (0u64, 0u64);
    for _ in 0..burst {
        let frame = client.recv().expect("one response per request");
        assert_eq!(frame.kind, Kind::Response);
        match frame.status().expect("known status") {
            Status::Ok => ok += 1,
            Status::Busy => busy += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert!(ok >= 1, "at least the slot-holder is served");
    assert!(busy >= 1, "a 12-deep burst against budget 1 must shed");
    assert_eq!(ok + busy, burst, "every request gets exactly one response");
    client.shutdown_server().expect("shutdown handshake");
    let report = handle.join().expect("server thread must exit cleanly");
    assert_eq!(report.served, ok);
    assert_eq!(report.busy_rejected, busy);
    println!("admission: {ok} served, {busy} shed with Busy under a budget of 1");
    println!("smoke_serve: OK");
}
