//! Regenerates the paper's Table 1: dataset statistics comparison.

use bench::dataset;
use bull::stats::{bull_stats, BIRD, SPIDER, WIKISQL};

fn main() {
    let ds = dataset();
    let bull = bull_stats(&ds);
    println!("Table 1: Differences Between Datasets");
    println!("{:<12} {:>9} {:>10} {:>11}", "Dataset", "Example", "Table/DB", "Column/DB");
    for s in [&WIKISQL, &SPIDER, &BIRD, &bull] {
        println!(
            "{:<12} {:>9} {:>10.1} {:>11.1}",
            s.name, s.examples, s.tables_per_db, s.columns_per_db
        );
    }
}
