//! Regenerates the paper's Table 5: overall EX and cost per SQL on
//! BULL-cn.

fn main() {
    bench::run_overall_table(bull::Lang::Cn);
}
