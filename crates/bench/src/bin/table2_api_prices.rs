//! Regenerates the paper's Table 2: GPT API prices, plus the prompt-size
//! context they imply for BULL.

use bench::dataset;
use bull::{DbId, Lang};
use finsql_core::render_prompt;
use textenc::{approx_token_count, GPT_35_TURBO, GPT_4_32K, GPT_4_8K};

fn main() {
    println!("Table 2: API Price of GPT Models");
    println!("{:<20} {:>18} {:>18}", "Model", "Input", "Output");
    for p in [GPT_4_8K, GPT_4_32K, GPT_35_TURBO] {
        println!(
            "{:<20} {:>13} / 1K {:>13} / 1K",
            p.model,
            format!("${}", p.input_per_1k),
            format!("${}", p.output_per_1k),
        );
    }
    // Context pressure: full-schema prompt sizes per database.
    let ds = dataset();
    println!("\nFull-schema prompt sizes (tokens):");
    for db in DbId::ALL {
        let t = approx_token_count(&render_prompt("q", ds.db(db).catalog(), Lang::En));
        println!("  {db}: {t} (GPT-4-8k limit: {})", GPT_4_8K.context_limit);
    }
}
