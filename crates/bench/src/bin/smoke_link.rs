//! CI smoke run for batched schema linking: for a slice of every
//! database's dev set, link each question per-question (serial *and*
//! parallel) and through the batched matrix sweep, and assert the three
//! rankings are bitwise identical — same element order, same f32 score
//! bits. Also records the linking recall@k counters over the slice and
//! asserts the batched sweep is not slower than the per-question serial
//! path. Exits non-zero on any violation, so CI catches a feature
//! matrix that drifts from the per-question featuriser.

use bench::{dataset, headline_profile, HarnessOpts};
use bull::{DbId, Lang, Split};
use crossenc::{InferenceMode, LinkedSchema};
use finsql_core::metrics::EvalMetrics;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::time::Instant;

const PER_DB: usize = 60;

/// `(index, score-bits)` image of one ranking level — bitwise comparable.
type RankBits = Vec<(usize, u32)>;

fn bits(linked: &LinkedSchema) -> (RankBits, Vec<RankBits>) {
    let key = |v: &[(usize, f32)]| -> RankBits {
        v.iter().map(|(i, s)| (*i, s.to_bits())).collect()
    };
    (key(&linked.tables), linked.columns.iter().map(|c| key(c)).collect())
}

fn main() {
    let _opts = HarnessOpts::from_args();
    let ds = dataset();
    let system = FinSql::build(&ds, headline_profile(Lang::En), FinSqlConfig::standard(Lang::En));
    let metrics = EvalMetrics::new();

    let mut total = 0usize;
    let mut serial_wall = std::time::Duration::ZERO;
    let mut batched_wall = std::time::Duration::ZERO;
    for db in DbId::ALL {
        let rt = system.runtime(db);
        let dev = ds.examples_for(db, Split::Dev);
        let slice: Vec<&bull::BullExample> = dev.into_iter().take(PER_DB).collect();
        let questions: Vec<&str> = slice.iter().map(|e| e.question(Lang::En)).collect();
        total += questions.len();

        let start = Instant::now();
        let serial: Vec<LinkedSchema> = questions
            .iter()
            .map(|q| system.linker.link(q, &rt.views, InferenceMode::Serial))
            .collect();
        serial_wall += start.elapsed();
        let parallel: Vec<LinkedSchema> = questions
            .iter()
            .map(|q| system.linker.link(q, &rt.views, InferenceMode::Parallel))
            .collect();
        let start = Instant::now();
        let batched = system.linker.link_batch(&questions, &rt.link_matrix);
        batched_wall += start.elapsed();

        assert_eq!(batched.len(), questions.len());
        for (((q, s), p), b) in questions.iter().zip(&serial).zip(&parallel).zip(&batched) {
            assert_eq!(bits(s), bits(p), "{db}: serial vs parallel diverged on {q:?}");
            assert_eq!(bits(s), bits(b), "{db}: batched sweep diverged on {q:?}");
        }
        system.record_link_recall(db, &slice, &metrics);
        println!("{db}: {} questions bitwise-identical across all three paths", questions.len());
    }

    let snap = metrics.snapshot();
    println!(
        "link recall over {} labelled examples: tables {:.1}%, columns {:.1}%",
        snap.link_examples,
        snap.link_table_recall() * 100.0,
        snap.link_column_recall() * 100.0
    );
    assert!(snap.link_examples > 0, "recall must be measured over labelled examples");
    assert!(
        snap.link_table_recall() > 0.5,
        "top-k table recall collapsed: {:.3}",
        snap.link_table_recall()
    );

    let qps = |wall: std::time::Duration| total as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "per-question serial: {:.0} links/sec; batched matrix sweep: {:.0} links/sec",
        qps(serial_wall),
        qps(batched_wall)
    );
    assert!(
        batched_wall <= serial_wall,
        "batched sweep ({batched_wall:.2?}) slower than per-question serial ({serial_wall:.2?})"
    );
    println!("smoke_link: OK");
}
