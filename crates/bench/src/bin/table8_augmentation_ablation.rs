//! Regenerates the paper's Table 8: the hybrid data augmentation
//! ablation. As in the paper, output calibration is disabled here to
//! isolate the augmentation effect.

use augment::AugmentationFlags;
use bench::{dataset, finsql_ex, headline_profile};
use bull::Lang;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use finsql_core::CalibrationConfig;

fn main() {
    let ds = dataset();
    let full = AugmentationFlags::default();
    let rows: [(&str, AugmentationFlags); 5] = [
        ("Hybrid Data Augmentation", full),
        ("w/o CoT Data", AugmentationFlags { cot: false, ..full }),
        ("w/o Synonyms Data", AugmentationFlags { synonyms: false, ..full }),
        ("w/o Skeleton Data", AugmentationFlags { skeleton: false, ..full }),
        ("w/o Augmented Data", AugmentationFlags::none()),
    ];
    println!("Table 8: Effect of data augmentation (no output calibration)");
    println!("{:<28} {:>13} {:>13}", "Technique", "EX (English)", "EX (Chinese)");
    let mut results: Vec<(&str, f64, f64)> = Vec::new();
    for (label, flags) in rows {
        let mut ex = [0.0f64; 2];
        for (i, lang) in [Lang::En, Lang::Cn].into_iter().enumerate() {
            let config = FinSqlConfig {
                augmentation: flags,
                calibration: CalibrationConfig::off(),
                n_candidates: 1,
                ..FinSqlConfig::standard(lang)
            };
            let system = FinSql::build(&ds, headline_profile(lang), config);
            ex[i] = finsql_ex(&system, &ds).ex_pct();
        }
        results.push((label, ex[0], ex[1]));
    }
    let (base_en, base_cn) = (results[0].1, results[0].2);
    for (i, (label, en, cn)) in results.iter().enumerate() {
        if i == 0 {
            println!("{label:<28} {en:>13.1} {cn:>13.1}");
        } else {
            println!(
                "{label:<28} {:>13} {:>13}",
                format!("{:.1} ({:+.1})", en, en - base_en),
                format!("{:.1} ({:+.1})", cn, cn - base_cn)
            );
        }
    }
}
