//! Shared harness for the benchmark binaries that regenerate every table
//! and figure of the paper.

use bull::{BullDataset, DbId, Lang};
use finsql_core::baselines::{FtBaseline, GptBaseline, GptMethod, GptModel};
use finsql_core::eval::{evaluate_ex, EvalOutcome};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use simllm::BaseModelProfile;

/// The seed every experiment uses (recorded in EXPERIMENTS.md).
pub const SEED: u64 = bull::DEFAULT_SEED;

/// Builds (or reuses) the benchmark dataset.
pub fn dataset() -> BullDataset {
    bull::build(SEED)
}

/// The base-model profile the paper pairs with each register.
pub fn headline_profile(lang: Lang) -> &'static BaseModelProfile {
    match lang {
        Lang::En => &simllm::profiles::LLAMA2_13B,
        Lang::Cn => &simllm::profiles::BAICHUAN2_13B,
    }
}

/// The T5-family profile per register.
pub fn t5_profile(lang: Lang) -> &'static BaseModelProfile {
    match lang {
        Lang::En => &simllm::profiles::T5_LARGE,
        Lang::Cn => &simllm::profiles::MT5_LARGE,
    }
}

/// Evaluates a built FinSQL system over all three dev sets, pooled.
pub fn finsql_ex(system: &FinSql, ds: &BullDataset) -> EvalOutcome {
    let mut outcome = EvalOutcome::default();
    for db in DbId::ALL {
        let per = evaluate_ex(ds, db, system.config.lang, |q| {
            let mut rng = system.question_rng(q);
            system.answer(db, q, &mut rng)
        });
        outcome.absorb(&per);
    }
    outcome
}

/// Evaluates a fine-tuning baseline over all dev sets.
pub fn ft_ex(baseline: &FtBaseline, ds: &BullDataset, lang: Lang) -> EvalOutcome {
    let mut outcome = EvalOutcome::default();
    for db in DbId::ALL {
        let per = evaluate_ex(ds, db, lang, |q| {
            let mut rng = baseline.question_rng(q);
            baseline.answer(db, q, &mut rng)
        });
        outcome.absorb(&per);
    }
    outcome
}

/// Evaluates a GPT baseline over a sampled subset of the dev sets (the
/// paper used 20 entries for GPT-4 and 100 for ChatGPT due to cost);
/// returns the outcome plus the measured cost per SQL and whether the
/// method overflowed its context window.
pub fn gpt_ex(
    ds: &BullDataset,
    lang: Lang,
    method: GptMethod,
    model: GptModel,
    sample_per_db: usize,
    seed: u64,
) -> (EvalOutcome, f64, bool) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let base = simllm::EmbeddingModel::pretrained(seed);
    let mut outcome = EvalOutcome::default();
    let mut total_cost = 0.0;
    let mut queries = 0usize;
    let mut infeasible = false;
    for db in DbId::ALL {
        let schema = ds.db(db).catalog().clone();
        let values = simllm::ValueIndex::build(ds.db(db));
        let train_pairs = finsql_core::peft::training_pairs(ds, db, lang);
        let mut baseline =
            GptBaseline::new(method, model, lang, &base, &schema, &values, &train_pairs);
        infeasible |= baseline.infeasible();
        let dev = ds.examples_for(db, bull::Split::Dev);
        let mut rng = StdRng::seed_from_u64(seed ^ db as u64);
        for e in dev.iter().take(sample_per_db) {
            let q = e.question(lang);
            let sql = baseline.answer(q, &mut rng);
            if !infeasible && sqlengine::execution_accuracy(ds.db(db), &sql, &e.sql) {
                outcome.correct += 1;
            }
            outcome.total += 1;
        }
        total_cost +=
            baseline.meter.cost_per_query(&baseline.price()) * baseline.meter.queries as f64;
        queries += baseline.meter.queries;
    }
    (outcome, total_cost / queries.max(1) as f64, infeasible)
}

/// Builds the headline FinSQL system for a register.
pub fn build_finsql(ds: &BullDataset, lang: Lang, profile: &'static BaseModelProfile) -> FinSql {
    FinSql::build(ds, profile, FinSqlConfig::standard(lang))
}

/// Formats a fraction as a percentage with one decimal, paper style.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Regenerates Table 4 (en) / Table 5 (cn): overall EX and cost per SQL.
pub fn run_overall_table(lang: Lang) {
    let ds = dataset();
    let table_no = if lang == Lang::En { 4 } else { 5 };
    println!("Table {table_no}: Overall results on BULL-{}", lang.suffix());
    println!("{:<36} {:>6} {:>18}", "Model", "EX", "Cost Per SQL($)");

    // GPT-based methods (paper: 20 entries for GPT-4, 100 for ChatGPT,
    // spread over the three databases).
    let gpt_rows: [(&str, GptMethod, GptModel, usize); 4] = [
        ("DIN-SQL + GPT-4", GptMethod::DinSql, GptModel::Gpt4, 7),
        ("DAIL-SQL + GPT-4", GptMethod::DailSql { shots: 12 }, GptModel::Gpt4, 20),
        ("DAIL-SQL + ChatGPT", GptMethod::DailSql { shots: 8 }, GptModel::ChatGpt, 40),
        ("C3 + ChatGPT", GptMethod::C3, GptModel::ChatGpt, 40),
    ];
    for (name, method, model, sample) in gpt_rows {
        let (out, cost, infeasible) = gpt_ex(&ds, lang, method, model, sample, SEED);
        if infeasible {
            println!("{:<36} {:>6} {:>18.4}", name, "-", cost);
        } else {
            println!("{:<36} {:>6.1} {:>18.4}", name, out.ex_pct(), cost);
        }
    }

    // Fine-tuning baselines (all with the parallel Cross-Encoder, `*`).
    let t5 = t5_profile(lang);
    let resdsql = FtBaseline::resdsql(&ds, t5, lang);
    println!(
        "{:<36} {:>6.1} {:>18}",
        format!("RESDSQL* + {}", t5.name),
        ft_ex(&resdsql, &ds, lang).ex_pct(),
        "-"
    );
    let tokenprep = FtBaseline::token_preprocessing(&ds, t5, lang);
    println!(
        "{:<36} {:>6.1} {:>18}",
        format!("Token Preprocessing* + {}", t5.name),
        ft_ex(&tokenprep, &ds, lang).ex_pct(),
        "-"
    );
    let picard = FtBaseline::picard(&ds, t5, lang);
    println!(
        "{:<36} {:>6.1} {:>18}",
        format!("Picard* + {}", t5.name),
        ft_ex(&picard, &ds, lang).ex_pct(),
        "-"
    );

    // FinSQL with the headline LLM and the T5-family model.
    let head = headline_profile(lang);
    let finsql_llm = FinSql::build(&ds, head, FinSqlConfig::standard(lang));
    println!(
        "{:<36} {:>6.1} {:>18}",
        format!("FinSQL + {}", head.name),
        finsql_ex(&finsql_llm, &ds).ex_pct(),
        "-"
    );
    let finsql_t5 = FinSql::build(&ds, t5, FinSqlConfig::standard(lang));
    println!(
        "{:<36} {:>6.1} {:>18}",
        format!("FinSQL + {}", t5.name),
        finsql_ex(&finsql_t5, &ds).ex_pct(),
        "-"
    );
}
