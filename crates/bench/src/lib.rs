//! Shared harness for the benchmark binaries that regenerate every table
//! and figure of the paper.

#![forbid(unsafe_code)]

pub mod traffic;

use bull::{BullDataset, DbId, Lang, Split};
use finsql_core::baselines::{FtBaseline, GptBaseline, GptMethod, GptModel, SharedGptBaseline};
use finsql_core::cache::{Answerer, AnswerCache, CachePolicy};
use finsql_core::eval::{
    evaluate_ex_all_interleaved, evaluate_ex_all_interleaved_batched, evaluate_ex_all_limit,
    EvalOutcome,
};
use finsql_core::metrics::EvalMetrics;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use simllm::BaseModelProfile;
use std::time::Instant;

/// The seed every experiment uses (recorded in EXPERIMENTS.md).
pub const SEED: u64 = bull::DEFAULT_SEED;

/// Harness-wide evaluation options, parsed from the binary's CLI
/// arguments: `--serial` forces the single-threaded evaluation path (the
/// escape hatch; results are identical either way), `--workers N` sizes
/// the worker pool (`0` = available parallelism), `--no-cache` disables
/// the keyed answer cache, `--cache-cap N` caps the cache at `N` entries
/// (`0` = unbounded, the default), `--cache-policy lru|slru-tinylfu`
/// selects the eviction/admission policy of a capped cache (default:
/// the policy in `FinSqlConfig`, i.e. SLRU + TinyLFU; the policy can
/// change hit rates, never answers), and `--batch N` / `--no-batch` set
/// the micro-batch size of the batched FinSQL answer engine (CLI default
/// 8; `--no-batch` or `--batch 0` falls back to per-question answering —
/// answers are byte-identical either way).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HarnessOpts {
    pub serial: bool,
    pub workers: usize,
    pub no_cache: bool,
    pub cache_cap: usize,
    /// Eviction/admission policy for the answer cache; `None` keeps the
    /// [`FinSqlConfig`] default.
    pub cache_policy: Option<CachePolicy>,
    /// Micro-batch size for the batched FinSQL engine; `0` = unbatched.
    /// `Default::default()` is unbatched, [`HarnessOpts::from_args`]
    /// defaults to 8.
    pub batch: usize,
}

impl HarnessOpts {
    /// Parses the options from the process arguments. Unknown arguments
    /// are ignored so binaries can layer their own flags.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = HarnessOpts { batch: 8, ..HarnessOpts::default() };
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--serial" => opts.serial = true,
                "--workers" => {
                    opts.workers = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--workers needs a number");
                }
                "--no-cache" => opts.no_cache = true,
                "--cache-cap" => {
                    opts.cache_cap = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--cache-cap needs a number");
                }
                "--cache-policy" => {
                    opts.cache_policy = Some(
                        args.next()
                            .as_deref()
                            .and_then(CachePolicy::parse)
                            .expect("--cache-policy needs lru or slru-tinylfu"),
                    );
                }
                "--batch" => {
                    opts.batch = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--batch needs a number");
                }
                "--no-batch" => opts.batch = 0,
                _ => {}
            }
        }
        opts
    }

    /// The answer cache these options call for: `None` under
    /// `--no-cache`, otherwise a cache capped at `--cache-cap` entries
    /// running the `--cache-policy` eviction/admission policy.
    pub fn cache(&self) -> Option<AnswerCache> {
        if self.no_cache {
            None
        } else {
            Some(AnswerCache::with_policy(
                self.cache_cap,
                self.cache_policy.unwrap_or_default(),
            ))
        }
    }
}

/// Builds (or reuses) the benchmark dataset.
pub fn dataset() -> BullDataset {
    bull::build(SEED)
}

/// The base-model profile the paper pairs with each register.
pub fn headline_profile(lang: Lang) -> &'static BaseModelProfile {
    match lang {
        Lang::En => &simllm::profiles::LLAMA2_13B,
        Lang::Cn => &simllm::profiles::BAICHUAN2_13B,
    }
}

/// The T5-family profile per register.
pub fn t5_profile(lang: Lang) -> &'static BaseModelProfile {
    match lang {
        Lang::En => &simllm::profiles::T5_LARGE,
        Lang::Cn => &simllm::profiles::MT5_LARGE,
    }
}

/// Evaluates any [`Answerer`] over all three dev sets on the interleaved
/// cross-database queue (or serially under `--serial`), threading an
/// optional answer cache and metrics sink through every question. This
/// is the one evaluation path the FinSQL rows and both baseline families
/// share.
pub fn answerer_ex(
    answerer: &(impl Answerer + ?Sized),
    ds: &BullDataset,
    lang: Lang,
    opts: HarnessOpts,
    metrics: Option<&EvalMetrics>,
    cache: Option<&AnswerCache>,
) -> EvalOutcome {
    let predict = |db: DbId, q: &str| answerer.answer_maybe_cached(cache, db, q, metrics);
    if opts.serial {
        evaluate_ex_all_limit(ds, lang, None, predict).pooled()
    } else {
        evaluate_ex_all_interleaved(ds, lang, opts.workers, None, predict).pooled()
    }
}

/// Evaluates a FinSQL system through the batched answer engine: each
/// database's dev set is chunked into micro-batches of `opts.batch`
/// questions, interleaved across databases, and answered with
/// [`FinSql::answer_batch`] (cache-first when a cache is given). EX
/// counts are identical to [`answerer_ex`]'s at every batch size —
/// batching cannot change an answer — the difference is throughput.
pub fn finsql_batched_ex(
    system: &FinSql,
    ds: &BullDataset,
    opts: HarnessOpts,
    metrics: Option<&EvalMetrics>,
    cache: Option<&AnswerCache>,
) -> EvalOutcome {
    let predict =
        |db: DbId, qs: &[&str]| system.answer_batch_maybe_cached(cache, db, qs, metrics);
    evaluate_ex_all_interleaved_batched(
        ds,
        system.config.lang,
        opts.workers,
        None,
        opts.batch,
        predict,
    )
    .pooled()
}

/// The FinSQL evaluation path the harness options select: the batched
/// engine when `--batch` is active (and `--serial` is not), the shared
/// per-question [`answerer_ex`] path otherwise.
pub fn finsql_opts_ex(
    system: &FinSql,
    ds: &BullDataset,
    opts: HarnessOpts,
    metrics: Option<&EvalMetrics>,
    cache: Option<&AnswerCache>,
) -> EvalOutcome {
    if opts.batch > 0 && !opts.serial {
        finsql_batched_ex(system, ds, opts, metrics, cache)
    } else {
        answerer_ex(system, ds, system.config.lang, opts, metrics, cache)
    }
}

/// Evaluates a built FinSQL system over all three dev sets, pooled, on
/// the parallel path with default options.
pub fn finsql_ex(system: &FinSql, ds: &BullDataset) -> EvalOutcome {
    finsql_ex_with(system, ds, HarnessOpts::default(), None)
}

/// [`finsql_ex`] with explicit harness options and an optional metrics
/// sink fed by every answered question. The answer cache the options
/// call for lives only for this run; use [`answerer_ex`] directly to
/// keep a cache warm across runs.
pub fn finsql_ex_with(
    system: &FinSql,
    ds: &BullDataset,
    opts: HarnessOpts,
    metrics: Option<&EvalMetrics>,
) -> EvalOutcome {
    let cache = opts.cache();
    answerer_ex(system, ds, system.config.lang, opts, metrics, cache.as_ref())
}

/// Evaluates a fine-tuning baseline over all dev sets on the parallel
/// path with default options.
pub fn ft_ex(baseline: &FtBaseline, ds: &BullDataset, lang: Lang) -> EvalOutcome {
    ft_ex_with(baseline, ds, lang, HarnessOpts::default())
}

/// [`ft_ex`] with explicit harness options.
pub fn ft_ex_with(
    baseline: &FtBaseline,
    ds: &BullDataset,
    lang: Lang,
    opts: HarnessOpts,
) -> EvalOutcome {
    let cache = opts.cache();
    answerer_ex(baseline, ds, lang, opts, None, cache.as_ref())
}

/// Evaluates a GPT baseline over a sampled subset of the dev sets (the
/// paper used 20 entries for GPT-4 and 100 for ChatGPT due to cost);
/// returns the outcome plus the measured cost per SQL and whether the
/// method overflowed its context window.
pub fn gpt_ex(
    ds: &BullDataset,
    lang: Lang,
    method: GptMethod,
    model: GptModel,
    sample_per_db: usize,
    seed: u64,
) -> (EvalOutcome, f64, bool) {
    gpt_ex_cached(ds, lang, method, model, sample_per_db, seed, None)
}

/// [`gpt_ex`] threading an optional answer cache: repeated questions are
/// served from the cache without paying another (simulated) API call —
/// the serving-side saving caching exists for. Randomness is drawn from
/// the shared per-question stream, so answers (and hence EX counts) are
/// identical with or without the cache.
pub fn gpt_ex_cached(
    ds: &BullDataset,
    lang: Lang,
    method: GptMethod,
    model: GptModel,
    sample_per_db: usize,
    seed: u64,
    cache: Option<&AnswerCache>,
) -> (EvalOutcome, f64, bool) {
    let base = simllm::EmbeddingModel::pretrained(seed);
    let mut outcome = EvalOutcome::default();
    let mut total_cost = 0.0;
    let mut queries = 0usize;
    let mut infeasible = false;
    for db in DbId::ALL {
        let schema = ds.db(db).catalog().clone();
        let values = simllm::ValueIndex::build(ds.db(db));
        let train_pairs = finsql_core::peft::training_pairs(ds, db, lang);
        let baseline = SharedGptBaseline::new(
            GptBaseline::new(method, model, lang, &base, &schema, &values, &train_pairs),
            db,
            seed,
        );
        // Infeasibility (context overflow) is a per-database property:
        // one database overflowing must not suppress correct-counting on
        // the databases that fit. The pooled flag only marks the row.
        let infeasible_db = baseline.with_inner(|b| b.infeasible());
        infeasible |= infeasible_db;
        let dev = ds.examples_for(db, bull::Split::Dev);
        for e in dev.iter().take(sample_per_db) {
            let q = e.question(lang);
            let sql = baseline.answer_maybe_cached(cache, db, q, None);
            if !infeasible_db && sqlengine::execution_accuracy(ds.db(db), &sql, &e.sql) {
                outcome.correct += 1;
            }
            outcome.total += 1;
        }
        total_cost += baseline
            .with_inner(|b| b.meter.cost_per_query(&b.price()) * b.meter.queries as f64);
        queries += baseline.with_inner(|b| b.meter.queries);
    }
    (outcome, total_cost / queries.max(1) as f64, infeasible)
}

/// Builds the headline FinSQL system for a register.
pub fn build_finsql(ds: &BullDataset, lang: Lang, profile: &'static BaseModelProfile) -> FinSql {
    FinSql::build(ds, profile, FinSqlConfig::standard(lang))
}

/// Formats a fraction as a percentage with one decimal, paper style.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Regenerates Table 4 (en) / Table 5 (cn): overall EX and cost per SQL.
/// Evaluation runs on the interleaved cross-database queue (`--serial`
/// for the single-threaded escape hatch, `--workers N` to size the
/// pool), with the keyed answer cache in front of the pipeline
/// (`--no-cache` to disable, `--cache-cap N` to bound it). The FinSQL
/// rows answer through the batched engine in micro-batches of `--batch`
/// questions (default 8, `--no-batch` for the per-question path; EX is
/// identical either way), print questions/sec, the per-stage breakdown
/// and the batch-shape counters, then re-evaluate against the warm cache
/// to report the serving-side speedup.
pub fn run_overall_table(lang: Lang) {
    let opts = HarnessOpts::from_args();
    let ds = dataset();
    let table_no = if lang == Lang::En { 4 } else { 5 };
    println!("Table {table_no}: Overall results on BULL-{}", lang.suffix());
    println!("{:<36} {:>6} {:>18}", "Model", "EX", "Cost Per SQL($)");

    // GPT-based methods (paper: 20 entries for GPT-4, 100 for ChatGPT,
    // spread over the three databases).
    let gpt_rows: [(&str, GptMethod, GptModel, usize); 4] = [
        ("DIN-SQL + GPT-4", GptMethod::DinSql, GptModel::Gpt4, 7),
        ("DAIL-SQL + GPT-4", GptMethod::DailSql { shots: 12 }, GptModel::Gpt4, 20),
        ("DAIL-SQL + ChatGPT", GptMethod::DailSql { shots: 8 }, GptModel::ChatGpt, 40),
        ("C3 + ChatGPT", GptMethod::C3, GptModel::ChatGpt, 40),
    ];
    for (name, method, model, sample) in gpt_rows {
        let (out, cost, infeasible) = gpt_ex(&ds, lang, method, model, sample, SEED);
        if infeasible {
            println!("{:<36} {:>6} {:>18.4}", name, "-", cost);
        } else {
            println!("{:<36} {:>6.1} {:>18.4}", name, out.ex_pct(), cost);
        }
    }

    // Fine-tuning baselines (all with the parallel Cross-Encoder, `*`).
    let t5 = t5_profile(lang);
    let resdsql = FtBaseline::resdsql(&ds, t5, lang);
    println!(
        "{:<36} {:>6.1} {:>18}",
        format!("RESDSQL* + {}", t5.name),
        ft_ex_with(&resdsql, &ds, lang, opts).ex_pct(),
        "-"
    );
    let tokenprep = FtBaseline::token_preprocessing(&ds, t5, lang);
    println!(
        "{:<36} {:>6.1} {:>18}",
        format!("Token Preprocessing* + {}", t5.name),
        ft_ex_with(&tokenprep, &ds, lang, opts).ex_pct(),
        "-"
    );
    let picard = FtBaseline::picard(&ds, t5, lang);
    println!(
        "{:<36} {:>6.1} {:>18}",
        format!("Picard* + {}", t5.name),
        ft_ex_with(&picard, &ds, lang, opts).ex_pct(),
        "-"
    );

    // FinSQL with the headline LLM and the T5-family model, instrumented.
    let head = headline_profile(lang);
    for profile in [head, t5] {
        let finsql = FinSql::build(&ds, profile, FinSqlConfig::standard(lang));
        let cache = opts.cache();
        let metrics = EvalMetrics::new();
        let wall = Instant::now();
        let out = finsql_opts_ex(&finsql, &ds, opts, Some(&metrics), cache.as_ref());
        let wall = wall.elapsed();
        // Linking recall@k over the labelled dev examples (batched matrix
        // sweep; recall counters only, no stage timers touched).
        for db in DbId::ALL {
            let examples: Vec<&bull::BullExample> =
                ds.examples_for(db, Split::Dev).into_iter().collect();
            finsql.record_link_recall(db, &examples, &metrics);
        }
        println!("{:<36} {:>6.1} {:>18}", format!("FinSQL + {}", profile.name), out.ex_pct(), "-");
        print!("{}", metrics.snapshot().report(wall));
        // Re-evaluate against the warm cache: identical EX, served from
        // the keyed cache instead of the pipeline.
        if let Some(cache) = &cache {
            let warm_metrics = EvalMetrics::new();
            let warm_wall = Instant::now();
            let warm = finsql_opts_ex(&finsql, &ds, opts, Some(&warm_metrics), Some(cache));
            let warm_wall = warm_wall.elapsed();
            assert_eq!(out, warm, "a warm cache must reproduce the cold EX counts exactly");
            println!("  warm-cache re-evaluation (identical EX):");
            print!("{}", warm_metrics.snapshot().report(warm_wall));
        }
    }
}
