//! Micro-benchmarks of the SQL substrate: parsing, execution, skeleton
//! extraction and output calibration throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

const JOIN_SQL: &str = "SELECT t1.chiname, AVG(t2.closeprice) FROM lc_stockarchives AS t1 JOIN qt_dailyquote AS t2 ON t1.compcode = t2.compcode WHERE t1.listexchange = 'Shanghai Stock Exchange' GROUP BY t1.chiname ORDER BY AVG(t2.closeprice) DESC LIMIT 5";

fn bench_parser(c: &mut Criterion) {
    c.bench_function("parse_join_query", |b| {
        b.iter(|| sqlkit::parse_statement(std::hint::black_box(JOIN_SQL)).unwrap())
    });
    c.bench_function("skeleton_extraction", |b| {
        b.iter(|| sqlkit::skeleton_of(std::hint::black_box(JOIN_SQL)).unwrap())
    });
    c.bench_function("component_extraction", |b| {
        b.iter(|| sqlkit::components::extract_components(std::hint::black_box(JOIN_SQL)).unwrap())
    });
}

fn bench_engine(c: &mut Criterion) {
    let gdb = bull::datagen::populate(bull::DbId::Stock, 7);
    c.bench_function("execute_join_aggregate", |b| {
        b.iter(|| sqlengine::run_sql(&gdb.db, JOIN_SQL).unwrap())
    });
    c.bench_function("execute_point_filter", |b| {
        b.iter(|| {
            sqlengine::run_sql(
                &gdb.db,
                "SELECT chiname FROM lc_stockarchives WHERE listexchange = 'Shanghai Stock Exchange'",
            )
            .unwrap()
        })
    });
}

fn bench_calibration(c: &mut Criterion) {
    let schema = bull::DbId::Stock.schema();
    let profile = &simllm::profiles::LLAMA2_13B;
    // Realistic candidate set: one clean + corrupted variants.
    let mut rng = StdRng::seed_from_u64(5);
    let candidates: Vec<String> = (0..5)
        .map(|_| simllm::noise::corrupt(JOIN_SQL, &profile.noise, 1.5, &mut rng))
        .collect();
    let cfg = finsql_core::CalibrationConfig::default();
    c.bench_function("output_calibration_n5", |b| {
        b.iter(|| finsql_core::calibrate(std::hint::black_box(&candidates), &schema, &cfg))
    });
}

criterion_group!(benches, bench_parser, bench_engine, bench_calibration);
criterion_main!(benches);
