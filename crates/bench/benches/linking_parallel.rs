//! The parallel Cross-Encoder claim (paper §6.2, Figure 9): serial
//! per-table scoring scales linearly with schema width, the per-table
//! parallel batch does not. Measured on the real trained linker over the
//! real BULL schemas and synthetically widened ones.

use bull::{DbId, Lang};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossenc::model::SchemaViews;
use crossenc::{CrossEncoder, InferenceMode};
use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType};

/// A synthetic schema with `n` tables of 15 columns, BULL-style widths.
fn wide_schema(n: usize) -> CatalogSchema {
    CatalogSchema {
        db_id: format!("wide{n}"),
        tables: (0..n)
            .map(|i| CatalogTable {
                name: format!("lc_table{i}"),
                desc_en: format!("business record family {i}"),
                desc_cn: format!("业务记录{i}"),
                columns: (0..15)
                    .map(|j| {
                        CatalogColumn::new(
                            &format!("col{i}_{j}"),
                            ColType::Float,
                            &format!("measure {j} of family {i}"),
                            &format!("指标{j}"),
                        )
                    })
                    .collect(),
            })
            .collect(),
        foreign_keys: vec![],
    }
}

fn bench_linking(c: &mut Criterion) {
    let model = CrossEncoder::new(Lang::En);
    let question = "what is the measure 7 of family 3 in the business record";
    let mut group = c.benchmark_group("schema_linking");
    for n_tables in [8usize, 31, 64, 128] {
        let schema = wide_schema(n_tables);
        let views = SchemaViews::build(&schema, Lang::En);
        group.bench_with_input(BenchmarkId::new("serial", n_tables), &views, |b, v| {
            b.iter(|| model.link(question, v, InferenceMode::Serial))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n_tables), &views, |b, v| {
            b.iter(|| model.link(question, v, InferenceMode::Parallel))
        });
    }
    group.finish();

    // The real BULL stock schema (31 tables, ~420 columns).
    let stock = DbId::Stock.schema();
    let views = SchemaViews::build(&stock, Lang::En);
    let mut group = c.benchmark_group("bull_stock_linking");
    group.bench_function("serial", |b| {
        b.iter(|| model.link(question, &views, InferenceMode::Serial))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| model.link(question, &views, InferenceMode::Parallel))
    });
    group.finish();
}

criterion_group!(benches, bench_linking);
criterion_main!(benches);
