//! Micro-benchmarks of the batched answer engine and the featurisation
//! hot loop it leans on: question featurisation (no token cloning),
//! single vs batched embedding, contiguous prototype-matrix ranking, and
//! the full answer path per-question vs micro-batched.

use criterion::{criterion_group, criterion_main, Criterion};
use bull::{DbId, Lang, Split};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use simllm::{EmbeddingModel, PrototypeMatrix};

const QUESTION: &str =
    "what is the average closing price of funds listed on the Shanghai Stock Exchange in 2019";

/// Featurisation guard: tokenise + hash + bigram assembly of one
/// question. This is the inner loop of every embedding; a regression here
/// taxes single and batched paths alike.
fn bench_featurisation(c: &mut Criterion) {
    let base = EmbeddingModel::pretrained(7);
    c.bench_function("features_one_question", |b| {
        b.iter(|| base.features(std::hint::black_box(QUESTION)))
    });
    c.bench_function("embed_one_question", |b| {
        b.iter(|| base.embed(std::hint::black_box(QUESTION), None))
    });
}

fn bench_batched_engine(c: &mut Criterion) {
    let ds = bull::build(bull::DEFAULT_SEED);
    let system =
        FinSql::build(&ds, &simllm::profiles::LLAMA2_13B, FinSqlConfig::standard(Lang::En));
    let dev = ds.examples_for(DbId::Fund, Split::Dev);
    let questions: Vec<&str> = dev.iter().take(8).map(|e| e.question(Lang::En)).collect();

    // Embedding amortisation in isolation.
    let rt = system.runtime(DbId::Fund);
    let lora = Some(&rt.plugin.lora);
    c.bench_function("embed_batch_8", |b| {
        b.iter(|| system.base.embed_batch(std::hint::black_box(&questions), lora))
    });
    let emb = system.base.embed(QUESTION, lora);
    c.bench_function("prototype_matrix_rank", |b| {
        b.iter(|| rt.matrix.ranked(std::hint::black_box(&emb)))
    });
    c.bench_function("prototype_matrix_build", |b| {
        b.iter(|| PrototypeMatrix::build(std::hint::black_box(&rt.plugin.prototypes)))
    });

    // The full answer path: 8 questions one at a time vs one micro-batch.
    c.bench_function("answer_8_per_question", |b| {
        b.iter(|| {
            questions
                .iter()
                .map(|q| {
                    let mut rng = system.question_rng(DbId::Fund, q);
                    system.answer(DbId::Fund, q, &mut rng)
                })
                .collect::<Vec<_>>()
        })
    });
    c.bench_function("answer_8_batched", |b| {
        b.iter(|| system.answer_batch(DbId::Fund, std::hint::black_box(&questions)))
    });
}

criterion_group!(benches, bench_featurisation, bench_batched_engine);
criterion_main!(benches);
