//! LoRA plugin training: skeleton-anchor SGD plus prototype estimation.
//!
//! The objective is the retrieval analogue of fine-tuning: every training
//! question is pulled toward the (frozen) base embedding of its SQL
//! *skeleton*, so questions that share structure — across phrasings and
//! even across databases — cluster in the adapted space. The skeleton
//! prototype head (nearest-class-mean over the adapted embeddings) is the
//! model's "decoder choice" of structure at inference time.

use crate::embed::{normalize, EmbeddingModel, EMBED_DIM};
use crate::hub::{LoraPlugin, Prototype};
use crate::lora::LoraModule;
use crate::shape::{shape_of, ShapeKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sqlkit::skeleton_of;
use std::collections::HashMap;

/// Provenance of a training pair — the paper's three augmentation tasks
/// plus the original annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExampleKind {
    /// Annotated question–SQL pair.
    Original,
    /// Chain-of-thought augmented pair (question, reasoning, SQL).
    Cot,
    /// Synonymous-question augmented pair.
    Synonym,
    /// Skeleton-augmented pair (skeleton generated before SQL).
    Skeleton,
}

/// One training pair.
#[derive(Debug, Clone)]
pub struct TrainExample {
    pub question: String,
    pub sql: String,
    pub kind: ExampleKind,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainOpts {
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for TrainOpts {
    fn default() -> Self {
        TrainOpts { epochs: 6, lr: 0.012, seed: 23 }
    }
}

/// Fraction of CoT pairs needed before the plugin counts as CoT-trained.
const COT_THRESHOLD: f64 = 0.05;

/// Trains a fresh plugin on the examples.
pub fn train_plugin(
    base: &EmbeddingModel,
    name: &str,
    examples: &[TrainExample],
    opts: TrainOpts,
) -> LoraPlugin {
    let lora = LoraModule::init(base.dim_in(), EMBED_DIM, opts.seed);
    continue_training(base, name, lora, &[], examples, opts)
}

/// Continues training from an existing LoRA module (the paper's §7.3:
/// merged weights initialise the model, then further fine-tuning on the
/// target domain's few shots). `prior_prototypes` carries the merged
/// prototype head forward.
pub fn continue_training(
    base: &EmbeddingModel,
    name: &str,
    mut lora: LoraModule,
    prior_prototypes: &[Prototype],
    examples: &[TrainExample],
    opts: TrainOpts,
) -> LoraPlugin {
    // Resolve skeleton + shape per example; drop pairs whose SQL is
    // outside the shape bank (real pipelines drop unparseable pairs too).
    struct Prepared {
        x: textenc::SparseVec,
        base_out: Vec<f32>,
        target: Vec<f32>,
        skeleton: String,
        shape: ShapeKind,
        kind: ExampleKind,
    }
    let mut prepared: Vec<Prepared> = Vec::new();
    // Anchor per skeleton class: a deterministic random unit vector seeded
    // by the skeleton text (an error-correcting-output-code style label
    // embedding). Random codes keep near-identical skeletons — e.g.
    // `AVG(_)` vs `MAX(_)` — maximally separated, which the base text
    // embedding of the skeleton cannot; and the same skeleton maps to the
    // same anchor in every plugin, which is what makes merged plugins
    // compatible across databases.
    let mut anchors: HashMap<String, Vec<f32>> = HashMap::new();
    for ex in examples {
        let Some(skeleton) = skeleton_of(&ex.sql) else { continue };
        let Some(shape) = shape_of(&ex.sql) else { continue };
        let x = base.features(&ex.question);
        let base_out = base.project_base(&x);
        let target =
            anchors.entry(skeleton.clone()).or_insert_with(|| anchor_code(&skeleton)).clone();
        prepared.push(Prepared { x, base_out, target, skeleton, shape, kind: ex.kind });
    }
    // SGD.
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5EED);
    let mut order: Vec<usize> = (0..prepared.len()).collect();
    for epoch in 0..opts.epochs {
        let lr = opts.lr / (1.0 + epoch as f32);
        order.shuffle(&mut rng);
        for &i in &order {
            let p = &prepared[i];
            lora.sgd_step(&p.x, &p.base_out, &p.target, lr);
        }
    }
    // Prototype head: class means in the adapted space, seeded from the
    // prior head (counts damped so fresh data can move the centroids).
    let mut acc: HashMap<String, (ShapeKind, Vec<f32>, f32)> = HashMap::new();
    for proto in prior_prototypes {
        acc.insert(
            proto.skeleton.clone(),
            (proto.shape, scale(&proto.centroid, proto.count), proto.count),
        );
    }
    for p in &prepared {
        let emb = base.embed_features(&p.x, Some(&lora));
        let entry = acc
            .entry(p.skeleton.clone())
            .or_insert_with(|| (p.shape, vec![0.0; EMBED_DIM], 0.0));
        for (a, e) in entry.1.iter_mut().zip(&emb) {
            *a += e;
        }
        entry.2 += 1.0;
    }
    let mut prototypes: Vec<Prototype> = acc
        .into_iter()
        .map(|(skeleton, (shape, mut sum, count))| {
            if count > 0.0 {
                for v in &mut sum {
                    *v /= count;
                }
            }
            normalize(&mut sum);
            Prototype { skeleton, shape, centroid: sum, count }
        })
        .collect();
    prototypes.sort_by(|a, b| a.skeleton.cmp(&b.skeleton));
    let n_cot = prepared.iter().filter(|p| p.kind == ExampleKind::Cot).count();
    let cot_trained = !prepared.is_empty()
        && n_cot as f64 / prepared.len() as f64 >= COT_THRESHOLD;
    LoraPlugin {
        name: name.to_string(),
        lora,
        prototypes,
        cot_trained,
        n_examples: prepared.len(),
    }
}

/// Deterministic unit-norm label code for a skeleton class.
fn anchor_code(skeleton: &str) -> Vec<f32> {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for b in skeleton.as_bytes() {
        state ^= u64::from(*b);
        state = state.wrapping_mul(0x1000_0000_01b3);
    }
    let mut v: Vec<f32> = (0..EMBED_DIM)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect();
    normalize(&mut v);
    // Scale to the typical norm of base projections so the LoRA delta
    // stays in a trainable range.
    v
}

fn scale(v: &[f32], s: f32) -> Vec<f32> {
    v.iter().map(|x| x * s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::cosine;

    fn base() -> EmbeddingModel {
        EmbeddingModel::pretrained(42)
    }

    fn ex(q: &str, sql: &str) -> TrainExample {
        TrainExample { question: q.into(), sql: sql.into(), kind: ExampleKind::Original }
    }

    #[test]
    fn training_builds_prototypes_per_skeleton() {
        let b = base();
        let examples = vec![
            ex("how many bond funds are there", "SELECT COUNT(*) FROM t WHERE a = 'x'"),
            ex("count the stock funds", "SELECT COUNT(*) FROM t WHERE a = 'y'"),
            ex("top 3 funds by return", "SELECT n FROM t ORDER BY r DESC LIMIT 3"),
        ];
        let plugin = train_plugin(&b, "fund", &examples, TrainOpts::default());
        assert_eq!(plugin.prototypes.len(), 2, "two distinct skeletons");
        assert_eq!(plugin.n_examples, 3);
        assert!(!plugin.cot_trained);
    }

    #[test]
    fn adapted_space_clusters_same_skeleton_questions() {
        let b = base();
        // Two phrasing families for two skeletons.
        let mut examples = Vec::new();
        for i in 0..20 {
            examples.push(ex(
                &format!("how many records of kind {i} are there"),
                &format!("SELECT COUNT(*) FROM t WHERE a = 'v{i}'"),
            ));
            examples.push(ex(
                &format!("list the top {i} items by measure"),
                &format!("SELECT n FROM t ORDER BY m DESC LIMIT {i}"),
            ));
        }
        let plugin = train_plugin(&b, "p", &examples, TrainOpts { epochs: 4, ..Default::default() });
        // An unseen phrasing of the count family must land nearer the
        // count prototype than the topk prototype.
        let q = b.embed("please count how many entries of kind zz exist", Some(&plugin.lora));
        let count_proto = plugin
            .prototypes
            .iter()
            .find(|p| p.skeleton.contains("COUNT(*)"))
            .unwrap();
        let topk_proto = plugin
            .prototypes
            .iter()
            .find(|p| p.skeleton.contains("LIMIT"))
            .unwrap();
        let (sc, st) = (cosine(&q, &count_proto.centroid), cosine(&q, &topk_proto.centroid));
        assert!(sc > st, "count {sc} must beat topk {st}");
    }

    #[test]
    fn cot_flag_follows_data_mix() {
        let b = base();
        let mut examples =
            vec![ex("count things", "SELECT COUNT(*) FROM t WHERE a = 'x'"); 10];
        let plugin = train_plugin(&b, "p", &examples, TrainOpts::default());
        assert!(!plugin.cot_trained);
        examples.push(TrainExample {
            question: "count with reasoning".into(),
            sql: "SELECT COUNT(*) FROM t WHERE a = 'y'".into(),
            kind: ExampleKind::Cot,
        });
        let plugin = train_plugin(&b, "p", &examples, TrainOpts::default());
        assert!(plugin.cot_trained);
    }

    #[test]
    fn continue_training_keeps_prior_prototypes() {
        let b = base();
        let first = train_plugin(
            &b,
            "src",
            &[ex("count things", "SELECT COUNT(*) FROM t WHERE a = 'x'")],
            TrainOpts::default(),
        );
        let continued = continue_training(
            &b,
            "dst",
            first.lora.clone(),
            &first.prototypes,
            &[ex("top 2 by size", "SELECT n FROM t ORDER BY m DESC LIMIT 2")],
            TrainOpts::default(),
        );
        assert_eq!(continued.prototypes.len(), 2, "prior + new skeleton classes");
    }

    #[test]
    fn unparseable_examples_are_dropped() {
        let b = base();
        let plugin = train_plugin(
            &b,
            "p",
            &[ex("bad", "NOT SQL AT ALL"), ex("ok", "SELECT COUNT(*) FROM t WHERE a = 'x'")],
            TrainOpts::default(),
        );
        assert_eq!(plugin.n_examples, 1);
    }
}
