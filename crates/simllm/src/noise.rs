//! The decoder-noise model: injects the invalid-SQL error classes of the
//! paper's Figure 12 into otherwise-correct output.
//!
//! LLM decoders produce `==`, misspelled columns, dangling `JOIN ON` and
//! wrong table–column bindings; sampling `n` candidates sees different
//! corruption draws, which is what gives self-consistency its signal and
//! output calibration its work.

use rand::rngs::StdRng;
use rand::Rng;
use sqlkit::ast::{ColumnRef, JoinType, Statement};
use sqlkit::repair::{visit_select_columns_mut, visit_selects_mut};
use sqlkit::{parse_statement, to_sql};

/// Per-error-class base probabilities (scaled by temperature).
#[derive(Debug, Clone, Copy)]
pub struct NoiseRates {
    /// Misspell a column name.
    pub typo: f64,
    /// Emit `==` for `=`.
    pub double_eq: f64,
    /// Drop a join condition, leaving `JOIN t ON`.
    pub drop_on: f64,
    /// Re-qualify a column with the wrong table alias.
    pub misalign: f64,
    /// Corrupt a string literal (unfixable by calibration, as in reality).
    pub value: f64,
}

impl NoiseRates {
    /// A noise-free decoder (used by oracle tests).
    pub const NONE: NoiseRates =
        NoiseRates { typo: 0.0, double_eq: 0.0, drop_on: 0.0, misalign: 0.0, value: 0.0 };
}

/// Applies the noise model to a SQL string. Unparseable input is returned
/// unchanged (it is already wrong).
pub fn corrupt(sql: &str, rates: &NoiseRates, temperature: f64, rng: &mut StdRng) -> String {
    let Ok(Statement::Select(mut q)) = parse_statement(sql) else {
        return sql.to_string();
    };
    let t = temperature.max(0.0);
    let hit = |rng: &mut StdRng, p: f64| -> bool {
        let eff = (p * t).clamp(0.0, 1.0);
        eff > 0.0 && rng.gen_bool(eff)
    };

    // Typo: mangle one column reference (two passes: count, then edit
    // the n-th).
    if hit(rng, rates.typo) {
        let mut total = 0usize;
        visit_selects_mut(&mut q.body, &mut |s| {
            visit_select_columns_mut(s, &mut |_| total += 1);
        });
        if total > 0 {
            let pick = rng.gen_range(0..total);
            let mangled = {
                let mut name: Option<String> = None;
                let mut idx = 0usize;
                visit_selects_mut(&mut q.body, &mut |s| {
                    visit_select_columns_mut(s, &mut |c: &mut ColumnRef| {
                        if idx == pick {
                            name = Some(c.column.clone());
                        }
                        idx += 1;
                    });
                });
                mangle(&name.unwrap_or_default(), rng)
            };
            let mut idx = 0usize;
            visit_selects_mut(&mut q.body, &mut |s| {
                visit_select_columns_mut(s, &mut |c: &mut ColumnRef| {
                    if idx == pick {
                        c.column = mangled.clone();
                    }
                    idx += 1;
                });
            });
        }
    }

    // Misalignment: swap the qualifiers of two qualified columns.
    if hit(rng, rates.misalign) {
        let mut quals: Vec<String> = Vec::new();
        visit_selects_mut(&mut q.body, &mut |s| {
            visit_select_columns_mut(s, &mut |c| {
                if let Some(t) = &c.table {
                    quals.push(t.clone());
                }
            });
        });
        quals.sort();
        quals.dedup();
        if quals.len() >= 2 {
            let a = quals[rng.gen_range(0..quals.len())].clone();
            let b = quals[rng.gen_range(0..quals.len())].clone();
            if a != b {
                // Re-qualify one random column from a → b.
                let mut done = false;
                visit_selects_mut(&mut q.body, &mut |s| {
                    visit_select_columns_mut(s, &mut |c| {
                        if !done && c.table.as_deref() == Some(a.as_str()) {
                            c.table = Some(b.clone());
                            done = true;
                        }
                    });
                });
            }
        }
    }

    // Dangling ON.
    if hit(rng, rates.drop_on) {
        visit_selects_mut(&mut q.body, &mut |s| {
            if let Some(from) = &mut s.from {
                for j in &mut from.joins {
                    if j.join_type != JoinType::Cross && j.on.is_some() {
                        j.on = None;
                        break;
                    }
                }
            }
        });
    }

    // Value corruption.
    if hit(rng, rates.value) {
        visit_selects_mut(&mut q.body, &mut |s| {
            if let Some(w) = &mut s.selection {
                corrupt_first_string(w, rng);
            }
        });
    }

    let mut out = to_sql(&Statement::Select(q));
    // `==` is a surface-level artifact, applied on the printed text.
    if hit(rng, rates.double_eq) {
        if let Some(idx) = out.find(" = ") {
            out.replace_range(idx..idx + 3, " == ");
        }
    }
    out
}

/// Misspells an identifier: swaps two interior characters or doubles one.
fn mangle(name: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 4 {
        return format!("{name}x");
    }
    let mut out = chars.clone();
    if rng.gen_bool(0.5) {
        let i = rng.gen_range(1..chars.len() - 2);
        out.swap(i, i + 1);
    } else {
        let i = rng.gen_range(1..chars.len() - 1);
        out.insert(i, chars[i]);
    }
    out.into_iter().collect()
}

fn corrupt_first_string(e: &mut sqlkit::ast::Expr, rng: &mut StdRng) {
    use sqlkit::ast::{Expr, Literal};
    match e {
        Expr::Literal(Literal::Str(s))
            if s.len() > 2 => {
                let cut = rng.gen_range(1..s.chars().count());
                *s = s.chars().take(cut).collect();
            }
        Expr::Binary { left, right, .. } => {
            corrupt_first_string(left, rng);
            corrupt_first_string(right, rng);
        }
        Expr::Like { pattern, .. } => corrupt_first_string(pattern, rng),
        Expr::InList { list, .. } => {
            for v in list {
                corrupt_first_string(v, rng);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const SQL: &str =
        "SELECT t1.nav FROM mf_fundnav AS t1 JOIN mf_fundarchives AS t2 ON t1.innercode = t2.innercode WHERE t2.fundtype = 'bond fund'";

    #[test]
    fn zero_noise_is_canonical_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = corrupt(SQL, &NoiseRates::NONE, 1.0, &mut rng);
        // Idempotent up to canonical printing.
        assert_eq!(out, sqlkit::to_sql(&sqlkit::parse_statement(SQL).unwrap()));
    }

    #[test]
    fn typo_noise_changes_a_column() {
        let rates = NoiseRates { typo: 1.0, ..NoiseRates::NONE };
        let mut rng = StdRng::seed_from_u64(2);
        let out = corrupt(SQL, &rates, 1.0, &mut rng);
        assert_ne!(out, corrupt(SQL, &NoiseRates::NONE, 1.0, &mut rng));
        // Still parseable — typos are in-identifier.
        assert!(sqlkit::parse_statement(&out).is_ok());
    }

    #[test]
    fn double_eq_noise() {
        let rates = NoiseRates { double_eq: 1.0, ..NoiseRates::NONE };
        let mut rng = StdRng::seed_from_u64(3);
        let out = corrupt(SQL, &rates, 1.0, &mut rng);
        assert!(out.contains("=="), "got: {out}");
    }

    #[test]
    fn drop_on_noise_dangles_join() {
        let rates = NoiseRates { drop_on: 1.0, ..NoiseRates::NONE };
        let mut rng = StdRng::seed_from_u64(4);
        let out = corrupt(SQL, &rates, 1.0, &mut rng);
        assert!(!out.contains(" ON "), "got: {out}");
    }

    #[test]
    fn temperature_zero_disables_noise() {
        let rates =
            NoiseRates { typo: 1.0, double_eq: 1.0, drop_on: 1.0, misalign: 1.0, value: 1.0 };
        let mut rng = StdRng::seed_from_u64(5);
        let out = corrupt(SQL, &rates, 0.0, &mut rng);
        assert_eq!(out, sqlkit::to_sql(&sqlkit::parse_statement(SQL).unwrap()));
    }

    #[test]
    fn misalign_changes_qualifier() {
        let rates = NoiseRates { misalign: 1.0, ..NoiseRates::NONE };
        let mut rng = StdRng::seed_from_u64(11);
        let mut changed = false;
        for _ in 0..10 {
            let out = corrupt(SQL, &rates, 1.0, &mut rng);
            if out != sqlkit::to_sql(&sqlkit::parse_statement(SQL).unwrap()) {
                changed = true;
                break;
            }
        }
        assert!(changed, "misalignment never fired");
    }

    #[test]
    fn unparseable_input_passes_through() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(corrupt("not sql", &NoiseRates::NONE, 1.0, &mut rng), "not sql");
    }
}
