//! The LoRA plugin hub (paper §7.2): named, serialisable plugins that are
//! independent of the base model, plus weighted merging (§7.3).

use crate::embed::normalize;
use crate::lora::LoraModule;
use crate::shape::{AggKind, ShapeKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One skeleton class learned during training: its anchor skeleton, the
/// structural shape, and the centroid of its member questions in the
/// adapted embedding space.
#[derive(Debug, Clone, PartialEq)]
pub struct Prototype {
    pub skeleton: String,
    pub shape: ShapeKind,
    pub centroid: Vec<f32>,
    /// Effective member count (merging produces fractional weights).
    pub count: f32,
}

/// A trained LoRA plugin: the adapter matrices plus the skeleton
/// prototype head learned with them.
#[derive(Debug, Clone, PartialEq)]
pub struct LoraPlugin {
    pub name: String,
    pub lora: LoraModule,
    pub prototypes: Vec<Prototype>,
    /// Whether chain-of-thought data participated in training.
    pub cot_trained: bool,
    pub n_examples: usize,
}

impl LoraPlugin {
    /// Merges plugins by weighted summation — the paper's Eq. 3–5 for the
    /// factor matrices, and count-weighted centroid averaging for the
    /// prototype head.
    pub fn merge(name: &str, parts: &[(&LoraPlugin, f32)]) -> LoraPlugin {
        assert!(!parts.is_empty(), "merge of zero plugins");
        let lora_parts: Vec<(&LoraModule, f32)> =
            parts.iter().map(|(p, w)| (&p.lora, *w)).collect();
        let lora = LoraModule::merge(&lora_parts);
        // Group prototypes by skeleton.
        let mut by_skeleton: HashMap<&str, Vec<(f32, &Prototype)>> = HashMap::new();
        for (p, w) in parts {
            for proto in &p.prototypes {
                by_skeleton.entry(proto.skeleton.as_str()).or_default().push((*w, proto));
            }
        }
        let mut prototypes: Vec<Prototype> = by_skeleton
            .into_iter()
            .map(|(skeleton, members)| {
                let dim = members[0].1.centroid.len();
                let mut centroid = vec![0.0f32; dim];
                let mut total = 0.0f32;
                for (w, proto) in &members {
                    let weight = w * proto.count;
                    total += weight;
                    for (c, v) in centroid.iter_mut().zip(&proto.centroid) {
                        *c += weight * v;
                    }
                }
                if total > 0.0 {
                    for c in &mut centroid {
                        *c /= total;
                    }
                }
                normalize(&mut centroid);
                Prototype {
                    skeleton: skeleton.to_string(),
                    shape: members[0].1.shape,
                    centroid,
                    count: total,
                }
            })
            .collect();
        prototypes.sort_by(|a, b| a.skeleton.cmp(&b.skeleton));
        LoraPlugin {
            name: name.to_string(),
            lora,
            prototypes,
            cot_trained: parts.iter().any(|(p, _)| p.cot_trained),
            n_examples: parts.iter().map(|(p, _)| p.n_examples).sum::<usize>(),
        }
    }

    /// Serialises the plugin to bytes (a plugin is a file in a real hub).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        put_str(&mut buf, &self.name);
        buf.put_u8(u8::from(self.cot_trained));
        buf.put_u64(self.n_examples as u64);
        // LoRA module.
        buf.put_u32(self.lora.dim_in as u32);
        buf.put_u32(self.lora.dim_out as u32);
        buf.put_u32(self.lora.rank as u32);
        buf.put_f32(self.lora.scale);
        put_f32s(&mut buf, &self.lora.a);
        put_f32s(&mut buf, &self.lora.b);
        // Prototypes.
        buf.put_u32(self.prototypes.len() as u32);
        for p in &self.prototypes {
            put_str(&mut buf, &p.skeleton);
            let (tag, arg) = encode_shape(p.shape);
            buf.put_u8(tag);
            buf.put_u8(arg);
            buf.put_f32(p.count);
            put_f32s(&mut buf, &p.centroid);
        }
        buf.freeze()
    }

    /// Deserialises a plugin. Returns `None` on malformed input.
    pub fn from_bytes(mut data: Bytes) -> Option<LoraPlugin> {
        let name = get_str(&mut data)?;
        if data.remaining() < 1 + 8 + 12 + 4 {
            return None;
        }
        let cot_trained = data.get_u8() != 0;
        let n_examples = data.get_u64() as usize;
        let dim_in = data.get_u32() as usize;
        let dim_out = data.get_u32() as usize;
        let rank = data.get_u32() as usize;
        let scale = data.get_f32();
        let a = get_f32s(&mut data)?;
        let b = get_f32s(&mut data)?;
        if a.len() != dim_in * rank || b.len() != rank * dim_out {
            return None;
        }
        if data.remaining() < 4 {
            return None;
        }
        let n_protos = data.get_u32() as usize;
        let mut prototypes = Vec::with_capacity(n_protos);
        for _ in 0..n_protos {
            let skeleton = get_str(&mut data)?;
            if data.remaining() < 6 {
                return None;
            }
            let tag = data.get_u8();
            let arg = data.get_u8();
            let count = data.get_f32();
            let centroid = get_f32s(&mut data)?;
            prototypes.push(Prototype {
                skeleton,
                shape: decode_shape(tag, arg)?,
                centroid,
                count,
            });
        }
        Some(LoraPlugin {
            name,
            lora: LoraModule { a, b, dim_in, dim_out, rank, scale },
            prototypes,
            cot_trained,
            n_examples,
        })
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut Bytes) -> Option<String> {
    if data.remaining() < 4 {
        return None;
    }
    let len = data.get_u32() as usize;
    if data.remaining() < len {
        return None;
    }
    let bytes = data.split_to(len);
    String::from_utf8(bytes.to_vec()).ok()
}

fn put_f32s(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32(v.len() as u32);
    for x in v {
        buf.put_f32(*x);
    }
}

fn get_f32s(data: &mut Bytes) -> Option<Vec<f32>> {
    if data.remaining() < 4 {
        return None;
    }
    let len = data.get_u32() as usize;
    if data.remaining() < len * 4 {
        return None;
    }
    Some((0..len).map(|_| data.get_f32()).collect())
}

fn encode_shape(s: ShapeKind) -> (u8, u8) {
    use ShapeKind::*;
    match s {
        FilterSelect { n_targets } => (0, n_targets),
        CountFilter => (1, 0),
        AggMeasure { agg, filtered } => (2, encode_agg(agg) | if filtered { 0x10 } else { 0 }),
        TopkOrder { desc } => (3, u8::from(desc)),
        GroupCount => (4, 0),
        GroupAggHaving => (5, 0),
        JoinFilter => (6, 0),
        JoinAgg { agg } => (7, encode_agg(agg)),
        JoinTopk => (8, 0),
        CompareAvg => (9, 0),
        InSubquery { text_pred } => (10, u8::from(text_pred)),
        BetweenDates { agg } => (11, encode_agg(agg)),
        LikeMatch => (12, 0),
        CountDistinct => (13, 0),
        MultiPredicate => (14, 0),
        LatestDate => (15, 0),
        GroupSumTopk => (16, 0),
        DistinctFilter => (17, 0),
        ThreeJoin => (18, 0),
    }
}

fn decode_shape(tag: u8, arg: u8) -> Option<ShapeKind> {
    use ShapeKind::*;
    Some(match tag {
        0 => FilterSelect { n_targets: arg },
        1 => CountFilter,
        2 => AggMeasure { agg: decode_agg(arg & 0x0F)?, filtered: arg & 0x10 != 0 },
        3 => TopkOrder { desc: arg != 0 },
        4 => GroupCount,
        5 => GroupAggHaving,
        6 => JoinFilter,
        7 => JoinAgg { agg: decode_agg(arg)? },
        8 => JoinTopk,
        9 => CompareAvg,
        10 => InSubquery { text_pred: arg != 0 },
        11 => BetweenDates { agg: decode_agg(arg)? },
        12 => LikeMatch,
        13 => CountDistinct,
        14 => MultiPredicate,
        15 => LatestDate,
        16 => GroupSumTopk,
        17 => DistinctFilter,
        18 => ThreeJoin,
        _ => return None,
    })
}

fn encode_agg(a: AggKind) -> u8 {
    match a {
        AggKind::Count => 0,
        AggKind::Sum => 1,
        AggKind::Avg => 2,
        AggKind::Min => 3,
        AggKind::Max => 4,
    }
}

fn decode_agg(b: u8) -> Option<AggKind> {
    Some(match b {
        0 => AggKind::Count,
        1 => AggKind::Sum,
        2 => AggKind::Avg,
        3 => AggKind::Min,
        4 => AggKind::Max,
        _ => return None,
    })
}

/// The plugin hub: a concurrent registry of named plugins.
#[derive(Default)]
pub struct PluginHub {
    plugins: RwLock<HashMap<String, Arc<LoraPlugin>>>,
}

impl PluginHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a plugin under its name, replacing any previous version.
    pub fn insert(&self, plugin: LoraPlugin) -> Arc<LoraPlugin> {
        let arc = Arc::new(plugin);
        self.plugins.write().insert(arc.name.clone(), Arc::clone(&arc));
        arc
    }

    /// Fetches a plugin by name.
    pub fn get(&self, name: &str) -> Option<Arc<LoraPlugin>> {
        self.plugins.read().get(name).cloned()
    }

    /// Names of all stored plugins, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.plugins.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of stored plugins.
    pub fn len(&self) -> usize {
        self.plugins.read().len()
    }

    /// True when the hub holds no plugins.
    pub fn is_empty(&self) -> bool {
        self.plugins.read().is_empty()
    }

    /// Merges named plugins with the given weights and stores the result
    /// under `out_name`. Returns `None` if any source is missing.
    pub fn merge_into(
        &self,
        out_name: &str,
        sources: &[(&str, f32)],
    ) -> Option<Arc<LoraPlugin>> {
        let fetched: Vec<Arc<LoraPlugin>> =
            sources.iter().map(|(n, _)| self.get(n)).collect::<Option<_>>()?;
        let parts: Vec<(&LoraPlugin, f32)> =
            fetched.iter().zip(sources).map(|(p, (_, w))| (p.as_ref(), *w)).collect();
        Some(self.insert(LoraPlugin::merge(out_name, &parts)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plugin(name: &str, b_fill: f32, skeleton: &str) -> LoraPlugin {
        let mut lora = LoraModule::init(16, 4, 3);
        lora.b.iter_mut().for_each(|v| *v = b_fill);
        LoraPlugin {
            name: name.into(),
            lora,
            prototypes: vec![Prototype {
                skeleton: skeleton.into(),
                shape: ShapeKind::CountFilter,
                centroid: vec![1.0, 0.0, 0.0, 0.0],
                count: 2.0,
            }],
            cot_trained: false,
            n_examples: 2,
        }
    }

    #[test]
    fn roundtrip_serialization() {
        let p = plugin("fund", 1.5, "SELECT COUNT(*) FROM _ WHERE _ = _");
        let bytes = p.to_bytes();
        let back = LoraPlugin::from_bytes(bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn corrupt_bytes_fail_gracefully() {
        let p = plugin("fund", 1.0, "S");
        let bytes = p.to_bytes();
        assert!(LoraPlugin::from_bytes(bytes.slice(0..bytes.len() / 2)).is_none());
        assert!(LoraPlugin::from_bytes(Bytes::from_static(b"xx")).is_none());
    }

    #[test]
    fn all_shapes_roundtrip_codec() {
        for &s in crate::shape::ALL_SHAPES {
            let (t, a) = encode_shape(s);
            assert_eq!(decode_shape(t, a), Some(s), "shape {s:?}");
        }
    }

    #[test]
    fn hub_insert_get_names() {
        let hub = PluginHub::new();
        assert!(hub.is_empty());
        hub.insert(plugin("stock", 1.0, "A"));
        hub.insert(plugin("fund", 2.0, "B"));
        assert_eq!(hub.len(), 2);
        assert_eq!(hub.names(), vec!["fund".to_string(), "stock".to_string()]);
        assert!(hub.get("fund").is_some());
        assert!(hub.get("macro").is_none());
    }

    #[test]
    fn merge_averages_lora_and_unions_prototypes() {
        let hub = PluginHub::new();
        hub.insert(plugin("a", 1.0, "SKEL1"));
        hub.insert(plugin("b", 3.0, "SKEL2"));
        let merged = hub.merge_into("ab", &[("a", 0.5), ("b", 0.5)]).unwrap();
        assert!(merged.lora.b.iter().all(|v| (*v - 2.0).abs() < 1e-6));
        assert_eq!(merged.prototypes.len(), 2);
        assert_eq!(hub.len(), 3);
    }

    #[test]
    fn merge_of_shared_skeleton_weights_centroids() {
        let mut p1 = plugin("a", 0.0, "SKEL");
        p1.prototypes[0].centroid = vec![1.0, 0.0, 0.0, 0.0];
        let mut p2 = plugin("b", 0.0, "SKEL");
        p2.prototypes[0].centroid = vec![0.0, 1.0, 0.0, 0.0];
        let merged = LoraPlugin::merge("m", &[(&p1, 0.5), (&p2, 0.5)]);
        assert_eq!(merged.prototypes.len(), 1);
        let c = &merged.prototypes[0].centroid;
        assert!((c[0] - c[1]).abs() < 1e-6, "balanced merge must balance centroid: {c:?}");
    }

    #[test]
    fn missing_source_merge_fails() {
        let hub = PluginHub::new();
        hub.insert(plugin("a", 1.0, "S"));
        assert!(hub.merge_into("x", &[("a", 0.5), ("ghost", 0.5)]).is_none());
    }
}
