//! Base-model capability profiles.
//!
//! The paper fine-tunes four base LLMs; absolute EX differs by model and
//! register. Lacking the checkpoints, we encode each model as a small set
//! of behavioural parameters: slot-resolution skill, join-resolution
//! skill without CoT training, skeleton-selection stability, and the
//! Figure 12 decoder-noise rates. The *relative* orderings (LLaMA2 ≥ T5
//! on en; Baichuan2 > mT5 on cn) follow the paper; the knobs were
//! calibrated once against Table 4/5 and are fixed for every experiment.

use crate::noise::NoiseRates;

/// Behavioural profile of one base model.
#[derive(Debug, Clone, Copy)]
pub struct BaseModelProfile {
    pub name: &'static str,
    /// Probability of resolving an identifier slot to the best candidate.
    pub slot_skill: f64,
    /// Probability a non-CoT-trained model still resolves joins via the
    /// FK graph.
    pub join_skill: f64,
    /// Base probability of slipping to the runner-up skeleton prototype
    /// (scaled by temperature and the retrieval margin).
    pub skel_slip: f64,
    /// Decoder-noise rates.
    pub noise: NoiseRates,
}

impl BaseModelProfile {
    /// A stable string identifying the model's systematic behaviour,
    /// used to seed per-question slot decisions.
    pub fn name_and_skill(&self) -> String {
        format!("{}:{}", self.name, self.slot_skill)
    }
}

/// LLaMA2-13B (English experiments).
pub const LLAMA2_13B: BaseModelProfile = BaseModelProfile {
    name: "LLaMA2-13B",
    slot_skill: 0.97,
    join_skill: 0.92,
    skel_slip: 0.06,
    noise: NoiseRates { typo: 0.016, double_eq: 0.018, drop_on: 0.012, misalign: 0.035, value: 0.004 },
};

/// Baichuan2-13B (Chinese experiments).
pub const BAICHUAN2_13B: BaseModelProfile = BaseModelProfile {
    name: "Baichuan2-13B",
    slot_skill: 0.98,
    join_skill: 0.92,
    skel_slip: 0.06,
    noise: NoiseRates { typo: 0.016, double_eq: 0.018, drop_on: 0.012, misalign: 0.035, value: 0.004 },
};

/// T5-large (English fine-tuning baseline family).
pub const T5_LARGE: BaseModelProfile = BaseModelProfile {
    name: "T5-large",
    slot_skill: 0.965,
    join_skill: 0.90,
    skel_slip: 0.07,
    noise: NoiseRates { typo: 0.015, double_eq: 0.016, drop_on: 0.012, misalign: 0.035, value: 0.004 },
};

/// mT5-large (Chinese fine-tuning baseline family).
pub const MT5_LARGE: BaseModelProfile = BaseModelProfile {
    name: "mT5-large",
    slot_skill: 0.92,
    join_skill: 0.85,
    skel_slip: 0.13,
    noise: NoiseRates { typo: 0.024, double_eq: 0.02, drop_on: 0.018, misalign: 0.05, value: 0.006 },
};

/// All profiles, for sweeps like the paper's Figure 13.
pub const ALL_PROFILES: &[&BaseModelProfile] =
    &[&LLAMA2_13B, &BAICHUAN2_13B, &T5_LARGE, &MT5_LARGE];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn profile_orderings_match_paper() {
        // en: LLaMA2 ≥ T5; cn: Baichuan2 > mT5.
        assert!(LLAMA2_13B.slot_skill >= T5_LARGE.slot_skill);
        assert!(BAICHUAN2_13B.slot_skill > MT5_LARGE.slot_skill);
        assert!(MT5_LARGE.skel_slip > BAICHUAN2_13B.skel_slip);
    }

    #[test]
    fn probabilities_are_valid() {
        for p in ALL_PROFILES {
            for v in [p.slot_skill, p.join_skill, p.skel_slip] {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", p.name);
            }
            for r in [p.noise.typo, p.noise.double_eq, p.noise.drop_on, p.noise.misalign, p.noise.value]
            {
                assert!((0.0..=1.0).contains(&r));
            }
        }
    }
}
