//! The frozen base embedding model `W0`.
//!
//! Questions are encoded as hashed bags of word tokens and word bigrams,
//! then projected through a dense matrix `W0` initialised from a seeded
//! Gaussian — a random projection that preserves lexical similarity (the
//! Johnson–Lindenstrauss property), standing in for a pretrained text
//! encoder. `W0` is *frozen*: all adaptation happens in LoRA modules.

use crate::lora::LoraModule;
use textenc::{tokenize, FeatureHasher, SparseVec};

/// Input hash-space bits.
pub const INPUT_BITS: u32 = 14;
/// Embedding dimensionality.
pub const EMBED_DIM: usize = 64;

/// The base model: a frozen linear text encoder.
#[derive(Debug, Clone)]
pub struct EmbeddingModel {
    hasher: FeatureHasher,
    /// Row-major `dim_in × EMBED_DIM`.
    w0: Vec<f32>,
    seed: u64,
}

impl EmbeddingModel {
    /// "Pretrains" the base model: a seeded Gaussian random projection.
    pub fn pretrained(seed: u64) -> Self {
        let hasher = FeatureHasher::new(INPUT_BITS);
        let dim_in = hasher.dim();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next_gauss = move || {
            // Box–Muller over a splitmix64 stream.
            let mut unit = || {
                state ^= state >> 30;
                state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                state ^= state >> 27;
                state = state.wrapping_mul(0x94D0_49BB_1331_11EB);
                state ^= state >> 31;
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12)
            };
            let (u1, u2) = (unit(), unit());
            ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
        };
        let scale = 1.0 / (EMBED_DIM as f32).sqrt();
        let w0 = (0..dim_in * EMBED_DIM).map(|_| next_gauss() * scale).collect();
        EmbeddingModel { hasher, w0, seed }
    }

    /// The seed this model was pretrained with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Input feature dimensionality.
    pub fn dim_in(&self) -> usize {
        self.hasher.dim()
    }

    /// Encodes text into its sparse input features: word unigrams and
    /// bigrams, with *structure words* (the aggregation, comparison,
    /// grouping and ordering cues that determine a query's shape)
    /// up-weighted — the pretrained attention bias any usable text-to-SQL
    /// encoder exhibits, and what lets the model generalise across
    /// unseen surface phrasings. L2-normalised.
    pub fn features(&self, text: &str) -> SparseVec {
        // Numeric tokens are normalised to a "#num" symbol: the presence
        // and count of literals is a strong structural signal, their
        // values are noise. Tokens are borrowed, not cloned — each one is
        // hashed to its bucket directly, and bigrams are assembled in one
        // reused buffer.
        let raw_tokens = tokenize(text);
        let tokens: Vec<&str> = raw_tokens
            .iter()
            .map(|t| {
                if t.bytes().all(|b| b.is_ascii_digit()) {
                    "#num"
                } else {
                    t.as_str()
                }
            })
            .collect();
        let mut raw: Vec<(u32, f32)> = Vec::with_capacity(tokens.len().saturating_mul(2));
        for t in &tokens {
            let w = if is_structure_word(t) { 2.5 } else { 1.0 };
            raw.push((self.hasher.bucket(t), w));
        }
        let mut bigram = String::new();
        for w in tokens.windows(2) {
            bigram.clear();
            bigram.push_str(w[0]);
            bigram.push(' ');
            bigram.push_str(w[1]);
            raw.push((self.hasher.bucket(&bigram), 1.0));
        }
        let mut v = SparseVec::from_entries(raw);
        v.normalize();
        v
    }

    /// Projects sparse features through the frozen `W0`.
    pub fn project_base(&self, x: &SparseVec) -> Vec<f32> {
        let mut out = vec![0.0f32; EMBED_DIM];
        for (i, w) in x.entries() {
            let row = &self.w0[*i as usize * EMBED_DIM..(*i as usize + 1) * EMBED_DIM];
            for (o, r) in out.iter_mut().zip(row) {
                *o += w * r;
            }
        }
        out
    }

    /// Full embedding: base projection plus optional LoRA delta,
    /// L2-normalised.
    pub fn embed(&self, text: &str, lora: Option<&LoraModule>) -> Vec<f32> {
        let x = self.features(text);
        self.embed_features(&x, lora)
    }

    /// Embeds pre-computed features.
    pub fn embed_features(&self, x: &SparseVec, lora: Option<&LoraModule>) -> Vec<f32> {
        let mut h = self.project_base(x);
        if let Some(l) = lora {
            l.add_delta(x, &mut h);
        }
        normalize(&mut h);
        h
    }

    /// Unnormalised forward pass (used by training, where the MSE target
    /// lives in the unnormalised space).
    pub fn forward_raw(&self, x: &SparseVec, lora: Option<&LoraModule>) -> Vec<f32> {
        let mut h = self.project_base(x);
        if let Some(l) = lora {
            l.add_delta(x, &mut h);
        }
        h
    }

    /// Embeds a whole micro-batch: extracts features for every question
    /// and projects them through `W0` (plus the optional LoRA delta) in
    /// one pass over the batch. Each row is byte-identical to what
    /// [`EmbeddingModel::embed`] produces for that question alone — the
    /// win is amortisation (one call, one output allocation, no per-call
    /// setup), not a different computation.
    pub fn embed_batch(&self, texts: &[&str], lora: Option<&LoraModule>) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(texts.len());
        for text in texts {
            let x = self.features(text);
            out.push(self.embed_features(&x, lora));
        }
        out
    }
}

/// Query-structure cue words (en word tokens and cn character tokens).
/// Sorted for binary search.
const STRUCTURE_WORDS: &[&str] = &[
    "above", "average", "between", "contains", "count", "different", "distinct", "each",
    "exceeds", "grouped", "higher", "highest", "how", "largest", "latest", "leading", "lowest",
    "many", "maximum", "mean", "minimum", "more", "most", "number", "over", "per", "ranked",
    "recent", "than", "top", "total", "unique", "不", "之", "于", "们", "低", "几", "分", "包", "总",
    "新", "最", "每", "比", "超", "间", "高",
];

/// True when `token` is one of the query-structure cue words.
pub fn is_structure_word(token: &str) -> bool {
    STRUCTURE_WORDS.binary_search(&token).is_ok()
}

/// L2-normalises in place (no-op on the zero vector).
pub fn normalize(v: &mut [f32]) {
    // finlint: ordered — sequential left-to-right fold over a slice
    let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

/// Plain dot product of two equal-length vectors — the fast path for
/// scoring when both sides are already unit-norm (embeddings and
/// prototype centroids are), where it equals cosine similarity without
/// paying two sqrt-norm reductions per call.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    // finlint: ordered — sequential left-to-right fold over a slice
    a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>()
}

/// Cosine similarity of two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    // finlint: ordered — sequential left-to-right folds over slices
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    // finlint: ordered — sequential left-to-right fold over a slice
    let na = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    // finlint: ordered — sequential left-to-right fold over a slice
    let nb = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretraining_is_deterministic() {
        let a = EmbeddingModel::pretrained(5);
        let b = EmbeddingModel::pretrained(5);
        assert_eq!(a.embed("show the nav", None), b.embed("show the nav", None));
        let c = EmbeddingModel::pretrained(6);
        assert_ne!(a.embed("show the nav", None), c.embed("show the nav", None));
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let m = EmbeddingModel::pretrained(1);
        let e = m.embed("what is the closing price", None);
        let n: f32 = e.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let m = EmbeddingModel::pretrained(2);
        let a = m.embed("what is the unit net value of the fund", None);
        let b = m.embed("show the unit net value of this fund", None);
        let c = m.embed("count employees by province and gender", None);
        assert!(cosine(&a, &b) > cosine(&a, &c) + 0.2);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }
}
