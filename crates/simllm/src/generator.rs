//! The end-to-end SQL generator: retrieve skeleton → fill slots → decode
//! with noise.

use crate::embed::{dot, normalize, EmbeddingModel, EMBED_DIM};
use crate::hub::{LoraPlugin, Prototype};
use crate::index::PrototypeIndex;
use crate::noise::corrupt;
use crate::profiles::BaseModelProfile;
use crate::slots::{FillOptions, SlotFiller};
use crate::values::ValueIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlkit::catalog::CatalogSchema;
use std::borrow::Cow;
use std::collections::HashMap;

/// FNV-1a fingerprint used to derive per-question slot seeds.
fn fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of candidates to sample (the paper generates `n` in
    /// parallel for self-consistency).
    pub n_samples: usize,
    /// Sampling temperature: scales skeleton slips and decoder noise.
    /// `0.0` is greedy decoding.
    pub temperature: f64,
    /// Separate temperature for the skeleton (structure) choice. RESDSQL
    /// style skeleton-aware decoding fixes the structure first — modelled
    /// as skeleton temperature 0 with normal token noise. `None` follows
    /// `temperature`.
    pub skeleton_temperature: Option<f64>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { n_samples: 1, temperature: 0.7, skeleton_temperature: None }
    }
}

/// What happened while sampling one question's candidates — fed into the
/// evaluation-side metrics sink.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GenCounters {
    /// Candidates produced.
    pub samples: u64,
    /// Samples that fell back to the unadapted template generator (no
    /// plugin, no prototypes, or slot filling failed).
    pub fallbacks: u64,
    /// Samples whose skeleton slipped to the runner-up prototype.
    pub skeleton_slips: u64,
}

/// Plugin prototype centroids flattened into one contiguous row-major
/// matrix with pre-normalised rows.
///
/// Ranking prototypes for a question is then a single cache-friendly
/// dot-product sweep over consecutive rows: embeddings are unit-norm and
/// the rows are re-normalised once at build time, so the dot product *is*
/// the cosine similarity — without recomputing both vector norms for
/// every prototype on every question, and without chasing one heap
/// allocation per centroid.
#[derive(Debug, Clone, PartialEq)]
pub struct PrototypeMatrix {
    /// `n × EMBED_DIM` row-major, one unit-norm row per prototype.
    rows: Vec<f32>,
    /// `n × EMBED_DIM` row-major int8 quantisation of `rows`:
    /// `rows[j][d] = scales[j] · quant[j][d] + r` with `|r| ≤ scales[j]/2`,
    /// so `q · row_j  ≤  scales[j] · (q · quant_j) + (scales[j]/2) · ‖q‖₁`
    /// — a per-row upper bound on the exact dot product that tracks the
    /// true score to within `(scales[j]/2)·‖q‖₁` (≈0.01 for unit-norm
    /// embeddings here). That residual-style bound is the certificate
    /// behind pruned ranking; a whole-row Cauchy–Schwarz bound is useless
    /// on unit-norm rows (every row would bound at ‖q‖ ≈ 1).
    quant: Vec<i8>,
    /// Per-row quantisation step: `scales[j] = max_d |rows[j][d]| / 127`.
    scales: Vec<f32>,
}

/// Multiplicative slack on the quantised upper bound, covering the f64
/// bound accumulation error.
const BOUND_SLACK: f64 = 1e-5;
/// Absolute slack the bound must carry to dominate the *f32* dot-product
/// sweep it certifies against: sequential f32 accumulation of 64 terms
/// with `Σ|q_d·row_d| ≤ ‖q‖·‖row‖ = 1` can overshoot the true dot by up
/// to `63·ε_f32 ≈ 3.8e-6` absolutely, independent of the score's
/// magnitude. 1e-5 covers that with margin and is far below the observed
/// top1→top2 margins (~0.25).
const BOUND_EPS: f64 = 1e-5;

/// Quantises one unit-norm row to int8, returning `(scale, codes)` with
/// `row[d] = scale·codes[d] + r`, `|r| ≤ scale/2` (up to one f32 ulp,
/// absorbed by [`BOUND_SLACK`]). An all-zero row gets scale 0 and codes 0
/// — its bound is exactly the `BOUND_EPS` floor, and its true dot is 0.
fn quantize_row(row: &[f32]) -> (f32, [i8; EMBED_DIM]) {
    let max_abs = row.iter().fold(0.0f32, |m, x| m.max(x.abs()));
    let mut codes = [0i8; EMBED_DIM];
    if max_abs == 0.0 {
        return (0.0, codes);
    }
    let scale = max_abs / 127.0;
    for (c, x) in codes.iter_mut().zip(row) {
        *c = ((*x as f64 / scale as f64).round() as i32).clamp(-127, 127) as i8;
    }
    (scale, codes)
}

impl PrototypeMatrix {
    /// Flattens (and re-normalises) a plugin's prototype centroids.
    pub fn build(prototypes: &[Prototype]) -> Self {
        let mut rows = Vec::with_capacity(prototypes.len() * EMBED_DIM);
        for p in prototypes {
            let start = rows.len();
            rows.extend_from_slice(&p.centroid);
            rows.resize(start + EMBED_DIM, 0.0);
            normalize(&mut rows[start..start + EMBED_DIM]);
        }
        let n = prototypes.len();
        let mut quant = Vec::with_capacity(n * EMBED_DIM);
        let mut scales = Vec::with_capacity(n);
        for row in rows.chunks_exact(EMBED_DIM) {
            let (scale, codes) = quantize_row(row);
            scales.push(scale);
            quant.extend_from_slice(&codes);
        }
        PrototypeMatrix { rows, quant, scales }
    }

    /// Number of prototype rows.
    pub fn len(&self) -> usize {
        self.rows.len() / EMBED_DIM
    }

    /// True when the matrix holds no prototypes.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Scores a unit-norm embedding against every row (cosine, computed
    /// as a plain dot product) into `out`. The buffer is cleared first —
    /// callers reuse one allocation across databases of different sizes.
    pub fn scores_into(&self, emb: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.len());
        for row in self.rows.chunks_exact(EMBED_DIM) {
            out.push(dot(emb, row));
        }
    }

    /// Exact score of one row — the same `dot` the full sweep runs, so a
    /// pruned path scoring only candidates stays bit-identical.
    fn score_of(&self, emb: &[f32], j: usize) -> f32 {
        dot(emb, &self.rows[j * EMBED_DIM..(j + 1) * EMBED_DIM])
    }

    /// Prototype indices sorted by descending similarity to a unit-norm
    /// embedding, ties broken by index.
    pub fn ranked(&self, emb: &[f32]) -> Vec<(usize, f32)> {
        let mut scores = Vec::new();
        self.scores_into(emb, &mut scores);
        let mut ranked: Vec<(usize, f32)> = scores.into_iter().enumerate().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }

    /// Largest quantised upper bound over every row *not* in `exclude`
    /// (sorted ascending): `max_j scales[j]·(q·quant_j + ‖q‖₁/2)`,
    /// inflated by [`BOUND_SLACK`]/[`BOUND_EPS`] so it dominates the f32
    /// dot the exact sweep would compute for any of those rows.
    /// `f64::NEG_INFINITY` when all rows are excluded.
    fn max_unseen_bound(&self, emb: &[f32], l1_half: f64, exclude: &[usize]) -> f64 {
        let n = self.len();
        let mut max = f64::NEG_INFINITY;
        let mut skip = exclude.iter().peekable();
        for j in 0..n {
            if skip.peek().is_some_and(|&&e| e == j) {
                skip.next();
                continue;
            }
            let codes = &self.quant[j * EMBED_DIM..(j + 1) * EMBED_DIM];
            // finlint: ordered — fixed slice order; the fold feeds an
            // upper bound that is inflated past any reassociation error.
            let mut approx = 0.0f64;
            for (q, c) in emb.iter().zip(codes) {
                approx += (*q as f64) * (*c as f64);
            }
            let ub = (self.scales[j] as f64) * (approx + l1_half);
            if ub > max {
                max = ub;
            }
        }
        if max == f64::NEG_INFINITY {
            max
        } else {
            max.abs() * BOUND_SLACK + max + BOUND_EPS
        }
    }

    /// Pruned top-2 ranking: scores only `candidates` (sorted ascending,
    /// deduplicated) exactly, and returns the two best — bit-identical to
    /// `self.ranked(emb)[..2]` — **only** when the certificate holds: the
    /// exact second-best candidate score strictly dominates the largest
    /// upper bound of every unscored row, so no unseen prototype can
    /// displace either returned entry or perturb their margin. `None`
    /// means uncertified; the caller must run the full sweep.
    pub fn ranked_pruned(&self, emb: &[f32], candidates: &[usize]) -> Option<Vec<(usize, f32)>> {
        let n = self.len();
        if n < 2 || candidates.len() < 2 || candidates.last().is_some_and(|&j| j >= n) {
            return None;
        }
        let mut scored: Vec<(usize, f32)> =
            candidates.iter().map(|&j| (j, self.score_of(emb, j))).collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(2);
        if candidates.len() == n {
            // Nothing unseen: the candidate sweep *is* the full sweep.
            return Some(scored);
        }
        // finlint: ordered — fixed slice order; feeds the slack-inflated
        // certificate bound, not a score.
        let l1_half: f64 = emb.iter().map(|x| x.abs() as f64).sum::<f64>() * 0.5;
        let unseen = self.max_unseen_bound(emb, l1_half, candidates);
        if (scored[1].1 as f64) > unseen {
            Some(scored)
        } else {
            None
        }
    }
}

/// One question of a generation micro-batch: the question text and the
/// (typically schema-linked) prompt schema it is answered against.
#[derive(Debug, Clone, Copy)]
pub struct BatchItem<'q> {
    pub question: &'q str,
    pub prompt_schema: &'q CatalogSchema,
}

/// A ready-to-run generator: frozen base + optional plugin + profile.
pub struct SqlGenerator<'a> {
    pub base: &'a EmbeddingModel,
    pub plugin: Option<&'a LoraPlugin>,
    pub profile: &'a BaseModelProfile,
    /// The plugin's prototype matrix — borrowed when the caller keeps one
    /// per runtime, owned (built on the spot) otherwise.
    matrix: Option<Cow<'a, PrototypeMatrix>>,
    /// Optional inverted n-gram index over the plugin's prototypes:
    /// prunes the ranking sweep to a certified candidate set, falling
    /// back to the full sweep whenever the certificate fails — rankings
    /// (and therefore answers) are bit-identical either way.
    index: Option<&'a PrototypeIndex>,
}

impl<'a> SqlGenerator<'a> {
    /// Creates a generator, flattening the plugin's prototypes into a
    /// fresh [`PrototypeMatrix`]. Callers that answer many questions
    /// against the same plugin should build the matrix once and use
    /// [`SqlGenerator::with_matrix`] instead.
    pub fn new(
        base: &'a EmbeddingModel,
        plugin: Option<&'a LoraPlugin>,
        profile: &'a BaseModelProfile,
    ) -> Self {
        let matrix = plugin.map(|p| Cow::Owned(PrototypeMatrix::build(&p.prototypes)));
        SqlGenerator { base, plugin, profile, matrix, index: None }
    }

    /// Creates a generator around a prebuilt prototype matrix (which must
    /// have been built from `plugin`'s prototypes).
    pub fn with_matrix(
        base: &'a EmbeddingModel,
        plugin: &'a LoraPlugin,
        matrix: &'a PrototypeMatrix,
        profile: &'a BaseModelProfile,
    ) -> Self {
        SqlGenerator {
            base,
            plugin: Some(plugin),
            profile,
            matrix: Some(Cow::Borrowed(matrix)),
            index: None,
        }
    }

    /// Attaches a prebuilt [`PrototypeIndex`] (built over the same
    /// plugin's prototypes as the matrix) so retrieval sweeps are pruned
    /// to certified candidate sets.
    pub fn with_index(mut self, index: &'a PrototypeIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Generates `cfg.n_samples` candidate SQL strings for a question
    /// against a (typically schema-linked) prompt schema.
    pub fn generate(
        &self,
        question: &str,
        prompt_schema: &CatalogSchema,
        values: &ValueIndex,
        cfg: GenConfig,
        rng: &mut StdRng,
    ) -> Vec<String> {
        self.generate_with_retrieval_text(question, question, prompt_schema, values, cfg, rng)
    }

    /// [`SqlGenerator::generate`], also reporting sampling counters. The
    /// candidates are byte-identical to `generate`'s.
    pub fn generate_with_counters(
        &self,
        question: &str,
        prompt_schema: &CatalogSchema,
        values: &ValueIndex,
        cfg: GenConfig,
        rng: &mut StdRng,
    ) -> (Vec<String>, GenCounters) {
        let mut counters = GenCounters::default();
        let out = self.generate_impl(
            question,
            question,
            prompt_schema,
            values,
            cfg,
            rng,
            &mut counters,
        );
        (out, counters)
    }

    /// Like [`SqlGenerator::generate`], but retrieves skeleton prototypes
    /// with a different text than the one used for slot filling. DAIL-SQL
    /// style masked-question matching uses this: structure is matched on
    /// the question with schema words removed, slots on the full question.
    pub fn generate_with_retrieval_text(
        &self,
        question: &str,
        retrieval_text: &str,
        prompt_schema: &CatalogSchema,
        values: &ValueIndex,
        cfg: GenConfig,
        rng: &mut StdRng,
    ) -> Vec<String> {
        let mut counters = GenCounters::default();
        self.generate_impl(
            question,
            retrieval_text,
            prompt_schema,
            values,
            cfg,
            rng,
            &mut counters,
        )
    }

    /// Generates candidates for a whole micro-batch of questions that
    /// share one value index (i.e. one database): the questions are
    /// embedded in one [`EmbeddingModel::embed_batch`] pass and ranked
    /// against the contiguous [`PrototypeMatrix`], then each question
    /// runs the exact per-question sampling loop — same slot-seed
    /// derivation, same RNG consumption — so each entry of the result is
    /// byte-identical to what [`SqlGenerator::generate_with_counters`]
    /// produces for that question with its own RNG.
    pub fn generate_batch(
        &self,
        items: &[BatchItem<'_>],
        values: &ValueIndex,
        cfg: GenConfig,
        rngs: &mut [StdRng],
    ) -> Vec<(Vec<String>, GenCounters)> {
        assert_eq!(items.len(), rngs.len(), "one sampling RNG per batched question");
        let ranked_all: Vec<Vec<(usize, f32)>> = if self.plugin.is_some() {
            let texts: Vec<&str> = items.iter().map(|i| i.question).collect();
            let lora = self.plugin.map(|p| &p.lora);
            let embs = self.base.embed_batch(&texts, lora);
            // Candidate sets are memoised across the micro-batch by term
            // signature: questions touching the same posting lists (the
            // common case for skeleton-homogeneous batches) reuse one
            // weighted accumulation instead of re-walking the index.
            let mut memo: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
            embs.iter()
                .zip(&texts)
                .map(|(emb, text)| {
                    let cands = self.index.map(|ix| {
                        let sig = ix.terms(text);
                        memo.entry(sig).or_insert_with_key(|sig| ix.candidates(sig)).clone()
                    });
                    self.rank_embedding(emb, cands.as_deref())
                })
                .collect()
        } else {
            vec![Vec::new(); items.len()]
        };
        items
            .iter()
            .zip(&ranked_all)
            .zip(rngs)
            .map(|((item, ranked), rng)| {
                let mut counters = GenCounters::default();
                let filler = SlotFiller::new(item.prompt_schema, values, item.question);
                let out = self.sample_n(&filler, item.question, ranked, cfg, rng, &mut counters);
                (out, counters)
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_impl(
        &self,
        question: &str,
        retrieval_text: &str,
        prompt_schema: &CatalogSchema,
        values: &ValueIndex,
        cfg: GenConfig,
        rng: &mut StdRng,
        counters: &mut GenCounters,
    ) -> Vec<String> {
        let filler = SlotFiller::new(prompt_schema, values, question);
        // Rank skeleton prototypes once.
        let ranked = self.ranked_prototypes(retrieval_text);
        self.sample_n(&filler, question, &ranked, cfg, rng, counters)
    }

    /// The shared per-question sampling loop: `cfg.n_samples` draws over
    /// one ranked prototype list.
    ///
    /// Slot (identifier) decisions are a *systematic* property of the
    /// model given a fixed prompt — sampling temperature perturbs the
    /// decoded surface (noise) and occasionally the structure, but a
    /// model that binds "redemption status" to the wrong column does so
    /// on every sample. Hence slot draws come from a per-question seed
    /// shared across the n samples, while skeleton slips and decoder
    /// noise use the sampling RNG. Because every sample reseeds the slot
    /// RNG identically, the grounded SQL for a given prototype is the
    /// same on every sample — it is filled once per distinct prototype
    /// choice and memoised, which is what makes n-candidate sampling
    /// cheap.
    fn sample_n(
        &self,
        filler: &SlotFiller<'_>,
        question: &str,
        ranked: &[(usize, f32)],
        cfg: GenConfig,
        rng: &mut StdRng,
        counters: &mut GenCounters,
    ) -> Vec<String> {
        let slot_seed = fingerprint(question) ^ fingerprint(&self.profile.name_and_skill());
        let mut fills: HashMap<usize, Option<String>> = HashMap::new();
        let mut out = Vec::with_capacity(cfg.n_samples);
        for _ in 0..cfg.n_samples.max(1) {
            let sql = self.sample_once(filler, ranked, cfg, slot_seed, rng, counters, &mut fills);
            counters.samples += 1;
            out.push(sql);
        }
        out
    }

    /// Prototype indices sorted by similarity (cosine over unit-norm
    /// vectors, computed as a contiguous dot-product sweep) to the
    /// adapted question embedding.
    fn ranked_prototypes(&self, question: &str) -> Vec<(usize, f32)> {
        let Some(plugin) = self.plugin else { return Vec::new() };
        let emb = self.base.embed(question, Some(&plugin.lora));
        let cands = self.index.map(|ix| ix.candidates(&ix.terms(question)));
        self.rank_embedding(&emb, cands.as_deref())
    }

    /// Ranks a precomputed unit-norm embedding against the prototype
    /// matrix. With an index attached and a non-empty candidate set, the
    /// pruned certified top-2 path is tried first; any failure — empty
    /// candidates, uncertified bound — falls back to the full sweep, so
    /// the entries consumed downstream are bit-identical either way.
    fn rank_embedding(&self, emb: &[f32], candidates: Option<&[usize]>) -> Vec<(usize, f32)> {
        let Some(m) = &self.matrix else { return Vec::new() };
        if let (Some(ix), Some(cands)) = (self.index, candidates) {
            if !cands.is_empty() {
                if let Some(top2) = m.ranked_pruned(emb, cands) {
                    ix.stats.record_certified();
                    return top2;
                }
            }
            ix.stats.record_fallback();
        }
        m.ranked(emb)
    }

    #[allow(clippy::too_many_arguments)]
    fn sample_once(
        &self,
        filler: &SlotFiller<'_>,
        ranked: &[(usize, f32)],
        cfg: GenConfig,
        slot_seed: u64,
        rng: &mut StdRng,
        counters: &mut GenCounters,
        fills: &mut HashMap<usize, Option<String>>,
    ) -> String {
        let Some(plugin) = self.plugin else {
            // No adaptation at all: the base model free-associates.
            counters.fallbacks += 1;
            return filler.fallback_sql();
        };
        if ranked.is_empty() {
            counters.fallbacks += 1;
            return filler.fallback_sql();
        }
        // Skeleton choice: best prototype, with a margin- and
        // temperature-dependent slip to the runner-up.
        let idx = if ranked.len() >= 2 {
            let margin = (ranked[0].1 - ranked[1].1).max(0.0) as f64;
            let skel_temp = cfg.skeleton_temperature.unwrap_or(cfg.temperature);
            let p_slip = (self.profile.skel_slip * skel_temp * (1.0 - margin * 4.0))
                .clamp(0.0, 0.9);
            if p_slip > 0.0 && rng.gen_bool(p_slip) {
                counters.skeleton_slips += 1;
                ranked[1].0
            } else {
                ranked[0].0
            }
        } else {
            ranked[0].0
        };
        // Slot filling draws only from a freshly-seeded slot RNG, so the
        // grounded SQL per prototype is identical across samples — fill
        // once per distinct prototype and memoise.
        let grounded = fills.entry(idx).or_insert_with(|| {
            let proto = &plugin.prototypes[idx];
            let opts = FillOptions {
                cot: plugin.cot_trained,
                slot_skill: self.profile.slot_skill,
                join_skill: self.profile.join_skill,
            };
            let mut slot_rng = StdRng::seed_from_u64(slot_seed);
            filler.fill(proto.shape, &opts, &mut slot_rng)
        });
        let sql = match grounded {
            Some(sql) => sql.clone(),
            None => {
                counters.fallbacks += 1;
                filler.fallback_sql()
            }
        };
        corrupt(&sql, &self.profile.noise, cfg.temperature, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::LLAMA2_13B;
    use crate::train::{train_plugin, ExampleKind, TrainExample, TrainOpts};
    use rand::SeedableRng;
    use sqlengine::{Database, Value};
    use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType};

    fn schema() -> CatalogSchema {
        CatalogSchema {
            db_id: "g".into(),
            tables: vec![CatalogTable {
                name: "fund".into(),
                desc_en: "fund master".into(),
                desc_cn: "fund".into(),
                columns: vec![
                    CatalogColumn::new("fname", ColType::Text, "fund name", "fund name"),
                    CatalogColumn::new("ftype", ColType::Text, "fund type", "fund type"),
                    CatalogColumn::new("ret", ColType::Float, "return rate", "return rate"),
                ],
            }],
            foreign_keys: vec![],
        }
    }

    fn db() -> Database {
        let mut db = Database::new(schema());
        for (n, t, r) in [
            ("Alpha Growth", "bond fund", 1.5),
            ("Beta Value", "stock fund", 2.5),
            ("Gamma Mix", "bond fund", 0.5),
        ] {
            db.insert("fund", vec![Value::from(n), Value::from(t), Value::Float(r)]).unwrap();
        }
        db
    }

    fn plugin(base: &EmbeddingModel) -> crate::hub::LoraPlugin {
        let mut examples = Vec::new();
        for i in 0..15 {
            examples.push(TrainExample {
                question: format!("how many funds have fund type kind{i}"),
                sql: format!("SELECT COUNT(*) FROM fund WHERE ftype = 'k{i}'"),
                kind: ExampleKind::Original,
            });
            examples.push(TrainExample {
                question: format!("what is the average return rate of type kind{i}"),
                sql: format!("SELECT AVG(ret) FROM fund WHERE ftype = 'k{i}'"),
                kind: ExampleKind::Original,
            });
        }
        train_plugin(base, "fund", &examples, TrainOpts::default())
    }

    #[test]
    fn trained_generator_produces_correct_sql_greedily() {
        let base = EmbeddingModel::pretrained(42);
        let plugin = plugin(&base);
        let s = schema();
        let database = db();
        let values = ValueIndex::build(&database);
        let g = SqlGenerator::new(&base, Some(&plugin), &LLAMA2_13B);
        let mut rng = StdRng::seed_from_u64(1);
        let out = g.generate(
            "how many funds have fund type bond fund",
            &s,
            &values,
            GenConfig { n_samples: 1, temperature: 0.0, skeleton_temperature: None },
            &mut rng,
        );
        assert_eq!(out.len(), 1);
        assert!(
            sqlengine::execution_accuracy(
                &database,
                &out[0],
                "SELECT COUNT(*) FROM fund WHERE ftype = 'bond fund'"
            ),
            "generated: {}",
            out[0]
        );
    }

    #[test]
    fn unadapted_generator_falls_back() {
        let base = EmbeddingModel::pretrained(42);
        let s = schema();
        let database = db();
        let values = ValueIndex::build(&database);
        let g = SqlGenerator::new(&base, None, &LLAMA2_13B);
        let mut rng = StdRng::seed_from_u64(2);
        let out = g.generate("how many funds", &s, &values, GenConfig::default(), &mut rng);
        assert!(out[0].starts_with("SELECT"));
    }

    #[test]
    fn matrix_ranking_matches_per_prototype_cosine() {
        // The contiguous dot-product sweep must rank prototypes in the
        // same order the old path did: per-prototype `cosine` calls that
        // recomputed both norms every time.
        let base = EmbeddingModel::pretrained(42);
        let plugin = plugin(&base);
        assert!(plugin.prototypes.len() >= 2, "need several prototypes to rank");
        let matrix = PrototypeMatrix::build(&plugin.prototypes);
        assert_eq!(matrix.len(), plugin.prototypes.len());
        for q in [
            "how many funds have fund type bond fund",
            "what is the average return rate of type stock fund",
            "list everything",
        ] {
            let emb = base.embed(q, Some(&plugin.lora));
            let new_order: Vec<usize> = matrix.ranked(&emb).into_iter().map(|(i, _)| i).collect();
            let mut old: Vec<(usize, f32)> = plugin
                .prototypes
                .iter()
                .enumerate()
                .map(|(i, p)| (i, crate::embed::cosine(&emb, &p.centroid)))
                .collect();
            old.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let old_order: Vec<usize> = old.into_iter().map(|(i, _)| i).collect();
            assert_eq!(new_order, old_order, "ranking order diverged for {q:?}");
        }
    }

    #[test]
    fn generate_batch_matches_per_question_generation() {
        let base = EmbeddingModel::pretrained(42);
        let plugin = plugin(&base);
        let s = schema();
        let database = db();
        let values = ValueIndex::build(&database);
        let g = SqlGenerator::new(&base, Some(&plugin), &LLAMA2_13B);
        let cfg = GenConfig { n_samples: 5, temperature: 0.9, skeleton_temperature: None };
        let questions = [
            "how many funds have fund type bond fund",
            "what is the average return rate of type stock fund",
            "how many funds have fund type kind3",
        ];
        let serial: Vec<(Vec<String>, GenCounters)> = questions
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let mut rng = StdRng::seed_from_u64(100 + i as u64);
                g.generate_with_counters(q, &s, &values, cfg, &mut rng)
            })
            .collect();
        let items: Vec<BatchItem<'_>> =
            questions.iter().map(|q| BatchItem { question: q, prompt_schema: &s }).collect();
        let mut rngs: Vec<StdRng> =
            (0..questions.len()).map(|i| StdRng::seed_from_u64(100 + i as u64)).collect();
        let batched = g.generate_batch(&items, &values, cfg, &mut rngs);
        assert_eq!(serial, batched, "batched generation must be byte-identical");
    }

    #[test]
    fn scores_into_clears_reused_buffer() {
        // Callers reuse one score buffer across databases; a smaller
        // second matrix must not leave the first database's tail scores
        // in place (pre-fix, `scores_into` appended instead of clearing).
        let base = EmbeddingModel::pretrained(42);
        let plugin = plugin(&base);
        assert!(plugin.prototypes.len() >= 2);
        let big = PrototypeMatrix::build(&plugin.prototypes);
        let small = PrototypeMatrix::build(&plugin.prototypes[..1]);
        let emb = base.embed("how many funds have fund type bond fund", Some(&plugin.lora));
        let mut buf = Vec::new();
        big.scores_into(&emb, &mut buf);
        assert_eq!(buf.len(), big.len());
        small.scores_into(&emb, &mut buf);
        assert_eq!(buf.len(), small.len(), "reused buffer must be truncated to the new matrix");
        let mut fresh = Vec::new();
        small.scores_into(&emb, &mut fresh);
        assert_eq!(buf, fresh);
    }

    #[test]
    fn indexed_generation_is_bitwise_identical() {
        // The pruned retrieval path must never change an emitted byte:
        // either the candidate top-2 is certified exact, or the
        // generator falls back to the full sweep.
        let base = EmbeddingModel::pretrained(42);
        let plugin = plugin(&base);
        let s = schema();
        let database = db();
        let values = ValueIndex::build(&database);
        // Index documents: each prototype's skeleton plus the train
        // questions that share its skeleton — same recipe the pipeline
        // uses.
        let mut examples = Vec::new();
        for i in 0..15 {
            examples.push((
                format!("how many funds have fund type kind{i}"),
                format!("SELECT COUNT(*) FROM fund WHERE ftype = 'k{i}'"),
            ));
            examples.push((
                format!("what is the average return rate of type kind{i}"),
                format!("SELECT AVG(ret) FROM fund WHERE ftype = 'k{i}'"),
            ));
        }
        let docs: Vec<Vec<String>> = plugin
            .prototypes
            .iter()
            .map(|p| {
                let mut doc = vec![p.skeleton.clone()];
                for (q, sql) in &examples {
                    if sqlkit::skeleton_of(sql).as_deref() == Some(p.skeleton.as_str()) {
                        doc.push(q.clone());
                    }
                }
                doc
            })
            .collect();
        let index = crate::index::PrototypeIndex::build(&docs);
        let plain = SqlGenerator::new(&base, Some(&plugin), &LLAMA2_13B);
        let pruned = SqlGenerator::new(&base, Some(&plugin), &LLAMA2_13B).with_index(&index);
        let cfg = GenConfig { n_samples: 5, temperature: 0.9, skeleton_temperature: None };
        for (i, q) in [
            "how many funds have fund type bond fund",
            "what is the average return rate of type stock fund",
            "how many funds have fund type kind7",
            "completely unrelated zz qq xx",
        ]
        .iter()
        .enumerate()
        {
            let mut r1 = StdRng::seed_from_u64(500 + i as u64);
            let mut r2 = StdRng::seed_from_u64(500 + i as u64);
            let a = plain.generate_with_counters(q, &s, &values, cfg, &mut r1);
            let b = pruned.generate_with_counters(q, &s, &values, cfg, &mut r2);
            assert_eq!(a, b, "indexed generation diverged for {q:?}");
        }
        let (certified, fallback) = index.stats.snapshot();
        assert!(certified + fallback > 0, "index was consulted");
    }

    #[test]
    fn sampling_produces_varied_candidates() {
        let base = EmbeddingModel::pretrained(42);
        let plugin = plugin(&base);
        let s = schema();
        let database = db();
        let values = ValueIndex::build(&database);
        // A deliberately noisy decoder: sampling must vary the surface
        // while slot decisions stay systematic.
        let noisy = crate::BaseModelProfile {
            noise: crate::noise::NoiseRates {
                typo: 0.5,
                double_eq: 0.5,
                drop_on: 0.0,
                misalign: 0.0,
                value: 0.0,
            },
            ..LLAMA2_13B
        };
        let g = SqlGenerator::new(&base, Some(&plugin), &noisy);
        let mut rng = StdRng::seed_from_u64(3);
        let out = g.generate(
            "how many funds have fund type bond fund",
            &s,
            &values,
            GenConfig { n_samples: 20, temperature: 1.5, skeleton_temperature: None },
            &mut rng,
        );
        let distinct: std::collections::HashSet<&String> = out.iter().collect();
        assert!(distinct.len() > 1, "high temperature must vary output");
    }
}
