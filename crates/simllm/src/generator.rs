//! The end-to-end SQL generator: retrieve skeleton → fill slots → decode
//! with noise.

use crate::embed::{cosine, EmbeddingModel};
use crate::hub::LoraPlugin;
use crate::noise::corrupt;
use crate::profiles::BaseModelProfile;
use crate::slots::{FillOptions, SlotFiller};
use crate::values::ValueIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlkit::catalog::CatalogSchema;

/// FNV-1a fingerprint used to derive per-question slot seeds.
fn fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of candidates to sample (the paper generates `n` in
    /// parallel for self-consistency).
    pub n_samples: usize,
    /// Sampling temperature: scales skeleton slips and decoder noise.
    /// `0.0` is greedy decoding.
    pub temperature: f64,
    /// Separate temperature for the skeleton (structure) choice. RESDSQL
    /// style skeleton-aware decoding fixes the structure first — modelled
    /// as skeleton temperature 0 with normal token noise. `None` follows
    /// `temperature`.
    pub skeleton_temperature: Option<f64>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { n_samples: 1, temperature: 0.7, skeleton_temperature: None }
    }
}

/// What happened while sampling one question's candidates — fed into the
/// evaluation-side metrics sink.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GenCounters {
    /// Candidates produced.
    pub samples: u64,
    /// Samples that fell back to the unadapted template generator (no
    /// plugin, no prototypes, or slot filling failed).
    pub fallbacks: u64,
    /// Samples whose skeleton slipped to the runner-up prototype.
    pub skeleton_slips: u64,
}

/// A ready-to-run generator: frozen base + optional plugin + profile.
pub struct SqlGenerator<'a> {
    pub base: &'a EmbeddingModel,
    pub plugin: Option<&'a LoraPlugin>,
    pub profile: &'a BaseModelProfile,
}

impl<'a> SqlGenerator<'a> {
    /// Creates a generator.
    pub fn new(
        base: &'a EmbeddingModel,
        plugin: Option<&'a LoraPlugin>,
        profile: &'a BaseModelProfile,
    ) -> Self {
        SqlGenerator { base, plugin, profile }
    }

    /// Generates `cfg.n_samples` candidate SQL strings for a question
    /// against a (typically schema-linked) prompt schema.
    pub fn generate(
        &self,
        question: &str,
        prompt_schema: &CatalogSchema,
        values: &ValueIndex,
        cfg: GenConfig,
        rng: &mut StdRng,
    ) -> Vec<String> {
        self.generate_with_retrieval_text(question, question, prompt_schema, values, cfg, rng)
    }

    /// [`SqlGenerator::generate`], also reporting sampling counters. The
    /// candidates are byte-identical to `generate`'s.
    pub fn generate_with_counters(
        &self,
        question: &str,
        prompt_schema: &CatalogSchema,
        values: &ValueIndex,
        cfg: GenConfig,
        rng: &mut StdRng,
    ) -> (Vec<String>, GenCounters) {
        let mut counters = GenCounters::default();
        let out = self.generate_impl(
            question,
            question,
            prompt_schema,
            values,
            cfg,
            rng,
            &mut counters,
        );
        (out, counters)
    }

    /// Like [`SqlGenerator::generate`], but retrieves skeleton prototypes
    /// with a different text than the one used for slot filling. DAIL-SQL
    /// style masked-question matching uses this: structure is matched on
    /// the question with schema words removed, slots on the full question.
    pub fn generate_with_retrieval_text(
        &self,
        question: &str,
        retrieval_text: &str,
        prompt_schema: &CatalogSchema,
        values: &ValueIndex,
        cfg: GenConfig,
        rng: &mut StdRng,
    ) -> Vec<String> {
        let mut counters = GenCounters::default();
        self.generate_impl(
            question,
            retrieval_text,
            prompt_schema,
            values,
            cfg,
            rng,
            &mut counters,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_impl(
        &self,
        question: &str,
        retrieval_text: &str,
        prompt_schema: &CatalogSchema,
        values: &ValueIndex,
        cfg: GenConfig,
        rng: &mut StdRng,
        counters: &mut GenCounters,
    ) -> Vec<String> {
        let filler = SlotFiller::new(prompt_schema, values, question);
        // Rank skeleton prototypes once.
        let ranked = self.ranked_prototypes(retrieval_text);
        // Slot (identifier) decisions are a *systematic* property of the
        // model given a fixed prompt — sampling temperature perturbs the
        // decoded surface (noise) and occasionally the structure, but a
        // model that binds "redemption status" to the wrong column does
        // so on every sample. Hence slot draws come from a per-question
        // seed shared across the n samples, while skeleton slips and
        // decoder noise use the sampling RNG.
        let slot_seed = fingerprint(question) ^ fingerprint(&self.profile.name_and_skill());
        let mut out = Vec::with_capacity(cfg.n_samples);
        for _ in 0..cfg.n_samples.max(1) {
            let mut slot_rng = StdRng::seed_from_u64(slot_seed);
            let sql = self.sample_once(&filler, &ranked, cfg, &mut slot_rng, rng, counters);
            counters.samples += 1;
            out.push(sql);
        }
        out
    }

    /// Prototype indices sorted by cosine to the adapted question
    /// embedding, with their similarities.
    fn ranked_prototypes(&self, question: &str) -> Vec<(usize, f32)> {
        let Some(plugin) = self.plugin else { return Vec::new() };
        let emb = self.base.embed(question, Some(&plugin.lora));
        let mut ranked: Vec<(usize, f32)> = plugin
            .prototypes
            .iter()
            .enumerate()
            .map(|(i, p)| (i, cosine(&emb, &p.centroid)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }

    #[allow(clippy::too_many_arguments)]
    fn sample_once(
        &self,
        filler: &SlotFiller<'_>,
        ranked: &[(usize, f32)],
        cfg: GenConfig,
        slot_rng: &mut StdRng,
        rng: &mut StdRng,
        counters: &mut GenCounters,
    ) -> String {
        let Some(plugin) = self.plugin else {
            // No adaptation at all: the base model free-associates.
            counters.fallbacks += 1;
            return filler.fallback_sql();
        };
        if ranked.is_empty() {
            counters.fallbacks += 1;
            return filler.fallback_sql();
        }
        // Skeleton choice: best prototype, with a margin- and
        // temperature-dependent slip to the runner-up.
        let idx = if ranked.len() >= 2 {
            let margin = (ranked[0].1 - ranked[1].1).max(0.0) as f64;
            let skel_temp = cfg.skeleton_temperature.unwrap_or(cfg.temperature);
            let p_slip = (self.profile.skel_slip * skel_temp * (1.0 - margin * 4.0))
                .clamp(0.0, 0.9);
            if p_slip > 0.0 && rng.gen_bool(p_slip) {
                counters.skeleton_slips += 1;
                ranked[1].0
            } else {
                ranked[0].0
            }
        } else {
            ranked[0].0
        };
        let proto = &plugin.prototypes[idx];
        let opts = FillOptions {
            cot: plugin.cot_trained,
            slot_skill: self.profile.slot_skill,
            join_skill: self.profile.join_skill,
        };
        let sql = filler.fill(proto.shape, &opts, slot_rng).unwrap_or_else(|| {
            counters.fallbacks += 1;
            filler.fallback_sql()
        });
        corrupt(&sql, &self.profile.noise, cfg.temperature, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::LLAMA2_13B;
    use crate::train::{train_plugin, ExampleKind, TrainExample, TrainOpts};
    use rand::SeedableRng;
    use sqlengine::{Database, Value};
    use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType};

    fn schema() -> CatalogSchema {
        CatalogSchema {
            db_id: "g".into(),
            tables: vec![CatalogTable {
                name: "fund".into(),
                desc_en: "fund master".into(),
                desc_cn: "fund".into(),
                columns: vec![
                    CatalogColumn::new("fname", ColType::Text, "fund name", "fund name"),
                    CatalogColumn::new("ftype", ColType::Text, "fund type", "fund type"),
                    CatalogColumn::new("ret", ColType::Float, "return rate", "return rate"),
                ],
            }],
            foreign_keys: vec![],
        }
    }

    fn db() -> Database {
        let mut db = Database::new(schema());
        for (n, t, r) in [
            ("Alpha Growth", "bond fund", 1.5),
            ("Beta Value", "stock fund", 2.5),
            ("Gamma Mix", "bond fund", 0.5),
        ] {
            db.insert("fund", vec![Value::from(n), Value::from(t), Value::Float(r)]).unwrap();
        }
        db
    }

    fn plugin(base: &EmbeddingModel) -> crate::hub::LoraPlugin {
        let mut examples = Vec::new();
        for i in 0..15 {
            examples.push(TrainExample {
                question: format!("how many funds have fund type kind{i}"),
                sql: format!("SELECT COUNT(*) FROM fund WHERE ftype = 'k{i}'"),
                kind: ExampleKind::Original,
            });
            examples.push(TrainExample {
                question: format!("what is the average return rate of type kind{i}"),
                sql: format!("SELECT AVG(ret) FROM fund WHERE ftype = 'k{i}'"),
                kind: ExampleKind::Original,
            });
        }
        train_plugin(base, "fund", &examples, TrainOpts::default())
    }

    #[test]
    fn trained_generator_produces_correct_sql_greedily() {
        let base = EmbeddingModel::pretrained(42);
        let plugin = plugin(&base);
        let s = schema();
        let database = db();
        let values = ValueIndex::build(&database);
        let g = SqlGenerator::new(&base, Some(&plugin), &LLAMA2_13B);
        let mut rng = StdRng::seed_from_u64(1);
        let out = g.generate(
            "how many funds have fund type bond fund",
            &s,
            &values,
            GenConfig { n_samples: 1, temperature: 0.0, skeleton_temperature: None },
            &mut rng,
        );
        assert_eq!(out.len(), 1);
        assert!(
            sqlengine::execution_accuracy(
                &database,
                &out[0],
                "SELECT COUNT(*) FROM fund WHERE ftype = 'bond fund'"
            ),
            "generated: {}",
            out[0]
        );
    }

    #[test]
    fn unadapted_generator_falls_back() {
        let base = EmbeddingModel::pretrained(42);
        let s = schema();
        let database = db();
        let values = ValueIndex::build(&database);
        let g = SqlGenerator::new(&base, None, &LLAMA2_13B);
        let mut rng = StdRng::seed_from_u64(2);
        let out = g.generate("how many funds", &s, &values, GenConfig::default(), &mut rng);
        assert!(out[0].starts_with("SELECT"));
    }

    #[test]
    fn sampling_produces_varied_candidates() {
        let base = EmbeddingModel::pretrained(42);
        let plugin = plugin(&base);
        let s = schema();
        let database = db();
        let values = ValueIndex::build(&database);
        // A deliberately noisy decoder: sampling must vary the surface
        // while slot decisions stay systematic.
        let noisy = crate::BaseModelProfile {
            noise: crate::noise::NoiseRates {
                typo: 0.5,
                double_eq: 0.5,
                drop_on: 0.0,
                misalign: 0.0,
                value: 0.0,
            },
            ..LLAMA2_13B
        };
        let g = SqlGenerator::new(&base, Some(&plugin), &noisy);
        let mut rng = StdRng::seed_from_u64(3);
        let out = g.generate(
            "how many funds have fund type bond fund",
            &s,
            &values,
            GenConfig { n_samples: 20, temperature: 1.5, skeleton_temperature: None },
            &mut rng,
        );
        let distinct: std::collections::HashSet<&String> = out.iter().collect();
        assert!(distinct.len() > 1, "high temperature must vary output");
    }
}
