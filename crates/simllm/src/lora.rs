//! Low-Rank Adaptation: the paper's Eq. 2–5 implemented literally.
//!
//! For the frozen projection `W0 ∈ R^{d×k}`, a LoRA module holds
//! `A ∈ R^{d×r}` (Gaussian init) and `B ∈ R^{r×k}` (zero init) and adds
//! `ΔW = A B` to the forward pass: `h = W0ᵀx + Bᵀ(Aᵀx)`. Merging plugins
//! sums the factor matrices with weights ω (Eq. 3–4).

use serde::{Deserialize, Serialize};
use textenc::SparseVec;

/// LoRA rank.
pub const LORA_RANK: usize = 48;

/// A LoRA adapter for the embedding projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoraModule {
    /// Row-major `dim_in × r`.
    pub a: Vec<f32>,
    /// Row-major `r × dim_out`.
    pub b: Vec<f32>,
    pub dim_in: usize,
    pub dim_out: usize,
    pub rank: usize,
    /// Scaling factor α/r applied to the delta.
    pub scale: f32,
}

impl LoraModule {
    /// Fresh module: `A` Gaussian-initialised from the seed, `B` zero —
    /// so an untrained module is an exact no-op, as in the paper.
    pub fn init(dim_in: usize, dim_out: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(7);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Uniform in [-1, 1), scaled down like Kaiming init.
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        };
        let a_scale = 1.0 / (dim_in as f32).sqrt();
        let a = (0..dim_in * LORA_RANK).map(|_| next() * a_scale).collect();
        let b = vec![0.0; LORA_RANK * dim_out];
        LoraModule { a, b, dim_in, dim_out, rank: LORA_RANK, scale: 2.0 }
    }

    /// `t = Aᵀx` — the rank-r bottleneck activation.
    pub fn bottleneck(&self, x: &SparseVec) -> Vec<f32> {
        let mut t = vec![0.0f32; self.rank];
        for (i, w) in x.entries() {
            let row = &self.a[*i as usize * self.rank..(*i as usize + 1) * self.rank];
            for (tk, r) in t.iter_mut().zip(row) {
                *tk += w * r;
            }
        }
        t
    }

    /// Adds `scale · Bᵀ(Aᵀx)` into `h`.
    pub fn add_delta(&self, x: &SparseVec, h: &mut [f32]) {
        let t = self.bottleneck(x);
        for (k, tk) in t.iter().enumerate() {
            if *tk == 0.0 {
                continue;
            }
            let row = &self.b[k * self.dim_out..(k + 1) * self.dim_out];
            for (hj, bj) in h.iter_mut().zip(row) {
                *hj += self.scale * tk * bj;
            }
        }
    }

    /// One SGD step of the anchor-regression objective: move the adapted
    /// output toward `target` for input `x`. Returns the squared error
    /// before the step.
    pub fn sgd_step(&mut self, x: &SparseVec, base_out: &[f32], target: &[f32], lr: f32) -> f32 {
        let t = self.bottleneck(x);
        // Current adapted output.
        let mut h = base_out.to_vec();
        for (k, tk) in t.iter().enumerate() {
            let row = &self.b[k * self.dim_out..(k + 1) * self.dim_out];
            for (hj, bj) in h.iter_mut().zip(row) {
                *hj += self.scale * tk * bj;
            }
        }
        // Residual and loss, with a norm clip so a single outlier (or a
        // too-aggressive learning rate) cannot blow the weights up.
        let mut resid: Vec<f32> = h.iter().zip(target).map(|(hj, tj)| hj - tj).collect();
        // finlint: ordered — sequential left-to-right fold over a slice
        let loss = resid.iter().map(|r| r * r).sum::<f32>();
        const CLIP: f32 = 4.0;
        let rnorm = loss.sqrt();
        if rnorm > CLIP {
            let k = CLIP / rnorm;
            for r in &mut resid {
                *r *= k;
            }
        }
        // dL/dB[k][j] = scale * t_k * resid_j
        for (k, tk) in t.iter().enumerate() {
            if *tk == 0.0 {
                continue;
            }
            let row = &mut self.b[k * self.dim_out..(k + 1) * self.dim_out];
            for (bj, rj) in row.iter_mut().zip(&resid) {
                *bj -= lr * self.scale * tk * rj;
            }
        }
        // dL/dA[i][k] = scale * x_i * (B[k,:]·resid)
        let mut brow_dot = vec![0.0f32; self.rank];
        for (k, bd) in brow_dot.iter_mut().enumerate() {
            let row = &self.b[k * self.dim_out..(k + 1) * self.dim_out];
            // finlint: ordered — sequential left-to-right fold over a slice
            *bd = row.iter().zip(&resid).map(|(b, r)| b * r).sum::<f32>();
        }
        for (i, w) in x.entries() {
            let row = &mut self.a[*i as usize * self.rank..(*i as usize + 1) * self.rank];
            for (ak, bd) in row.iter_mut().zip(&brow_dot) {
                *ak -= lr * self.scale * w * bd;
            }
        }
        loss
    }

    /// Weighted merge of LoRA modules — the paper's Eq. 3–4:
    /// `Â = Σ ωᵢAᵢ`, `B̂ = Σ ωᵢBᵢ`. Panics if shapes differ or the input
    /// is empty.
    pub fn merge(modules: &[(&LoraModule, f32)]) -> LoraModule {
        // INVARIANT: documented contract — callers pass at least one
        // module (the hub never merges an empty plugin set).
        let (first, _) = modules.first().expect("merge of zero modules");
        let mut a = vec![0.0f32; first.a.len()];
        let mut b = vec![0.0f32; first.b.len()];
        for (m, w) in modules {
            assert_eq!(m.a.len(), a.len(), "LoRA A shape mismatch");
            assert_eq!(m.b.len(), b.len(), "LoRA B shape mismatch");
            for (acc, v) in a.iter_mut().zip(&m.a) {
                *acc += w * v;
            }
            for (acc, v) in b.iter_mut().zip(&m.b) {
                *acc += w * v;
            }
        }
        LoraModule {
            a,
            b,
            dim_in: first.dim_in,
            dim_out: first.dim_out,
            rank: first.rank,
            scale: first.scale,
        }
    }

    /// Approximate in-memory size in bytes (the paper notes plugins are
    /// small — typically well under 100 MB).
    pub fn size_bytes(&self) -> usize {
        (self.a.len() + self.b.len()) * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{cosine, EmbeddingModel};

    #[test]
    fn untrained_lora_is_identity() {
        let m = EmbeddingModel::pretrained(3);
        let l = LoraModule::init(m.dim_in(), crate::embed::EMBED_DIM, 9);
        let a = m.embed("the quick brown fox", None);
        let b = m.embed("the quick brown fox", Some(&l));
        assert_eq!(a, b, "zero-initialised B must make LoRA a no-op");
    }

    #[test]
    fn sgd_reduces_loss() {
        let m = EmbeddingModel::pretrained(3);
        let mut l = LoraModule::init(m.dim_in(), crate::embed::EMBED_DIM, 9);
        let x = m.features("what is the unit net value");
        let base = m.project_base(&x);
        let target = m.project_base(&m.features("SELECT _ FROM _ WHERE _ = _"));
        let first = l.sgd_step(&x, &base, &target, 0.1);
        let mut last = first;
        for _ in 0..100 {
            last = l.sgd_step(&x, &base, &target, 0.1);
        }
        assert!(last < first * 0.2, "loss must drop: {first} → {last}");
    }

    #[test]
    fn training_moves_embedding_toward_anchor() {
        let m = EmbeddingModel::pretrained(4);
        let mut l = LoraModule::init(m.dim_in(), crate::embed::EMBED_DIM, 10);
        let anchor_text = "SELECT _ FROM _ ORDER BY _ DESC LIMIT _";
        let anchor = m.embed(anchor_text, None);
        let q = "top five funds by highest return";
        let before = cosine(&m.embed(q, Some(&l)), &anchor);
        let x = m.features(q);
        let base = m.project_base(&x);
        let target = m.project_base(&m.features(anchor_text));
        for _ in 0..200 {
            l.sgd_step(&x, &base, &target, 0.05);
        }
        let after = cosine(&m.embed(q, Some(&l)), &anchor);
        assert!(after > before + 0.3, "cosine must rise: {before} → {after}");
    }

    #[test]
    fn merge_is_weighted_sum() {
        let mut a = LoraModule::init(8, 4, 1);
        let mut b = LoraModule::init(8, 4, 2);
        a.b.iter_mut().for_each(|v| *v = 1.0);
        b.b.iter_mut().for_each(|v| *v = 3.0);
        let merged = LoraModule::merge(&[(&a, 0.5), (&b, 0.5)]);
        assert!(merged.b.iter().all(|v| (*v - 2.0).abs() < 1e-6));
        for i in 0..merged.a.len() {
            let expect = 0.5 * a.a[i] + 0.5 * b.a[i];
            assert!((merged.a[i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn plugin_size_is_small() {
        let m = EmbeddingModel::pretrained(3);
        let l = LoraModule::init(m.dim_in(), crate::embed::EMBED_DIM, 9);
        assert!(l.size_bytes() < 100 * 1024 * 1024, "plugin must stay under 100 MB");
    }

    #[test]
    #[should_panic(expected = "merge of zero modules")]
    fn merge_of_nothing_panics() {
        let _ = LoraModule::merge(&[]);
    }
}
