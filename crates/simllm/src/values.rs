//! The value index: DB-content grounding for literal slots.
//!
//! Production Text-to-SQL systems (including FinSQL's deployment) keep an
//! offline index of distinct cell values so that literals in questions
//! can be matched to columns *without executing queries*. This module
//! builds that index and extracts literal spans (values, numbers, dates)
//! from question text.

use sqlengine::{Database, Value};
use sqlkit::catalog::CatalogTable;
use std::collections::{BTreeMap, BTreeSet};

/// Maximum distinct values a column may have to be indexed (large
/// free-text columns are useless for matching and bloat the index).
const MAX_DISTINCT: usize = 400;
/// Minimum value length worth matching.
const MIN_LEN: usize = 3;

/// A value occurrence in some column.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueHit {
    pub table: String,
    pub column: String,
    /// The original-cased value as stored.
    pub value: String,
}

/// An index of distinct text values across a database's columns.
#[derive(Debug, Clone)]
pub struct ValueIndex {
    /// `(lower-cased value, table, column, original value)`, sorted by
    /// descending value length so maximal matches come first.
    entries: Vec<(String, String, String, String)>,
    /// CSR buckets over the leading byte pair of each lowercase value:
    /// `bucket_entries[bucket_offsets[p]..bucket_offsets[p + 1]]` lists
    /// (ascending) the indices of every entry whose value starts with the
    /// two bytes `p`. A value can only occur inside a question whose text
    /// contains that pair, so a lookup visits a handful of buckets
    /// instead of streaming every entry.
    bucket_offsets: Vec<u32>,
    bucket_entries: Vec<u32>,
    /// Per-entry `(lowercased leading word, original-cased leading word)`
    /// of the original value — `None` when the value has no word of at
    /// least 3 bytes. Precomputed so LIKE-prefix probes don't re-split
    /// and re-lowercase every value on every question.
    first_words: Vec<Option<(String, String)>>,
    /// Per-column distinct-value accumulator the derived structures are
    /// a pure function of. Kept so live appends can refresh the index
    /// incrementally ([`ValueIndex::absorb_rows`]) with a result
    /// *identical* to a from-scratch [`ValueIndex::build`]: union the
    /// new values in, then re-derive. BTree containers keep iteration
    /// deterministic.
    col_state: BTreeMap<(String, String), ColState>,
}

/// Distinct string values seen in one `(table, column)`. Once the count
/// exceeds [`MAX_DISTINCT`] the column is permanently out (`over`) and
/// its set is dropped — a state that is monotone under appends, which is
/// what makes incremental absorption exact: a column over the cap from
/// scratch is over the cap incrementally, and vice versa.
#[derive(Debug, Clone, Default)]
struct ColState {
    distinct: BTreeSet<String>,
    over: bool,
}

impl ColState {
    /// Unions a column's values into the accumulator, tripping `over`
    /// (and dropping the set) past the distinct cap.
    fn absorb<'a>(&mut self, values: impl Iterator<Item = &'a Value>) {
        if self.over {
            return;
        }
        for v in values {
            if let Value::Str(s) = v {
                self.distinct.insert(s.clone());
                if self.distinct.len() > MAX_DISTINCT {
                    self.over = true;
                    self.distinct = BTreeSet::new();
                    return;
                }
            }
        }
    }
}

/// Number of distinct 2-byte windows (the CSR bucket key space).
const N_PAIRS: usize = 1 << 16;

fn pair_of(b0: u8, b1: u8) -> usize {
    usize::from(b0) << 8 | usize::from(b1)
}

impl ValueIndex {
    /// Scans every text column of the database.
    pub fn build(db: &Database) -> Self {
        let mut col_state: BTreeMap<(String, String), ColState> = BTreeMap::new();
        for table in db.tables() {
            for (ci, col) in table.def.columns.iter().enumerate() {
                col_state
                    .entry((table.def.name.clone(), col.name.clone()))
                    .or_default()
                    .absorb(table.rows.iter().map(|r| &r[ci]));
            }
        }
        let mut index = ValueIndex {
            entries: Vec::new(),
            bucket_offsets: Vec::new(),
            bucket_entries: Vec::new(),
            first_words: Vec::new(),
            col_state,
        };
        index.rebuild_derived();
        index
    }

    /// Absorbs freshly appended rows of one table into the index, then
    /// re-derives entries, CSR buckets and first words from the updated
    /// per-column state. Because the derived structures are a pure
    /// function of `col_state`, and absorbing rows unions exactly the
    /// values a from-scratch scan would see, the result is structurally
    /// identical to `ValueIndex::build` on the post-append database —
    /// the differential tests below and in `crates/core` pin this.
    pub fn absorb_rows(&mut self, def: &CatalogTable, rows: &[Vec<Value>]) {
        self.absorb_batch([(def, rows)]);
    }

    /// [`ValueIndex::absorb_rows`] over many appends at once — unions
    /// every batch's values into the per-column state first and
    /// re-derives the index exactly once, so absorbing a long change-log
    /// tail costs one derivation instead of one per record. Identical
    /// result to absorbing the batches one by one (set union is
    /// order-insensitive and the derivation is a pure function of the
    /// final state).
    pub fn absorb_batch<'a>(
        &mut self,
        batches: impl IntoIterator<Item = (&'a CatalogTable, &'a [Vec<Value>])>,
    ) {
        for (def, rows) in batches {
            for (ci, col) in def.columns.iter().enumerate() {
                self.col_state
                    .entry((def.name.clone(), col.name.clone()))
                    .or_default()
                    .absorb(rows.iter().map(|r| &r[ci]));
            }
        }
        self.rebuild_derived();
    }

    /// Recomputes every derived structure from `col_state`.
    fn rebuild_derived(&mut self) {
        let mut entries = Vec::new();
        for ((table, column), state) in &self.col_state {
            if state.over {
                continue;
            }
            // BTreeSet iterates in the byte order the old sorted-Vec
            // drain produced, so entry insertion order is deterministic
            // (and erased anyway by the total sort below).
            for v in &state.distinct {
                if v.chars().count() >= MIN_LEN && !looks_like_date(v) {
                    entries.push((v.to_lowercase(), table.clone(), column.clone(), v.clone()));
                }
            }
        }
        // Total order over the full entry (length desc, then every field)
        // so no pair of distinct entries can ever tie.
        entries.sort_by(|a, b| {
            b.0.len()
                .cmp(&a.0.len())
                .then_with(|| a.0.cmp(&b.0))
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
                .then_with(|| a.3.cmp(&b.3))
        });
        // CSR buckets keyed by each entry's leading byte pair (every
        // value has >= MIN_LEN chars, so >= 2 bytes). Entries are visited
        // in ascending index order, so every bucket lists its indices
        // ascending by construction.
        let mut bucket_offsets = vec![0u32; N_PAIRS + 1];
        for (lower, ..) in &entries {
            let b = lower.as_bytes();
            bucket_offsets[pair_of(b[0], b[1]) + 1] += 1;
        }
        for p in 0..N_PAIRS {
            bucket_offsets[p + 1] += bucket_offsets[p];
        }
        let mut bucket_entries = vec![0u32; entries.len()];
        let mut cursor = bucket_offsets.clone();
        for (i, (lower, ..)) in entries.iter().enumerate() {
            let b = lower.as_bytes();
            let p = pair_of(b[0], b[1]);
            bucket_entries[cursor[p] as usize] = i as u32;
            cursor[p] += 1;
        }
        let first_words = entries
            .iter()
            .map(|(_, _, _, original)| {
                let word = original.split_whitespace().next()?;
                if word.len() >= 3 {
                    Some((word.to_lowercase(), word.to_string()))
                } else {
                    None
                }
            })
            .collect();
        self.entries = entries;
        self.bucket_offsets = bucket_offsets;
        self.bucket_entries = bucket_entries;
        self.first_words = first_words;
    }

    /// Number of indexed values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates all `(table, column, original value)` entries, longest
    /// value first.
    pub fn all_entries(&self) -> impl Iterator<Item = (&String, &String, &String)> {
        self.entries.iter().map(|(_, t, c, v)| (t, c, v))
    }

    /// Finds indexed values occurring verbatim (case-insensitively) in
    /// the question, longest first.
    pub fn find_in_question(&self, question: &str) -> Vec<ValueHit> {
        let q = question.to_lowercase();
        let qb = q.as_bytes();
        let mut hits = Vec::new();
        if qb.len() < 2 {
            // No two-byte window exists, and every entry is at least
            // MIN_LEN (3) chars — nothing can match.
            return hits;
        }
        // Bitset of every 2-byte window of the question — the membership
        // oracle for both prefilters below.
        let mut pairs = [0u64; 1024];
        for w in qb.windows(2) {
            let p = pair_of(w[0], w[1]);
            pairs[p >> 6] |= 1u64 << (p & 63);
        }
        // Candidate gathering: walk the question's (distinct) pairs and
        // collect the CSR bucket of each — exactly the entries whose
        // leading pair occurs in the question, i.e. the set the old full
        // scan's leading-pair prefilter kept. Each entry lives in one
        // bucket, so indices are unique; sorting restores the original
        // scan order (entries are length-descending by index).
        let mut todo = pairs;
        let mut cand: Vec<u32> = Vec::new();
        for w in qb.windows(2) {
            let p = pair_of(w[0], w[1]);
            if todo[p >> 6] & (1u64 << (p & 63)) != 0 {
                todo[p >> 6] &= !(1u64 << (p & 63));
                let (lo, hi) =
                    (self.bucket_offsets[p] as usize, self.bucket_offsets[p + 1] as usize);
                cand.extend_from_slice(&self.bucket_entries[lo..hi]);
            }
        }
        cand.sort_unstable();
        'cand: for idx in cand {
            let (lower, table, column, original) = &self.entries[idx as usize];
            // Every 2-byte window of the value must occur in the question
            // for the value to be a substring — a cheap certain-reject
            // pass before the verbatim check. Pure prefilter: the hits
            // and their order are exactly the full scan's.
            for w in lower.as_bytes().windows(2) {
                let p = pair_of(w[0], w[1]);
                if pairs[p >> 6] & (1u64 << (p & 63)) == 0 {
                    continue 'cand;
                }
            }
            if q.contains(lower.as_str()) {
                hits.push(ValueHit {
                    table: table.clone(),
                    column: column.clone(),
                    value: original.clone(),
                });
            }
        }
        hits
    }

    /// `(table, column, original-cased leading word)` for every value
    /// whose leading word (>= 3 bytes) occurs case-insensitively in the
    /// already-lowercased question text, in entry order — the candidate
    /// set for LIKE-prefix matching.
    pub fn prefix_hits(&self, qlower: &str) -> Vec<(String, String, String)> {
        let qb = qlower.as_bytes();
        let mut out = Vec::new();
        if qb.len() < 2 {
            return out;
        }
        let mut pairs = [0u64; 1024];
        for w in qb.windows(2) {
            let p = pair_of(w[0], w[1]);
            pairs[p >> 6] |= 1u64 << (p & 63);
        }
        'entry: for (entry, word) in self.entries.iter().zip(&self.first_words) {
            let Some((lower_word, orig_word)) = word else { continue };
            // Same certain-reject window filter as `find_in_question`,
            // over the word instead of the whole value.
            for w in lower_word.as_bytes().windows(2) {
                let p = pair_of(w[0], w[1]);
                if pairs[p >> 6] & (1u64 << (p & 63)) == 0 {
                    continue 'entry;
                }
            }
            if qlower.contains(lower_word.as_str()) {
                out.push((entry.1.clone(), entry.2.clone(), orig_word.clone()));
            }
        }
        out
    }
}

/// `YYYY-MM-DD` check.
pub fn looks_like_date(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b.iter().enumerate().all(|(i, c)| {
            if i == 4 || i == 7 {
                *c == b'-'
            } else {
                c.is_ascii_digit()
            }
        })
}

/// Extracts numeric literals (`123`, `45.20`) from raw question text, in
/// order of appearance. Digits that are part of a date are skipped.
pub fn extract_numbers(question: &str) -> Vec<f64> {
    let mut out = Vec::new();
    for span in number_spans(question) {
        if let Ok(v) = span.parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Extracts `YYYY-MM-DD` dates from the question, in order.
pub fn extract_dates(question: &str) -> Vec<String> {
    let bytes = question.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 10 <= bytes.len() {
        // A date is pure ASCII, so byte-slicing is safe once the window
        // starts on a char boundary (CJK questions contain multi-byte
        // chars elsewhere).
        if !question.is_char_boundary(i) || !question.is_char_boundary(i + 10) {
            i += 1;
            continue;
        }
        let cand = &question[i..i + 10];
        if looks_like_date(cand)
            && (i == 0 || !bytes[i - 1].is_ascii_digit())
            && (i + 10 == bytes.len() || !bytes[i + 10].is_ascii_digit())
        {
            out.push(cand.to_string());
            i += 10;
        } else {
            i += 1;
        }
    }
    out
}

/// Extracts the raw numeric spans (`"3"`, `"45.20"`) from a question, in
/// order of appearance, skipping digits that belong to dates.
pub fn extract_number_spans(question: &str) -> Vec<String> {
    number_spans(question)
}

/// Numeric spans excluding date digits.
fn number_spans(question: &str) -> Vec<String> {
    // Blank out dates first.
    let mut masked: Vec<u8> = question.as_bytes().to_vec();
    let mut i = 0;
    while i + 10 <= masked.len() {
        if !question.is_char_boundary(i) || !question.is_char_boundary(i + 10) {
            i += 1;
            continue;
        }
        if looks_like_date(&question[i..i + 10]) {
            for b in &mut masked[i..i + 10] {
                *b = b' ';
            }
            i += 10;
        } else {
            i += 1;
        }
    }
    let text = String::from_utf8_lossy(&masked).into_owned();
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            let mut seen_dot = false;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || (bytes[i] == b'.'
                        && !seen_dot
                        && i + 1 < bytes.len()
                        && bytes[i + 1].is_ascii_digit()))
            {
                if bytes[i] == b'.' {
                    seen_dot = true;
                }
                i += 1;
            }
            out.push(text[start..i].to_string());
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType};

    fn db() -> Database {
        let schema = CatalogSchema {
            db_id: "v".into(),
            tables: vec![CatalogTable {
                name: "fund".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![
                    CatalogColumn::new("fname", ColType::Text, "fund name", ""),
                    CatalogColumn::new("ftype", ColType::Text, "fund type", ""),
                    CatalogColumn::new("d", ColType::Date, "date", ""),
                ],
            }],
            foreign_keys: vec![],
        };
        let mut db = Database::new(schema);
        for (n, t, d) in [
            ("Harvest Growth A", "bond fund", "2022-01-04"),
            ("Bosera Value C", "stock fund", "2022-02-07"),
        ] {
            db.insert("fund", vec![Value::from(n), Value::from(t), Value::from(d)]).unwrap();
        }
        db
    }

    #[test]
    fn index_finds_values_in_questions() {
        let idx = ValueIndex::build(&db());
        let hits = idx.find_in_question("What is the date of the fund whose fund type is bond fund?");
        assert!(hits.iter().any(|h| h.column == "ftype" && h.value == "bond fund"));
        // Longest match first.
        let hits = idx.find_in_question("show Harvest Growth A please");
        assert_eq!(hits[0].value, "Harvest Growth A");
    }

    #[test]
    fn dates_are_not_indexed_as_values() {
        let idx = ValueIndex::build(&db());
        let hits = idx.find_in_question("on 2022-01-04 what happened");
        assert!(hits.is_empty());
    }

    #[test]
    fn matching_is_case_insensitive() {
        let idx = ValueIndex::build(&db());
        let hits = idx.find_in_question("what about BOND FUND here");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].value, "bond fund");
    }

    #[test]
    fn build_is_deterministic_across_hashset_states() {
        // Case-variants of one value share (length, lowercase, table,
        // column) — exactly the ties that used to be broken by HashSet
        // iteration order. Every HashSet instance gets its own
        // RandomState, so repeated builds exercise different orders.
        let schema = CatalogSchema {
            db_id: "v".into(),
            tables: vec![CatalogTable {
                name: "fund".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![CatalogColumn::new("fname", ColType::Text, "fund name", "")],
            }],
            foreign_keys: vec![],
        };
        let mut db = Database::new(schema);
        for v in ["Bond Fund", "BOND FUND", "bond fund", "BoNd FuNd", "bOnD fUnD"] {
            db.insert("fund", vec![Value::from(v)]).unwrap();
        }
        let reference = ValueIndex::build(&db).entries;
        for _ in 0..20 {
            assert_eq!(ValueIndex::build(&db).entries, reference);
        }
    }

    /// Structural equality of two indexes: every derived field must
    /// match (col_state is compared through what it derives).
    fn assert_same_index(a: &ValueIndex, b: &ValueIndex) {
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.bucket_offsets, b.bucket_offsets);
        assert_eq!(a.bucket_entries, b.bucket_entries);
        assert_eq!(a.first_words, b.first_words);
    }

    #[test]
    fn absorb_rows_matches_from_scratch_build() {
        let mut database = db();
        let mut incremental = ValueIndex::build(&database);
        let new_rows = vec![
            vec![Value::from("Penghua Dividend C"), Value::from("mixed fund"), Value::from("2022-03-01")],
            vec![Value::from("Harvest Growth A"), Value::from("bond fund"), Value::from("2022-03-02")],
        ];
        let def = database.table("fund").unwrap().def.clone();
        for row in &new_rows {
            database.insert("fund", row.clone()).unwrap();
        }
        incremental.absorb_rows(&def, &new_rows);
        assert_same_index(&incremental, &ValueIndex::build(&database));
        // New values are findable; duplicates did not double-index.
        let hits = incremental.find_in_question("is Penghua Dividend C a mixed fund?");
        assert!(hits.iter().any(|h| h.value == "Penghua Dividend C"));
        assert_eq!(
            incremental.all_entries().filter(|(_, _, v)| *v == "Harvest Growth A").count(),
            1
        );
    }

    #[test]
    fn absorb_batch_equals_sequential_absorbs() {
        let database = db();
        let def = database.table("fund").unwrap().def.clone();
        let batch_a = vec![vec![
            Value::from("Penghua Dividend C"),
            Value::from("mixed fund"),
            Value::from("2022-03-01"),
        ]];
        let batch_b = vec![vec![
            Value::from("Invesco Balanced B"),
            Value::from("bond fund"),
            Value::from("2022-03-02"),
        ]];
        let mut sequential = ValueIndex::build(&database);
        sequential.absorb_rows(&def, &batch_a);
        sequential.absorb_rows(&def, &batch_b);
        let mut batched = ValueIndex::build(&database);
        batched.absorb_batch([(&def, batch_a.as_slice()), (&def, batch_b.as_slice())]);
        assert_same_index(&batched, &sequential);
    }

    #[test]
    fn absorb_rows_trips_the_distinct_cap_exactly_like_build() {
        let schema = CatalogSchema {
            db_id: "v".into(),
            tables: vec![CatalogTable {
                name: "fund".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![CatalogColumn::new("fname", ColType::Text, "fund name", "")],
            }],
            foreign_keys: vec![],
        };
        let mut database = Database::new(schema);
        for i in 0..MAX_DISTINCT - 1 {
            database.insert("fund", vec![Value::from(format!("fund {i:04}").as_str())]).unwrap();
        }
        let mut incremental = ValueIndex::build(&database);
        let def = database.table("fund").unwrap().def.clone();
        // Push the column over the cap incrementally: the column must go
        // dark, exactly as a from-scratch build over the grown data.
        let new_rows: Vec<Vec<Value>> =
            (0..5).map(|i| vec![Value::from(format!("late {i}").as_str())]).collect();
        for row in &new_rows {
            database.insert("fund", row.clone()).unwrap();
        }
        incremental.absorb_rows(&def, &new_rows);
        assert_same_index(&incremental, &ValueIndex::build(&database));
        assert!(incremental.is_empty(), "over-cap column must drop out of the index");
        // And it stays out: further absorbs on an over column are no-ops.
        incremental.absorb_rows(&def, &[vec![Value::from("one more")]]);
        assert!(incremental.is_empty());
    }

    #[test]
    fn number_extraction() {
        assert_eq!(extract_numbers("top 3 funds above 45.20 percent"), vec![3.0, 45.2]);
        assert_eq!(extract_numbers("no numbers here"), Vec::<f64>::new());
    }

    #[test]
    fn number_extraction_skips_dates() {
        assert_eq!(extract_numbers("between 2022-01-04 and 2022-02-07 above 1.5"), vec![1.5]);
    }

    #[test]
    fn date_extraction() {
        assert_eq!(
            extract_dates("from 2022-01-04 to 2022-02-07"),
            vec!["2022-01-04".to_string(), "2022-02-07".to_string()]
        );
        assert!(extract_dates("the code 20220104 is not a date").is_empty());
    }
}
