//! Inverted n-gram index over prototype retrieval texts.
//!
//! Retrieval in [`crate::SqlGenerator`] ranks a question embedding
//! against every prototype centroid. This module prunes that sweep the
//! way classic text engines prune scoring: each prototype is indexed by
//! the interned word tokens and character trigrams of its retrieval
//! texts (its skeleton plus the train-split questions that produced it),
//! and a question accumulates document-frequency-weighted votes over the
//! posting lists it touches. The best-voted prototypes become the
//! *candidate set*; only they are scored exactly.
//!
//! Pruning is **never allowed to change an answer**: the candidate
//! scores feed [`crate::PrototypeMatrix::ranked_pruned`], which returns
//! the pruned top-2 only under an int8-quantisation certificate — a
//! per-row upper bound `scale·(q·quant + ‖q‖₁/2)` on the exact dot —
//! proving no unscored prototype could displace them. When the
//! certificate fails — or when the question shares no signal with any
//! posting list — the generator falls back to the full sweep, so the
//! emitted SQL is bit-identical with and without the index.
//!
//! Determinism: term ids are interned in document order at build time,
//! posting lists hold sorted prototype ids, and accumulation walks a
//! dense per-prototype array — no hash-order iteration anywhere on the
//! query path.

use crate::hub::Prototype;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use textenc::tokenize;

/// How many best-voted prototypes survive into the candidate set.
pub const MAX_CANDIDATES: usize = 8;

/// FNV-1a hasher for the intern map: term probes hash 3–10 byte keys,
/// where FNV beats the default SipHash severalfold. The map it backs is
/// lookup-only on the query path, so hash order never reaches an answer.
#[derive(Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type BuildFnv = BuildHasherDefault<FnvHasher>;

/// Counters for how often pruning actually certified vs fell back to the
/// full sweep (interior-mutable so a shared `&PrototypeIndex` can record
/// from concurrent batch workers).
#[derive(Debug, Default)]
pub struct PruneStats {
    certified: AtomicU64,
    fallback: AtomicU64,
}

impl PruneStats {
    pub fn record_certified(&self) {
        self.certified.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_fallback(&self) {
        self.fallback.fetch_add(1, Ordering::Relaxed);
    }

    /// `(certified, fallback)` totals since construction.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.certified.load(Ordering::Relaxed), self.fallback.load(Ordering::Relaxed))
    }
}

/// Inverted index: interned term → sorted posting list of prototype ids.
#[derive(Debug, Default)]
pub struct PrototypeIndex {
    /// Term text → interned id. Interning order is document order
    /// (prototype 0's terms first), so ids are build-deterministic. The
    /// map is only ever *probed* — never iterated.
    term_ids: HashMap<String, u32, BuildFnv>,
    /// `postings[t]` = prototype ids containing term `t`, sorted
    /// ascending (append order during the in-order build pass).
    postings: Vec<Vec<u32>>,
    /// Per-term vote weight `1 / document-frequency`: a term shared by
    /// every prototype (e.g. `select`) contributes little; a rare
    /// literal's trigram is nearly decisive.
    weights: Vec<f32>,
    n_prototypes: usize,
    /// Certified/fallback counters for benchmarking.
    pub stats: PruneStats,
}

/// Appends the interned terms of one text: word tokens plus the
/// character trigrams of each token of length ≥ 3.
fn terms_of_text(text: &str, out: &mut Vec<String>) {
    for tok in tokenize(text) {
        let chars: Vec<char> = tok.chars().collect();
        if chars.len() >= 3 {
            for w in chars.windows(3) {
                out.push(w.iter().collect());
            }
        }
        out.push(tok);
    }
}

impl PrototypeIndex {
    /// Builds the index from one document per prototype: `docs[j]` holds
    /// the retrieval texts of prototype `j` (its skeleton plus the
    /// questions of the train examples it was distilled from).
    pub fn build(docs: &[Vec<String>]) -> Self {
        let mut index = PrototypeIndex {
            term_ids: HashMap::default(),
            postings: Vec::new(),
            weights: Vec::new(),
            n_prototypes: docs.len(),
            stats: PruneStats::default(),
        };
        let mut terms = Vec::new();
        for (j, doc) in docs.iter().enumerate() {
            terms.clear();
            for text in doc {
                terms_of_text(text, &mut terms);
            }
            terms.sort();
            terms.dedup();
            for term in &terms {
                let next = index.postings.len() as u32;
                let id = *index.term_ids.entry(term.clone()).or_insert(next);
                if id == next {
                    index.postings.push(Vec::new());
                }
                // One doc pass per prototype in ascending j ⇒ appends
                // keep every posting list sorted.
                index.postings[id as usize].push(j as u32);
            }
        }
        index.weights = index
            .postings
            .iter() // finlint: ordered — dense Vec in interned-id order; per-list weights ignore walk order
            .map(|p| 1.0 / p.len().max(1) as f32)
            .collect();
        index
    }

    /// Skeleton-only fallback build, for callers that no longer have the
    /// training examples (e.g. hot plugin swaps): weaker recall per
    /// posting list, same exactness guarantee.
    pub fn from_prototypes(prototypes: &[Prototype]) -> Self {
        let docs: Vec<Vec<String>> =
            prototypes.iter().map(|p| vec![p.skeleton.clone()]).collect();
        Self::build(&docs)
    }

    /// Number of indexed prototypes.
    pub fn len(&self) -> usize {
        self.n_prototypes
    }

    /// True when the index covers no prototypes.
    pub fn is_empty(&self) -> bool {
        self.n_prototypes == 0
    }

    /// Interned term ids of a query text, sorted ascending and
    /// deduplicated — a canonical signature usable as a memoisation key
    /// for [`PrototypeIndex::candidates`].
    ///
    /// The query path probes the intern map with borrowed byte slices of
    /// each token (trigrams via char-boundary offsets) instead of
    /// materialising one `String` per trigram like the build pass does —
    /// same term set, none of the ~60 allocations per question.
    pub fn terms(&self, text: &str) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::new();
        let mut bounds: Vec<usize> = Vec::new();
        for tok in tokenize(text) {
            bounds.clear();
            bounds.extend(tok.char_indices().map(|(i, _)| i));
            bounds.push(tok.len());
            let nch = bounds.len() - 1;
            if nch >= 3 {
                for w in 0..nch - 2 {
                    if let Some(&id) = self.term_ids.get(&tok[bounds[w]..bounds[w + 3]]) {
                        ids.push(id);
                    }
                }
            }
            if let Some(&id) = self.term_ids.get(tok.as_str()) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The candidate prototypes for a term signature: accumulate each
    /// term's `1/df` weight over its posting list, keep the
    /// [`MAX_CANDIDATES`] best-voted ids (weight desc, id asc), and
    /// return them sorted ascending. Empty when no term matched any
    /// posting list — callers must treat that as "run the full sweep",
    /// never as "prototype 0 wins".
    pub fn candidates(&self, terms: &[u32]) -> Vec<usize> {
        if self.n_prototypes == 0 || terms.is_empty() {
            return Vec::new();
        }
        let mut votes = vec![0.0f32; self.n_prototypes];
        let mut touched = false;
        // Terms arrive sorted; each posting list is sorted — the whole
        // accumulation order is fixed by interned ids, not hash order.
        for &t in terms {
            let Some(list) = self.postings.get(t as usize) else { continue };
            let w = self.weights[t as usize];
            for &j in list {
                votes[j as usize] += w;
                touched = true;
            }
        }
        if !touched {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..self.n_prototypes).collect();
        order.sort_by(|&a, &b| votes[b].total_cmp(&votes[a]).then(a.cmp(&b)));
        order.truncate(MAX_CANDIDATES);
        order.retain(|&j| votes[j] > 0.0);
        order.sort_unstable();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<String>> {
        vec![
            vec![
                "SELECT COUNT(*) FROM _ WHERE _ = _".into(),
                "how many funds have redemption status open".into(),
            ],
            vec![
                "SELECT AVG(_) FROM _".into(),
                "what is the average return rate".into(),
            ],
            vec![
                "SELECT _ FROM _ ORDER BY _ DESC LIMIT _".into(),
                "top five funds by net asset value".into(),
            ],
        ]
    }

    #[test]
    fn candidates_favor_shared_rare_terms() {
        let index = PrototypeIndex::build(&docs());
        let terms = index.terms("average return rate of bond funds");
        let cands = index.candidates(&terms);
        assert!(cands.contains(&1), "prototype 1 shares 'average return rate': {cands:?}");
    }

    #[test]
    fn candidates_are_sorted_and_bounded() {
        let index = PrototypeIndex::build(&docs());
        let terms = index.terms("how many funds have average net asset value");
        let cands = index.candidates(&terms);
        assert!(cands.len() <= MAX_CANDIDATES);
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "ascending unique: {cands:?}");
    }

    #[test]
    fn unmatched_question_yields_empty_candidates() {
        let index = PrototypeIndex::build(&docs());
        let terms = index.terms("xq zk vw");
        assert!(terms.is_empty() || index.candidates(&terms).is_empty());
    }

    #[test]
    fn posting_lists_stay_sorted() {
        let index = PrototypeIndex::build(&docs());
        for list in &index.postings {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted unique postings");
        }
    }

    #[test]
    fn term_ids_are_interned_in_document_order() {
        let a = PrototypeIndex::build(&docs());
        let b = PrototypeIndex::build(&docs());
        assert_eq!(a.term_ids, b.term_ids, "build must be deterministic");
        assert_eq!(a.postings, b.postings);
    }

    #[test]
    fn skeleton_only_build_still_indexes() {
        use crate::hub::Prototype;
        use crate::shape::ShapeKind;
        let protos = vec![Prototype {
            skeleton: "SELECT COUNT(*) FROM _ WHERE _ = _".into(),
            shape: ShapeKind::CountFilter,
            centroid: vec![0.0; crate::embed::EMBED_DIM],
            count: 1.0,
        }];
        let index = PrototypeIndex::from_prototypes(&protos);
        assert_eq!(index.len(), 1);
        let terms = index.terms("select count from x");
        assert!(!index.candidates(&terms).is_empty());
    }
}
