//! Schema-grounded slot filling: instantiating a retrieved query shape
//! against the (schema-linked) prompt schema and the question's literals.
//!
//! This is the generation half of the simulated LLM. Identifier slots are
//! resolved by lexical affinity between question tokens and column/table
//! descriptions (the same signal a fine-tuned LLM exploits); literal
//! slots come from the [`crate::values::ValueIndex`] and from
//! number/date extraction. Join resolution is where the chain-of-thought
//! flag matters: a CoT-trained model searches the declared foreign-key
//! graph for a consistent join path, while a non-CoT model picks tables
//! greedily and only sometimes lands on a joinable pair — reproducing the
//! paper's observation that CoT data mainly helps multi-step queries.

use crate::shape::{AggKind, ShapeKind};
use crate::values::{extract_dates, extract_number_spans, ValueHit, ValueIndex};
use rand::rngs::StdRng;
use rand::Rng;
use sqlkit::catalog::{CatalogSchema, ColType};
use std::cell::{OnceCell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use textenc::{tokenize, tokenize_identifier};

/// Tokenised form of one description string, plus the joined phrase
/// [`SlotFiller::desc_score`] probes for verbatim occurrence.
struct DescTokens {
    tokens: Vec<String>,
    phrase: String,
}

thread_local! {
    /// Per-thread memo of tokenised schema descriptions. Tokenisation is
    /// a pure function of the text and the same few hundred catalog
    /// descriptions are re-scored for every question, so the memo trades
    /// a map lookup for re-tokenising (and re-joining) each one. Lookup
    /// only — the map is never iterated, so hash order cannot leak.
    static DESC_TOKENS: RefCell<HashMap<String, Rc<DescTokens>>> =
        RefCell::new(HashMap::new());
    /// Same memo for identifier splitting of table/column names.
    static IDENT_TOKENS: RefCell<HashMap<String, Rc<Vec<String>>>> =
        RefCell::new(HashMap::new());
}

/// Memoised [`tokenize`] + phrase join of a description string.
fn desc_tokens(desc: &str) -> Rc<DescTokens> {
    DESC_TOKENS.with(|cache| {
        if let Some(hit) = cache.borrow().get(desc) {
            return Rc::clone(hit);
        }
        let tokens = tokenize(desc);
        let phrase =
            tokens.join(if desc.chars().any(|c| c as u32 >= 0x4E00) { "" } else { " " });
        let entry = Rc::new(DescTokens { tokens, phrase });
        cache.borrow_mut().insert(desc.to_string(), Rc::clone(&entry));
        entry
    })
}

/// Memoised [`tokenize_identifier`].
fn ident_tokens(ident: &str) -> Rc<Vec<String>> {
    IDENT_TOKENS.with(|cache| {
        if let Some(hit) = cache.borrow().get(ident) {
            return Rc::clone(hit);
        }
        let entry = Rc::new(tokenize_identifier(ident));
        cache.borrow_mut().insert(ident.to_string(), Rc::clone(&entry));
        entry
    })
}

/// Knobs controlled by the base-model profile and training state.
#[derive(Debug, Clone, Copy)]
pub struct FillOptions {
    /// Whether the model was trained with chain-of-thought data (enables
    /// FK-graph search for multi-table shapes).
    pub cot: bool,
    /// Probability of taking the best-scoring candidate for a slot
    /// (otherwise the runner-up) — the paper's "capacity" differences
    /// between base models reduce to this.
    pub slot_skill: f64,
    /// Probability that a non-CoT model still resolves a join correctly.
    pub join_skill: f64,
}

impl Default for FillOptions {
    fn default() -> Self {
        FillOptions { cot: true, slot_skill: 0.95, join_skill: 0.6 }
    }
}

/// A column candidate with its affinity to the question.
#[derive(Debug, Clone, Copy)]
struct ColCand {
    ti: usize,
    ci: usize,
    score: f32,
    /// First question-token index where this column's description
    /// matches (used to order multi-column SELECT lists by appearance).
    pos: usize,
}

/// The slot filler for one (question, prompt schema) pair.
pub struct SlotFiller<'a> {
    schema: &'a CatalogSchema,
    values: &'a ValueIndex,
    question: &'a str,
    /// The question's word tokens, sorted — membership probes in
    /// [`SlotFiller::overlap`] binary-search here instead of scanning.
    qsorted: Vec<String>,
    /// Lowercased question, computed once — every lexical probe needs it.
    qlower: String,
    /// Bitset of every 2-byte window of `qlower` — a certain-reject
    /// prefilter for substring probes (a phrase whose byte pairs don't
    /// all occur in the question cannot occur verbatim).
    qpairs: Vec<u64>,
    /// Per-table affinity of the table's own description to the question
    /// (cached — it feeds every column score).
    table_affinity: Vec<f32>,
    /// Per-(table, column) affinity, precomputed — `fill` revisits the
    /// same columns across shapes, samples, and candidate rankings.
    col_aff: Vec<Vec<(f32, usize)>>,
    /// Value-index hits for this question, resolved on first use and
    /// shared across samples (the scan over all entries is the single
    /// most expensive lexical probe).
    value_hits: OnceCell<Vec<ValueHit>>,
}

impl<'a> SlotFiller<'a> {
    /// Builds a filler; tokenisation happens once.
    pub fn new(schema: &'a CatalogSchema, values: &'a ValueIndex, question: &'a str) -> Self {
        let mut qsorted = tokenize(question);
        qsorted.sort_unstable();
        let qlower = question.to_lowercase();
        let mut qpairs = vec![0u64; 1024];
        for w in qlower.as_bytes().windows(2) {
            let p = usize::from(w[0]) << 8 | usize::from(w[1]);
            qpairs[p >> 6] |= 1u64 << (p & 63);
        }
        let mut filler = SlotFiller {
            schema,
            values,
            question,
            qsorted,
            qlower,
            qpairs,
            table_affinity: vec![],
            col_aff: vec![],
            value_hits: OnceCell::new(),
        };
        filler.table_affinity = (0..schema.tables.len())
            .map(|ti| {
                let t = &schema.tables[ti];
                let (s_en, _) = filler.overlap(&desc_tokens(&t.desc_en).tokens);
                let (s_cn, _) = filler.overlap(&desc_tokens(&t.desc_cn).tokens);
                let (s_id, _) = filler.overlap(&ident_tokens(&t.name));
                s_en.max(s_cn) + 0.3 * s_id
            })
            .collect();
        filler.col_aff = (0..schema.tables.len())
            .map(|ti| {
                (0..schema.tables[ti].columns.len())
                    .map(|ci| filler.compute_col_affinity(ti, ci))
                    .collect()
            })
            .collect();
        filler
    }

    /// Fills the shape into SQL. `None` means the model could not ground
    /// the shape in the prompt schema (callers fall back to
    /// [`SlotFiller::fallback_sql`]).
    pub fn fill(&self, shape: ShapeKind, opts: &FillOptions, rng: &mut StdRng) -> Option<String> {
        match shape {
            ShapeKind::FilterSelect { n_targets } => self.filter_select(n_targets as usize, opts, rng),
            ShapeKind::CountFilter => {
                let hit = self.pick_hit(opts, rng)?;
                Some(format!(
                    "SELECT COUNT(*) FROM {} WHERE {} = {}",
                    hit.table,
                    hit.column,
                    quote(&hit.value)
                ))
            }
            ShapeKind::AggMeasure { agg, filtered } => {
                let agg = self.lexical_agg().unwrap_or(agg);
                self.agg_measure(agg, filtered, opts, rng)
            }
            ShapeKind::TopkOrder { desc } => self.topk_order(desc, opts, rng),
            ShapeKind::GroupCount => {
                let g = self.best_text_col(None, opts, rng)?;
                let (t, c) = self.name_of(g);
                Some(format!("SELECT {c}, COUNT(*) FROM {t} GROUP BY {c}"))
            }
            ShapeKind::GroupAggHaving => {
                let g = self.best_text_col(None, opts, rng)?;
                let (t, c) = self.name_of(g);
                let n = self.first_int()?;
                Some(format!("SELECT {c} FROM {t} GROUP BY {c} HAVING COUNT(*) > {n}"))
            }
            ShapeKind::JoinFilter => self.join_filter(None, opts, rng),
            ShapeKind::JoinAgg { agg } => {
                let agg = self.lexical_agg().unwrap_or(agg);
                self.join_filter(Some(agg), opts, rng)
            }
            ShapeKind::JoinTopk => self.join_topk(opts, rng),
            ShapeKind::CompareAvg => {
                let m = self.float_near_cue(Self::AVG_CUES, opts, rng)?;
                let (t, mc) = self.name_of(m);
                let s = self.best_in_table(m.ti, Some(m.ci), opts, rng)?;
                let (_, sc) = self.name_of(s);
                Some(format!("SELECT {sc} FROM {t} WHERE {mc} > (SELECT AVG({mc}) FROM {t})"))
            }
            ShapeKind::InSubquery { text_pred } => self.in_subquery(text_pred, opts, rng),
            ShapeKind::BetweenDates { agg } => {
                let agg = self.lexical_agg().unwrap_or(agg);
                let dates = extract_dates(self.question);
                let (lo, hi) = match dates.as_slice() {
                    [a, b, ..] => (a.clone(), b.clone()),
                    _ => return None,
                };
                let d = self.best_col_where(|ty| ty == ColType::Date, None, opts, rng)?;
                let m = self.best_in_table_where(d.ti, |ty| ty == ColType::Float, None, opts, rng)?;
                let (t, dc) = self.name_of(d);
                let (_, mc) = self.name_of(m);
                Some(format!(
                    "SELECT {}({mc}) FROM {t} WHERE {dc} BETWEEN '{lo}' AND '{hi}'",
                    agg.sql()
                ))
            }
            ShapeKind::LikeMatch => self.like_match(opts, rng),
            ShapeKind::CountDistinct => {
                let g = self.best_text_col(None, opts, rng)?;
                let (t, c) = self.name_of(g);
                Some(format!("SELECT COUNT(DISTINCT {c}) FROM {t}"))
            }
            ShapeKind::MultiPredicate => {
                let hit = self.pick_hit(opts, rng)?;
                let ti = self.schema.table_index(&hit.table)?;
                let fci = self.schema.tables[ti].column_index(&hit.column)?;
                let m = self.best_in_table_where(ti, |ty| ty == ColType::Float, None, opts, rng)?;
                let x = self.first_float_span()?;
                let s = {
                    let v = self.ranked(
                        self.table_cols(ti, |_| true)
                            .into_iter()
                            .filter(|c| c.ci != fci && c.ci != m.ci)
                            .collect(),
                    );
                    choose(&v, opts.slot_skill, rng).copied()?
                };
                let (t, sc) = self.name_of(s);
                let (_, mc) = self.name_of(m);
                Some(format!(
                    "SELECT {sc} FROM {t} WHERE {} = {} AND {mc} > {x}",
                    hit.column,
                    quote(&hit.value)
                ))
            }
            ShapeKind::LatestDate => {
                let d = self.best_col_where(|ty| ty == ColType::Date, None, opts, rng)?;
                let s = self.best_in_table(d.ti, Some(d.ci), opts, rng)?;
                let (t, dc) = self.name_of(d);
                let (_, sc) = self.name_of(s);
                Some(format!("SELECT {sc} FROM {t} WHERE {dc} = (SELECT MAX({dc}) FROM {t})"))
            }
            ShapeKind::GroupSumTopk => {
                let g = self.best_text_col(None, opts, rng)?;
                let m = self.best_in_table_where(g.ti, |ty| ty == ColType::Float, None, opts, rng)?;
                let k = self.first_int()?;
                let (t, gc) = self.name_of(g);
                let (_, mc) = self.name_of(m);
                Some(format!(
                    "SELECT {gc}, SUM({mc}) FROM {t} GROUP BY {gc} ORDER BY SUM({mc}) DESC LIMIT {k}"
                ))
            }
            ShapeKind::DistinctFilter => {
                let g = self.best_text_col(None, opts, rng)?;
                let m = self.best_in_table_where(g.ti, |ty| ty == ColType::Float, None, opts, rng)?;
                let x = self.first_float_span()?;
                let (t, gc) = self.name_of(g);
                let (_, mc) = self.name_of(m);
                Some(format!("SELECT DISTINCT {gc} FROM {t} WHERE {mc} > {x}"))
            }
            ShapeKind::ThreeJoin => self.three_join(opts, rng),
        }
    }

    /// Last-resort SQL when shape filling fails: select the
    /// best-matching column of the best-matching table.
    pub fn fallback_sql(&self) -> String {
        let mut best: Option<ColCand> = None;
        for c in self.all_cols(|_| true) {
            if best.map(|b| c.score > b.score).unwrap_or(true) {
                best = Some(c);
            }
        }
        match best {
            Some(c) => {
                let (t, cn) = self.name_of(c);
                format!("SELECT {cn} FROM {t}")
            }
            None => "SELECT 1".to_string(),
        }
    }

    // --- shape implementations ---------------------------------------

    fn filter_select(&self, n: usize, opts: &FillOptions, rng: &mut StdRng) -> Option<String> {
        let hit = self.pick_hit(opts, rng)?;
        let ti = self.schema.table_index(&hit.table)?;
        let fci = self.schema.tables[ti].column_index(&hit.column)?;
        // Rank target columns inside the filter table by affinity; order
        // the chosen ones by where they appear in the question.
        let mut cands: Vec<ColCand> = self
            .table_cols(ti, |_| true)
            .into_iter()
            .filter(|c| c.ci != fci && c.score > 0.0)
            .collect();
        cands.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.ci.cmp(&b.ci)));
        if cands.len() < n {
            return None;
        }
        let mut chosen: Vec<ColCand> = Vec::with_capacity(n);
        let mut idx = 0usize;
        while chosen.len() < n && idx < cands.len() {
            // Occasionally take the runner-up, as everywhere else.
            let take = if idx + 1 < cands.len() && !rng.gen_bool(opts.slot_skill) {
                idx + 1
            } else {
                idx
            };
            if !chosen.iter().any(|c| c.ci == cands[take].ci) {
                chosen.push(cands[take]);
            }
            idx += 1;
        }
        if chosen.len() < n {
            return None;
        }
        chosen.sort_by_key(|c| c.pos);
        let names: Vec<&str> = chosen
            .iter()
            .map(|c| self.schema.tables[c.ti].columns[c.ci].name.as_str())
            .collect();
        Some(format!(
            "SELECT {} FROM {} WHERE {} = {}",
            names.join(", "),
            hit.table,
            hit.column,
            quote(&hit.value)
        ))
    }

    fn agg_measure(
        &self,
        agg: AggKind,
        filtered: bool,
        opts: &FillOptions,
        rng: &mut StdRng,
    ) -> Option<String> {
        if filtered {
            let hit = self.pick_hit(opts, rng)?;
            let ti = self.schema.table_index(&hit.table)?;
            let m = self.best_in_table_where(ti, |ty| ty == ColType::Float, None, opts, rng)?;
            let (t, mc) = self.name_of(m);
            Some(format!(
                "SELECT {}({mc}) FROM {t} WHERE {} = {}",
                agg.sql(),
                hit.column,
                quote(&hit.value)
            ))
        } else {
            let m = self.best_col_where(|ty| ty == ColType::Float, None, opts, rng)?;
            let (t, mc) = self.name_of(m);
            Some(format!("SELECT {}({mc}) FROM {t}", agg.sql()))
        }
    }

    const DIR_CUES: &'static [&'static str] = &[
        "highest", "lowest", "largest", "smallest", "ranked by", "ordered by", "top ", "最高",
        "最低", "最大", "排名", "排序",
    ];
    const AVG_CUES: &'static [&'static str] =
        &["average", "mean", "exceeds", "above", "higher", "平均", "均值", "高于"];

    fn topk_order(&self, desc: bool, opts: &FillOptions, rng: &mut StdRng) -> Option<String> {
        let m = self.float_after_cue(None, Self::DIR_CUES, opts, rng)?;
        let s = self.best_in_table(m.ti, Some(m.ci), opts, rng)?;
        let k = self.first_int()?;
        let (t, mc) = self.name_of(m);
        let (_, sc) = self.name_of(s);
        let dir = if desc { "DESC" } else { "ASC" };
        Some(format!("SELECT {sc} FROM {t} ORDER BY {mc} {dir} LIMIT {k}"))
    }

    fn join_filter(
        &self,
        agg: Option<AggKind>,
        opts: &FillOptions,
        rng: &mut StdRng,
    ) -> Option<String> {
        let hit = self.pick_hit(opts, rng)?;
        let master_ti = self.schema.table_index(&hit.table)?;
        let master = &self.schema.tables[master_ti];
        // Find the fact table: CoT models search the FK graph; non-CoT
        // models sometimes pick the globally best table regardless of
        // joinability.
        let fact_ti = self.pick_join_partner(master_ti, agg.is_some(), opts, rng)?;
        let fact = &self.schema.tables[fact_ti];
        let (fk_fact_col, fk_master_col) = self.join_columns(fact_ti, master_ti);
        // Figure 12 (example 3) failure mode: the model systematically
        // binds the selected column to the wrong table alias. Output
        // calibration's alignment step (`f3`) exists to repair exactly
        // this.
        let qualifier = if rng.gen_bool(misbind_rate(opts)) { "t2" } else { "t1" };
        let inner = if let Some(agg) = agg {
            let m = self.best_in_table_where(fact_ti, |ty| ty == ColType::Float, None, opts, rng)?;
            format!("{}({qualifier}.{})", agg.sql(), fact.columns[m.ci].name)
        } else {
            let s = self.best_in_table(fact_ti, None, opts, rng)?;
            format!("{qualifier}.{}", fact.columns[s.ci].name)
        };
        Some(format!(
            "SELECT {inner} FROM {} AS t1 JOIN {} AS t2 ON t1.{} = t2.{} WHERE t2.{} = {}",
            fact.name,
            master.name,
            fk_fact_col,
            fk_master_col,
            hit.column,
            quote(&hit.value)
        ))
    }

    fn join_topk(&self, opts: &FillOptions, rng: &mut StdRng) -> Option<String> {
        // Choose the FK whose fact-side measure and master-side name best
        // match the question.
        let mut best: Option<(usize, usize, f32)> = None;
        for fk in &self.schema.foreign_keys {
            let (Some(fact_ti), Some(master_ti)) =
                (self.schema.table_index(&fk.from_table), self.schema.table_index(&fk.to_table))
            else {
                continue;
            };
            let m_score = self
                .table_cols(fact_ti, |ty| ty == ColType::Float)
                .iter()
                .map(|c| c.score)
                .fold(0.0f32, f32::max);
            let n_score = self
                .table_cols(master_ti, |ty| ty == ColType::Text)
                .iter()
                .map(|c| c.score)
                .fold(0.0f32, f32::max);
            let total = m_score + n_score;
            if best.map(|(_, _, b)| total > b).unwrap_or(true) {
                best = Some((fact_ti, master_ti, total));
            }
        }
        let (fact_ti, master_ti, _) = best?;
        let m = self.float_after_cue(Some(fact_ti), Self::DIR_CUES, opts, rng)?;
        let n = self.best_in_table_where(master_ti, |ty| ty == ColType::Text, None, opts, rng)?;
        let k = self.first_int()?;
        let (fk_fact_col, fk_master_col) = self.join_columns(fact_ti, master_ti);
        let qualifier = if rng.gen_bool(misbind_rate(opts)) { "t1" } else { "t2" };
        Some(format!(
            "SELECT {qualifier}.{} FROM {} AS t1 JOIN {} AS t2 ON t1.{} = t2.{} ORDER BY t1.{} DESC LIMIT {k}",
            self.schema.tables[master_ti].columns[n.ci].name,
            self.schema.tables[fact_ti].name,
            self.schema.tables[master_ti].name,
            fk_fact_col,
            fk_master_col,
            self.schema.tables[fact_ti].columns[m.ci].name,
        ))
    }

    fn in_subquery(&self, text_pred: bool, opts: &FillOptions, rng: &mut StdRng) -> Option<String> {
        // Inner filter lives on the fact table; the outer select on its
        // FK master.
        let (fact_ti, pred_sql) = if text_pred {
            let hit = self.pick_hit(opts, rng)?;
            let ti = self.schema.table_index(&hit.table)?;
            (ti, format!("{} = {}", hit.column, quote(&hit.value)))
        } else {
            let m = self.best_col_where(|ty| ty == ColType::Float, None, opts, rng)?;
            let x = self.first_float_span()?;
            (m.ti, format!("{} > {x}", self.schema.tables[m.ti].columns[m.ci].name))
        };
        let fact = &self.schema.tables[fact_ti];
        // Among the fact table's foreign keys, pick the master the
        // question actually names.
        let fkdef = self
            .schema
            .foreign_keys
            .iter()
            .filter(|f| f.from_table.eq_ignore_ascii_case(&fact.name))
            .max_by(|a, b| {
                let fa = self
                    .schema
                    .table_index(&a.to_table)
                    .map(|ti| self.table_affinity[ti])
                    .unwrap_or(0.0);
                let fb = self
                    .schema
                    .table_index(&b.to_table)
                    .map(|ti| self.table_affinity[ti])
                    .unwrap_or(0.0);
                fa.total_cmp(&fb).then(b.to_table.cmp(&a.to_table))
            })?;
        let master_ti = self.schema.table_index(&fkdef.to_table)?;
        let s = self.best_in_table(master_ti, None, opts, rng)?;
        Some(format!(
            "SELECT {} FROM {} WHERE {} IN (SELECT {} FROM {} WHERE {})",
            self.schema.tables[master_ti].columns[s.ci].name,
            fkdef.to_table,
            fkdef.to_column,
            fkdef.from_column,
            fact.name,
            pred_sql
        ))
    }

    fn like_match(&self, opts: &FillOptions, rng: &mut StdRng) -> Option<String> {
        // Candidate: a value's leading word that occurs in the question.
        let mut cands: Vec<(ColCand, String)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for hit in self.prefix_hits(&self.qlower) {
            let Some(ti) = self.schema.table_index(&hit.0) else { continue };
            let Some(ci) = self.schema.tables[ti].column_index(&hit.1) else { continue };
            if !seen.insert((ti, ci, hit.2.clone())) {
                continue;
            }
            let score = self.col_affinity(ti, ci).0 + hit.2.len() as f32 * 0.01;
            cands.push((ColCand { ti, ci, score, pos: 0 }, hit.2));
        }
        cands.sort_by(|a, b| b.0.score.total_cmp(&a.0.score).then(a.1.cmp(&b.1)));
        let (ncol, word) = choose_pair(&cands, opts.slot_skill, rng)?;
        let s = self.best_in_table(ncol.ti, Some(ncol.ci), opts, rng)?;
        let (t, nc) = self.name_of(*ncol);
        let (_, sc) = self.name_of(s);
        Some(format!("SELECT {sc} FROM {t} WHERE {nc} LIKE '%{word}%'"))
    }

    fn three_join(&self, opts: &FillOptions, rng: &mut StdRng) -> Option<String> {
        let hit = self.pick_hit(opts, rng)?;
        let a_ti = self.schema.table_index(&hit.table)?;
        let a = &self.schema.tables[a_ti];
        let fkdef = self
            .schema
            .foreign_keys
            .iter()
            .find(|f| f.from_table.eq_ignore_ascii_case(&a.name))?;
        let m_ti = self.schema.table_index(&fkdef.to_table)?;
        // B: another fact table on the same master. CoT searches; non-CoT
        // guesses globally with join_skill.
        let b_ti = if opts.cot || rng.gen_bool(opts.join_skill) {
            let mut best: Option<(usize, f32)> = None;
            for f2 in &self.schema.foreign_keys {
                if f2.to_table != fkdef.to_table || f2.from_table.eq_ignore_ascii_case(&a.name) {
                    continue;
                }
                let Some(bi) = self.schema.table_index(&f2.from_table) else { continue };
                let score = self
                    .table_cols(bi, |_| true)
                    .iter()
                    .map(|c| c.score)
                    .fold(0.0f32, f32::max);
                if best.map(|(_, b)| score > b).unwrap_or(true) {
                    best = Some((bi, score));
                }
            }
            best?.0
        } else {
            // Greedy global pick — often not FK-linked to the master.
            let mut best: Option<ColCand> = None;
            for c in self.all_cols(|_| true) {
                if c.ti != a_ti && best.map(|b| c.score > b.score).unwrap_or(true) {
                    best = Some(c);
                }
            }
            best?.ti
        };
        let b = &self.schema.tables[b_ti];
        let b_fk = self
            .schema
            .foreign_keys
            .iter()
            .find(|f| f.from_table.eq_ignore_ascii_case(&b.name) && f.to_table == fkdef.to_table);
        let b_fk_col = match b_fk {
            Some(f) => f.from_column.clone(),
            None => b.columns.first()?.name.clone(), // broken chain → wrong SQL
        };
        let s = self.best_in_table(b_ti, None, opts, rng)?;
        let m = &self.schema.tables[m_ti];
        let qualifier = if rng.gen_bool(misbind_rate(opts)) { "t2" } else { "t3" };
        Some(format!(
            "SELECT {qualifier}.{} FROM {} AS t1 JOIN {} AS t2 ON t1.{} = t2.{} JOIN {} AS t3 ON t2.{} = t3.{} WHERE t1.{} = {}",
            b.columns[s.ci].name,
            a.name,
            m.name,
            fkdef.from_column,
            fkdef.to_column,
            b.name,
            fkdef.to_column,
            b_fk_col,
            hit.column,
            quote(&hit.value)
        ))
    }

    // --- candidate machinery ------------------------------------------

    /// Lexical affinity of a column to the question.
    ///
    /// Per register: coverage fraction of the description by question
    /// tokens, a contiguity bonus when the full description phrase occurs
    /// verbatim (this is what separates `redemption status` from a
    /// `purchase … status` co-occurrence), and a matched-token-count
    /// bonus so longer exact descriptions beat their own prefixes
    /// (`fund name abbreviation` vs `fund name`). Identifier parts and
    /// the enclosing table's description affinity are added on top.
    /// The returned position is the byte offset of the description's
    /// first matching token in the question (drives cue-relative slot
    /// selection).
    fn col_affinity(&self, ti: usize, ci: usize) -> (f32, usize) {
        self.col_aff[ti][ci]
    }

    /// The actual affinity computation behind [`Self::col_affinity`]'s
    /// precomputed table.
    fn compute_col_affinity(&self, ti: usize, ci: usize) -> (f32, usize) {
        let col = &self.schema.tables[ti].columns[ci];
        let (s_en, p_en) = self.desc_score(&col.desc_en);
        let (s_cn, p_cn) = self.desc_score(&col.desc_cn);
        let (s_id, p_id) = self.overlap(&ident_tokens(&col.name));
        let (mut score, mut pos) = if s_en >= s_cn { (s_en, p_en) } else { (s_cn, p_cn) };
        score += 0.3 * s_id;
        // The enclosing table's description disambiguates identically
        // described columns across tables (every question names its
        // table's business description).
        score += 0.6 * self.table_affinity[ti];
        pos = pos.min(p_id);
        (score, pos)
    }

    /// Score of one description string against the question. The position
    /// is the byte offset of the *whole phrase* when it occurs verbatim
    /// (single shared words like "amount" would otherwise report wildly
    /// wrong positions), else the earliest matched token.
    fn desc_score(&self, desc: &str) -> (f32, usize) {
        let dt = desc_tokens(desc);
        if dt.tokens.is_empty() {
            return (0.0, usize::MAX);
        }
        let (frac, mut pos) = self.overlap(&dt.tokens);
        let hits = (frac * dt.tokens.len() as f32).round();
        let phrase_at = if dt.phrase.is_empty() || !self.may_occur(&dt.phrase) {
            None
        } else {
            self.qlower.find(&dt.phrase)
        };
        if let Some(p) = phrase_at {
            pos = p;
        }
        (frac + 0.08 * hits + if phrase_at.is_some() { 0.6 } else { 0.0 }, pos)
    }

    fn overlap(&self, desc_tokens: &[String]) -> (f32, usize) {
        if desc_tokens.is_empty() {
            return (0.0, usize::MAX);
        }
        let mut hits = 0usize;
        let mut first = usize::MAX;
        for t in desc_tokens {
            if self.qsorted.binary_search(t).is_ok() {
                hits += 1;
                if let Some(b) = self.qlower.find(t.as_str()) {
                    first = first.min(b);
                }
            }
        }
        (hits as f32 / desc_tokens.len() as f32, first)
    }

    /// Byte position of the earliest cue word in the question, if any.
    fn cue_pos(&self, cues: &[&str]) -> Option<usize> {
        cues.iter().filter(|c| self.may_occur(c)).filter_map(|c| self.qlower.find(c)).min()
    }

    /// Certain-reject window test: false means `needle` cannot occur in
    /// the question (some 2-byte window of it never appears), so a
    /// substring search is pointless. True says nothing — the caller
    /// still runs the exact search.
    fn may_occur(&self, needle: &str) -> bool {
        needle.as_bytes().windows(2).all(|w| {
            let p = usize::from(w[0]) << 8 | usize::from(w[1]);
            self.qpairs[p >> 6] & (1u64 << (p & 63)) != 0
        })
    }

    /// Chooses the measure column relative to a direction/aggregation cue:
    /// the measure the question orders by directly follows the cue word
    /// ("… with the lowest ⟨share change amount⟩").
    fn float_after_cue(
        &self,
        ti: Option<usize>,
        cues: &[&str],
        opts: &FillOptions,
        rng: &mut StdRng,
    ) -> Option<ColCand> {
        let cands: Vec<ColCand> = match ti {
            Some(ti) => self.table_cols(ti, |ty| ty == ColType::Float),
            None => self.all_cols(|ty| ty == ColType::Float),
        };
        if let Some(cp) = self.cue_pos(cues) {
            let mut after: Vec<ColCand> =
                cands.iter().copied().filter(|c| c.pos != usize::MAX && c.pos > cp).collect();
            if !after.is_empty() {
                after.sort_by(|a, b| {
                    a.pos.cmp(&b.pos).then(b.score.total_cmp(&a.score)).then(a.ci.cmp(&b.ci))
                });
                return choose(&after, opts.slot_skill, rng).copied();
            }
        }
        choose(&self.ranked(cands), opts.slot_skill, rng).copied()
    }

    /// Chooses the measure column nearest a cue on either side — the
    /// comparison measure sits immediately around "higher than the
    /// average" / "above average" in every phrasing.
    fn float_near_cue(
        &self,
        cues: &[&str],
        opts: &FillOptions,
        rng: &mut StdRng,
    ) -> Option<ColCand> {
        let cands = self.all_cols(|ty| ty == ColType::Float);
        if let Some(cp) = self.cue_pos(cues) {
            let best = cands.iter().map(|c| c.score).fold(f32::MIN, f32::max);
            let mut near: Vec<ColCand> = cands
                .iter()
                .copied()
                .filter(|c| c.pos != usize::MAX && c.score >= best - 0.5)
                .collect();
            if !near.is_empty() {
                near.sort_by(|a, b| {
                    let da = a.pos.abs_diff(cp);
                    let db = b.pos.abs_diff(cp);
                    da.cmp(&db).then(b.score.total_cmp(&a.score)).then(a.ci.cmp(&b.ci))
                });
                return choose(&near, opts.slot_skill, rng).copied();
            }
        }
        choose(&self.ranked(cands), opts.slot_skill, rng).copied()
    }

    fn table_cols(&self, ti: usize, ty_pred: impl Fn(ColType) -> bool) -> Vec<ColCand> {
        self.schema.tables[ti]
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| ty_pred(c.ty))
            .map(|(ci, _)| {
                let (score, pos) = self.col_affinity(ti, ci);
                ColCand { ti, ci, score, pos }
            })
            .collect()
    }

    fn all_cols(&self, ty_pred: impl Fn(ColType) -> bool + Copy) -> Vec<ColCand> {
        (0..self.schema.tables.len()).flat_map(|ti| self.table_cols(ti, ty_pred)).collect()
    }

    fn ranked(&self, mut v: Vec<ColCand>) -> Vec<ColCand> {
        v.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.ti.cmp(&b.ti)).then(a.ci.cmp(&b.ci)));
        v
    }

    fn best_col_where(
        &self,
        ty_pred: impl Fn(ColType) -> bool + Copy,
        exclude: Option<(usize, usize)>,
        opts: &FillOptions,
        rng: &mut StdRng,
    ) -> Option<ColCand> {
        let v = self.ranked(
            self.all_cols(ty_pred)
                .into_iter()
                .filter(|c| exclude != Some((c.ti, c.ci)))
                .collect(),
        );
        choose(&v, opts.slot_skill, rng).copied()
    }

    fn best_in_table(
        &self,
        ti: usize,
        exclude_ci: Option<usize>,
        opts: &FillOptions,
        rng: &mut StdRng,
    ) -> Option<ColCand> {
        self.best_in_table_where(ti, |_| true, exclude_ci, opts, rng)
    }

    fn best_in_table_where(
        &self,
        ti: usize,
        ty_pred: impl Fn(ColType) -> bool,
        exclude_ci: Option<usize>,
        opts: &FillOptions,
        rng: &mut StdRng,
    ) -> Option<ColCand> {
        let v = self.ranked(
            self.table_cols(ti, ty_pred)
                .into_iter()
                .filter(|c| Some(c.ci) != exclude_ci)
                .collect(),
        );
        choose(&v, opts.slot_skill, rng).copied()
    }

    /// Best text column anywhere (grouping slots).
    fn best_text_col(
        &self,
        exclude: Option<(usize, usize)>,
        opts: &FillOptions,
        rng: &mut StdRng,
    ) -> Option<ColCand> {
        self.best_col_where(|ty| ty == ColType::Text, exclude, opts, rng)
    }

    /// Value-index hits restricted to the prompt schema, ranked by the
    /// hit column's affinity to the question (the same value can live in
    /// several columns — e.g. a city name — and the question names the
    /// right one), then by value length.
    fn pick_hit(&self, opts: &FillOptions, rng: &mut StdRng) -> Option<ValueHit> {
        let all = self.value_hits.get_or_init(|| self.values.find_in_question(self.question));
        let mut hits: Vec<(f32, usize, &ValueHit)> = all
            .iter()
            .filter_map(|h| {
                let ti = self.schema.table_index(&h.table)?;
                let ci = self.schema.tables[ti].column_index(&h.column)?;
                let (aff, _) = self.col_affinity(ti, ci);
                Some((aff, h.value.chars().count(), h))
            })
            .collect();
        hits.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then(b.1.cmp(&a.1))
                .then(a.2.table.cmp(&b.2.table))
                .then(a.2.column.cmp(&b.2.column))
        });
        let ranked: Vec<&ValueHit> = hits.into_iter().map(|(_, _, h)| h).collect();
        choose(&ranked, opts.slot_skill, rng).map(|h| (*h).clone())
    }

    /// `(table, column, first word)` candidates for LIKE matching.
    fn prefix_hits(&self, qlower: &str) -> Vec<(String, String, String)> {
        self.values.prefix_hits(qlower)
    }

    fn pick_join_partner(
        &self,
        master_ti: usize,
        want_measure: bool,
        opts: &FillOptions,
        rng: &mut StdRng,
    ) -> Option<usize> {
        let master_name = &self.schema.tables[master_ti].name;
        if opts.cot || rng.gen_bool(opts.join_skill) {
            // FK-constrained search.
            let mut cands: Vec<(usize, f32)> = Vec::new();
            for fk in &self.schema.foreign_keys {
                let partner = if fk.to_table.eq_ignore_ascii_case(master_name) {
                    self.schema.table_index(&fk.from_table)
                } else if fk.from_table.eq_ignore_ascii_case(master_name) {
                    self.schema.table_index(&fk.to_table)
                } else {
                    None
                };
                let Some(pi) = partner else { continue };
                if pi == master_ti {
                    continue;
                }
                let score = self
                    .table_cols(pi, |ty| !want_measure || ty == ColType::Float)
                    .iter()
                    .map(|c| c.score)
                    .fold(0.0f32, f32::max);
                cands.push((pi, score));
            }
            cands.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            cands.dedup_by_key(|c| c.0);
            choose(&cands, opts.slot_skill, rng).map(|(pi, _)| *pi)
        } else {
            // Greedy pick ignoring joinability.
            let mut best: Option<ColCand> = None;
            for c in self.all_cols(|ty| !want_measure || ty == ColType::Float) {
                if c.ti != master_ti && best.map(|b| c.score > b.score).unwrap_or(true) {
                    best = Some(c);
                }
            }
            best.map(|c| c.ti)
        }
    }

    /// The join columns between two tables: the declared FK when present,
    /// otherwise a shared column name, otherwise a blind guess (which
    /// yields the paper's Figure 12 style wrong-join output).
    fn join_columns(&self, fact_ti: usize, master_ti: usize) -> (String, String) {
        let fact = &self.schema.tables[fact_ti];
        let master = &self.schema.tables[master_ti];
        if let Some(fk) = self.schema.foreign_key_between(&fact.name, &master.name) {
            if fk.from_table.eq_ignore_ascii_case(&fact.name) {
                return (fk.from_column.clone(), fk.to_column.clone());
            }
            return (fk.to_column.clone(), fk.from_column.clone());
        }
        for c in &fact.columns {
            if master.column(&c.name).is_some() {
                return (c.name.clone(), c.name.clone());
            }
        }
        (
            fact.columns.first().map(|c| c.name.clone()).unwrap_or_default(),
            master.columns.first().map(|c| c.name.clone()).unwrap_or_default(),
        )
    }

    fn name_of(&self, c: ColCand) -> (String, String) {
        (
            self.schema.tables[c.ti].name.clone(),
            self.schema.tables[c.ti].columns[c.ci].name.clone(),
        )
    }

    /// Derives the aggregate function from explicit cue words in the
    /// question ("average", "总", …), taking the earliest cue. Models
    /// attend strongly to these tokens; this corrects skeleton-retrieval
    /// slips between sibling aggregate skeletons.
    fn lexical_agg(&self) -> Option<AggKind> {
        const CUES: &[(&str, AggKind)] = &[
            ("average", AggKind::Avg),
            ("平均", AggKind::Avg),
            ("maximum", AggKind::Max),
            ("最大", AggKind::Max),
            ("minimum", AggKind::Min),
            ("最小", AggKind::Min),
            ("total", AggKind::Sum),
            ("总", AggKind::Sum),
        ];
        CUES.iter()
            .filter_map(|(cue, agg)| self.qlower.find(cue).map(|i| (i, *agg)))
            .min_by_key(|(i, _)| *i)
            .map(|(_, agg)| agg)
    }

    fn first_int(&self) -> Option<i64> {
        extract_number_spans(self.question)
            .into_iter()
            .find(|s| !s.contains('.'))
            .and_then(|s| s.parse().ok())
    }

    fn first_float_span(&self) -> Option<String> {
        let spans = extract_number_spans(self.question);
        spans.iter().find(|s| s.contains('.')).cloned().or_else(|| spans.into_iter().next())
    }
}

/// Probability of a systematic wrong-table column binding in multi-table
/// shapes (drawn from the per-question slot RNG, so every sample of one
/// question shares it — only alignment can fix it, not voting).
fn misbind_rate(opts: &FillOptions) -> f64 {
    (1.5 * (1.0 - opts.slot_skill)).clamp(0.0, 0.5)
}

fn quote(v: &str) -> String {
    format!("'{}'", v.replace('\'', "''"))
}

/// Best-or-runner-up selection shared by every slot.
fn choose<'x, T>(v: &'x [T], skill: f64, rng: &mut StdRng) -> Option<&'x T> {
    match v.len() {
        0 => None,
        1 => Some(&v[0]),
        _ => {
            if rng.gen_bool(skill) {
                Some(&v[0])
            } else {
                Some(&v[1])
            }
        }
    }
}

fn choose_pair<'x, A, B>(v: &'x [(A, B)], skill: f64, rng: &mut StdRng) -> Option<(&'x A, &'x B)> {
    choose(v, skill, rng).map(|(a, b)| (a, b))
}
