//! The simulated LLM substrate.
//!
//! The paper fine-tunes LLaMA2/Baichuan2/T5/mT5 with LoRA on augmented
//! Text-to-SQL data. No GPUs or base checkpoints exist in this
//! environment, so this crate implements the closest substitute whose
//! *training dynamics* are real:
//!
//! - [`embed`]: a linear embedding model over hashed question features —
//!   the frozen "base model" `W0`.
//! - [`lora`]: genuine Low-Rank Adaptation (`h = W0ᵀx + BᵀAᵀx`, Gaussian
//!   `A`, zero `B`), trained with SGD ([`train`]) on a skeleton-anchor
//!   alignment objective, and merged across plugins by weighted summation
//!   exactly as the paper's Eq. 3–5.
//! - [`hub`]: the LoRA plugin hub (paper §7.2) with serialisable plugins.
//! - [`shape`]/[`slots`]: query-shape extraction from gold SQL and
//!   schema-grounded slot filling — the "generation" half: the adapted
//!   embedding retrieves the nearest skeleton prototype, and the slot
//!   filler instantiates it against the (schema-linked) prompt schema and
//!   the question's literal values.
//! - [`noise`]: a calibrated decoder-noise model that injects exactly the
//!   error classes of the paper's Figure 12 (typo columns, `==`, dangling
//!   `JOIN ON`, wrong table–column binding), which is what output
//!   calibration then repairs.
//! - [`profiles`]: per-base-model capability profiles standing in for the
//!   four LLMs.
//!
//! Everything downstream (EX accuracy, augmentation gains, LoRA-merge
//! transfer, calibration gains) emerges mechanically from these parts.

#![forbid(unsafe_code)]

pub mod embed;
pub mod generator;
pub mod hub;
pub mod index;
pub mod lora;
pub mod noise;
pub mod profiles;
pub mod shape;
pub mod slots;
pub mod train;
pub mod values;

pub use embed::EmbeddingModel;
pub use generator::{BatchItem, GenConfig, GenCounters, PrototypeMatrix, SqlGenerator};
pub use hub::{LoraPlugin, PluginHub};
pub use index::PrototypeIndex;
pub use lora::LoraModule;
pub use profiles::BaseModelProfile;
pub use shape::{shape_of, AggKind, ShapeKind};
pub use train::{train_plugin, ExampleKind, TrainExample, TrainOpts};
pub use values::ValueIndex;
