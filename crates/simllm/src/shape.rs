//! Query-shape extraction: classifying gold SQL into structural families.
//!
//! The generator's "knowledge" of SQL structure is a mapping from
//! questions to *shapes* — what RESDSQL calls skeletons and DAIL-SQL uses
//! for example selection. Shapes are derived purely from the SQL text via
//! the parser, never from generator-internal metadata, so this is
//! information a real fine-tuned model would also extract from its
//! training pairs.

use serde::{Deserialize, Serialize};
use sqlkit::ast::*;
use sqlkit::parse_statement;

/// Aggregate families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggKind {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggKind {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggKind::Count => "COUNT",
            AggKind::Sum => "SUM",
            AggKind::Avg => "AVG",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
        }
    }

    fn from_name(name: &str) -> Option<AggKind> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggKind::Count,
            "SUM" => AggKind::Sum,
            "AVG" => AggKind::Avg,
            "MIN" => AggKind::Min,
            "MAX" => AggKind::Max,
            _ => return None,
        })
    }
}

/// The structural families the workload exercises. One shape corresponds
/// to one slot-filling recipe in [`crate::slots`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeKind {
    /// `SELECT c… FROM t WHERE c_text = v`
    FilterSelect { n_targets: u8 },
    /// `SELECT COUNT(*) FROM t WHERE c_text = v`
    CountFilter,
    /// `SELECT agg(c_num) FROM t [WHERE c_text = v]`
    AggMeasure { agg: AggKind, filtered: bool },
    /// `SELECT c FROM t ORDER BY c_num dir LIMIT k`
    TopkOrder { desc: bool },
    /// `SELECT c_g, COUNT(*) FROM t GROUP BY c_g`
    GroupCount,
    /// `SELECT c_g FROM t GROUP BY c_g HAVING COUNT(*) > n`
    GroupAggHaving,
    /// `SELECT t1.c FROM fact JOIN master ON fk WHERE master.c_text = v`
    JoinFilter,
    /// `SELECT agg(t1.c) FROM fact JOIN master ON fk WHERE master.c = v`
    JoinAgg { agg: AggKind },
    /// `SELECT t2.c FROM fact JOIN master ON fk ORDER BY fact.c DESC LIMIT k`
    JoinTopk,
    /// `… WHERE c_num > (SELECT AVG(c_num) FROM t)`
    CompareAvg,
    /// `… WHERE key IN (SELECT fk FROM fact WHERE …)` — text or numeric
    /// inner predicate.
    InSubquery { text_pred: bool },
    /// `SELECT agg(c) FROM t WHERE c_date BETWEEN a AND b`
    BetweenDates { agg: AggKind },
    /// `SELECT c FROM t WHERE c_text LIKE '%w%'`
    LikeMatch,
    /// `SELECT COUNT(DISTINCT c) FROM t`
    CountDistinct,
    /// `SELECT c FROM t WHERE c_text = v AND c_num > x`
    MultiPredicate,
    /// `… WHERE c_date = (SELECT MAX(c_date) FROM t)`
    LatestDate,
    /// `SELECT c_g, SUM(c) FROM t GROUP BY c_g ORDER BY SUM(c) DESC LIMIT k`
    GroupSumTopk,
    /// `SELECT DISTINCT c_g FROM t WHERE c_num > x`
    DistinctFilter,
    /// `SELECT t3.c FROM a JOIN m JOIN b WHERE a.c_text = v`
    ThreeJoin,
}

/// All shapes, for iteration in tests and analyses.
pub const ALL_SHAPES: &[ShapeKind] = &[
    ShapeKind::FilterSelect { n_targets: 1 },
    ShapeKind::FilterSelect { n_targets: 2 },
    ShapeKind::CountFilter,
    ShapeKind::AggMeasure { agg: AggKind::Avg, filtered: true },
    ShapeKind::TopkOrder { desc: true },
    ShapeKind::GroupCount,
    ShapeKind::GroupAggHaving,
    ShapeKind::JoinFilter,
    ShapeKind::JoinAgg { agg: AggKind::Avg },
    ShapeKind::JoinTopk,
    ShapeKind::CompareAvg,
    ShapeKind::InSubquery { text_pred: true },
    ShapeKind::BetweenDates { agg: AggKind::Avg },
    ShapeKind::LikeMatch,
    ShapeKind::CountDistinct,
    ShapeKind::MultiPredicate,
    ShapeKind::LatestDate,
    ShapeKind::GroupSumTopk,
    ShapeKind::DistinctFilter,
    ShapeKind::ThreeJoin,
];

/// Classifies a SQL string into its shape, or `None` when it parses but
/// fits no known family (or does not parse).
pub fn shape_of(sql: &str) -> Option<ShapeKind> {
    let Statement::Select(q) = parse_statement(sql).ok()?;
    let SetExpr::Select(s) = &q.body else { return None };
    let n_joins = s.from.as_ref().map(|f| f.joins.len()).unwrap_or(0);
    let preds: Vec<&Expr> =
        s.selection.as_ref().map(sqlkit::components::conjuncts).unwrap_or_default();

    // Join shapes first.
    if n_joins == 2 {
        return Some(ShapeKind::ThreeJoin);
    }
    if n_joins == 1 {
        if let Some(SelectItem::Expr { expr, .. }) = s.items.first() {
            if let Some(agg) = agg_of(expr) {
                return Some(ShapeKind::JoinAgg { agg });
            }
        }
        if q.limit.is_some() && !q.order_by.is_empty() {
            return Some(ShapeKind::JoinTopk);
        }
        return Some(ShapeKind::JoinFilter);
    }

    // Subquery-driven shapes.
    for p in &preds {
        match p {
            Expr::Binary { op, right, left, .. } if op.is_comparison() => {
                if let Expr::Subquery(sub) = right.as_ref() {
                    if subquery_agg(sub) == Some(AggKind::Avg) {
                        return Some(ShapeKind::CompareAvg);
                    }
                    if subquery_agg(sub) == Some(AggKind::Max) && *op == BinaryOp::Eq {
                        return Some(ShapeKind::LatestDate);
                    }
                }
                if let Expr::Subquery(sub) = left.as_ref() {
                    let _ = sub;
                    return None;
                }
            }
            Expr::InSubquery { subquery, .. } => {
                let text_pred = subquery_has_text_pred(subquery);
                return Some(ShapeKind::InSubquery { text_pred });
            }
            Expr::Between { .. } => {
                if let Some(SelectItem::Expr { expr, .. }) = s.items.first() {
                    if let Some(agg) = agg_of(expr) {
                        return Some(ShapeKind::BetweenDates { agg });
                    }
                }
            }
            Expr::Like { .. } => return Some(ShapeKind::LikeMatch),
            _ => {}
        }
    }

    // Grouping shapes.
    if !s.group_by.is_empty() {
        if s.having.is_some() {
            return Some(ShapeKind::GroupAggHaving);
        }
        if q.limit.is_some() {
            return Some(ShapeKind::GroupSumTopk);
        }
        return Some(ShapeKind::GroupCount);
    }

    // Aggregate head shapes.
    if let Some(SelectItem::Expr { expr, .. }) = s.items.first() {
        if let Expr::Function { name, distinct: true, .. } = expr {
            if AggKind::from_name(name) == Some(AggKind::Count) {
                return Some(ShapeKind::CountDistinct);
            }
        }
        if matches!(expr, Expr::CountStar) {
            return Some(ShapeKind::CountFilter);
        }
        if let Some(agg) = agg_of(expr) {
            return Some(ShapeKind::AggMeasure { agg, filtered: !preds.is_empty() });
        }
    }

    // Order/limit shapes.
    if q.limit.is_some() && !q.order_by.is_empty() {
        return Some(ShapeKind::TopkOrder { desc: q.order_by[0].desc });
    }

    // Plain filters.
    if s.distinct {
        return Some(ShapeKind::DistinctFilter);
    }
    let text_eq = preds.iter().any(|p| is_text_eq(p));
    let num_cmp = preds.iter().any(|p| is_num_cmp(p));
    if text_eq && num_cmp {
        return Some(ShapeKind::MultiPredicate);
    }
    if text_eq || num_cmp || preds.is_empty() {
        let n_targets = s.items.len().min(255) as u8;
        return Some(ShapeKind::FilterSelect { n_targets });
    }
    None
}

fn agg_of(e: &Expr) -> Option<AggKind> {
    match e {
        Expr::CountStar => Some(AggKind::Count),
        Expr::Function { name, .. } => AggKind::from_name(name),
        _ => None,
    }
}

fn subquery_agg(q: &SelectStmt) -> Option<AggKind> {
    let SetExpr::Select(s) = &q.body else { return None };
    match s.items.first() {
        Some(SelectItem::Expr { expr, .. }) => agg_of(expr),
        _ => None,
    }
}

fn subquery_has_text_pred(q: &SelectStmt) -> bool {
    let SetExpr::Select(s) = &q.body else { return false };
    s.selection.as_ref().map(is_text_eq).unwrap_or(false)
}

fn is_text_eq(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Binary { op: BinaryOp::Eq, right, .. }
            if matches!(right.as_ref(), Expr::Literal(Literal::Str(_)))
    )
}

fn is_num_cmp(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Binary { op, right, .. }
            if op.is_comparison()
                && matches!(right.as_ref(), Expr::Literal(Literal::Int(_) | Literal::Float(_)))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_core_shapes() {
        let cases: Vec<(&str, ShapeKind)> = vec![
            ("SELECT a FROM t WHERE b = 'x'", ShapeKind::FilterSelect { n_targets: 1 }),
            ("SELECT a, c FROM t WHERE b = 'x'", ShapeKind::FilterSelect { n_targets: 2 }),
            ("SELECT COUNT(*) FROM t WHERE b = 'x'", ShapeKind::CountFilter),
            (
                "SELECT AVG(m) FROM t WHERE b = 'x'",
                ShapeKind::AggMeasure { agg: AggKind::Avg, filtered: true },
            ),
            (
                "SELECT MAX(m) FROM t",
                ShapeKind::AggMeasure { agg: AggKind::Max, filtered: false },
            ),
            ("SELECT a FROM t ORDER BY m DESC LIMIT 3", ShapeKind::TopkOrder { desc: true }),
            ("SELECT g, COUNT(*) FROM t GROUP BY g", ShapeKind::GroupCount),
            (
                "SELECT g FROM t GROUP BY g HAVING COUNT(*) > 5",
                ShapeKind::GroupAggHaving,
            ),
            (
                "SELECT t1.a FROM f AS t1 JOIN m AS t2 ON t1.k = t2.k WHERE t2.n = 'x'",
                ShapeKind::JoinFilter,
            ),
            (
                "SELECT AVG(t1.m) FROM f AS t1 JOIN m AS t2 ON t1.k = t2.k WHERE t2.n = 'x'",
                ShapeKind::JoinAgg { agg: AggKind::Avg },
            ),
            (
                "SELECT t2.n FROM f AS t1 JOIN m AS t2 ON t1.k = t2.k ORDER BY t1.m DESC LIMIT 3",
                ShapeKind::JoinTopk,
            ),
            (
                "SELECT a FROM t WHERE m > (SELECT AVG(m) FROM t)",
                ShapeKind::CompareAvg,
            ),
            (
                "SELECT n FROM m WHERE k IN (SELECT k FROM f WHERE b = 'x')",
                ShapeKind::InSubquery { text_pred: true },
            ),
            (
                "SELECT n FROM m WHERE k IN (SELECT k FROM f WHERE v > 2.5)",
                ShapeKind::InSubquery { text_pred: false },
            ),
            (
                "SELECT SUM(m) FROM t WHERE d BETWEEN '2022-01-01' AND '2022-02-01'",
                ShapeKind::BetweenDates { agg: AggKind::Sum },
            ),
            ("SELECT a FROM t WHERE n LIKE '%x%'", ShapeKind::LikeMatch),
            ("SELECT COUNT(DISTINCT g) FROM t", ShapeKind::CountDistinct),
            (
                "SELECT a FROM t WHERE b = 'x' AND m > 2.5",
                ShapeKind::MultiPredicate,
            ),
            (
                "SELECT a FROM t WHERE d = (SELECT MAX(d) FROM t)",
                ShapeKind::LatestDate,
            ),
            (
                "SELECT g, SUM(m) FROM t GROUP BY g ORDER BY SUM(m) DESC LIMIT 2",
                ShapeKind::GroupSumTopk,
            ),
            ("SELECT DISTINCT g FROM t WHERE m > 2.5", ShapeKind::DistinctFilter),
            (
                "SELECT t3.a FROM a AS t1 JOIN m AS t2 ON t1.k = t2.k JOIN b AS t3 ON t2.k = t3.k WHERE t1.c = 'x'",
                ShapeKind::ThreeJoin,
            ),
        ];
        for (sql, expect) in cases {
            assert_eq!(shape_of(sql), Some(expect), "for {sql}");
        }
    }

    #[test]
    fn unparseable_sql_has_no_shape() {
        assert_eq!(shape_of("SELEC a FROM"), None);
    }

    #[test]
    fn shape_is_stable_under_identifier_renaming() {
        let a = shape_of("SELECT nav FROM mf_fundnav WHERE fundtype = 'bond fund'");
        let b = shape_of("SELECT closeprice FROM qt_dailyquote WHERE liststatus = 'normal'");
        assert_eq!(a, b);
    }
}
