//! Regression tests for the [`BatchScheduler`]'s non-blocking submit
//! path and its explicit shutdown semantics (crates/core/src/batch.rs):
//!
//! * `try_submit` must refuse with [`SubmitError::QueueFull`] when the
//!   bounded queue is at capacity — the backpressure signal the serving
//!   front-end turns into a `Busy` response — and every ticket it *does*
//!   hand out must resolve to the byte-exact reference answer.
//! * `shutdown` must drain requests already queued (stragglers get their
//!   real answers, nothing is dropped) while refusing new submissions
//!   with [`SubmitError::ShuttingDown`] on both the blocking and the
//!   non-blocking path.

use bull::{DbId, Lang};
use finsql_core::batch::{BatchConfig, BatchScheduler, SubmitError, Ticket};
use finsql_core::cache::AnswerCache;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One engine for every test in this file — building it trains the full
/// pipeline, so share it instead of paying that per test.
fn engine() -> Arc<FinSql> {
    static ENGINE: OnceLock<Arc<FinSql>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        let ds = bull::build(bull::DEFAULT_SEED);
        Arc::new(FinSql::build(
            &ds,
            &simllm::profiles::LLAMA2_13B,
            FinSqlConfig::standard(Lang::En),
        ))
    }))
}

/// The per-question reference answer the scheduler must reproduce.
fn reference(engine: &FinSql, db: DbId, question: &str) -> String {
    let mut rng = engine.question_rng(db, question);
    engine.answer(db, question, &mut rng)
}

#[test]
fn try_submit_sheds_load_when_the_queue_is_full() {
    let engine = engine();
    // One worker, batch size 1, queue of 1: while the worker computes
    // (hundreds of microseconds per question) the single queue slot
    // fills instantly, so a tight submission loop must observe
    // QueueFull long before it runs out of questions.
    let scheduler = BatchScheduler::new(
        Arc::clone(&engine),
        None,
        None,
        BatchConfig {
            max_batch: 1,
            flush: Duration::from_micros(1),
            workers: 1,
            queue_cap: 1,
        },
    );
    let mut tickets: Vec<(String, Ticket)> = Vec::new();
    let mut rejected = 0u32;
    let mut i = 0usize;
    // Keep pushing distinct questions until backpressure has shown up
    // and a healthy number of requests got through.
    while rejected == 0 || tickets.len() < 8 {
        assert!(i < 100_000, "queue_cap=1 never produced QueueFull");
        let question = format!("list all funds (probe {i})");
        match scheduler.try_submit(DbId::Fund, question.as_str()) {
            Ok(ticket) => tickets.push((question, ticket)),
            Err(SubmitError::QueueFull) => rejected += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        i += 1;
    }
    assert!(rejected > 0, "full queue must refuse, not block");
    // Backpressure sheds load but never corrupts: every accepted ticket
    // resolves to the byte-exact reference answer.
    for (question, ticket) in tickets {
        assert_eq!(&*ticket.wait(), reference(&engine, DbId::Fund, &question));
    }
}

#[test]
fn shutdown_drains_queued_requests_and_refuses_stragglers() {
    let engine = engine();
    let cache = Arc::new(AnswerCache::unbounded());
    let mut scheduler = BatchScheduler::new(
        Arc::clone(&engine),
        Some(Arc::clone(&cache)),
        None,
        BatchConfig {
            max_batch: 4,
            flush: Duration::from_millis(50),
            workers: 2,
            queue_cap: 64,
        },
    );
    let questions: Vec<String> =
        (0..6).map(|i| format!("how many stocks closed higher (case {i})")).collect();
    let tickets: Vec<Ticket> = questions
        .iter()
        .map(|q| {
            scheduler
                .try_submit(DbId::Stock, q.as_str())
                .expect("queue of 64 cannot be full")
        })
        .collect();
    // Shut down with the flush window still open: the queued requests
    // are in flight, not yet answered.
    scheduler.shutdown();
    // Post-shutdown submissions are refused on both paths…
    assert_eq!(
        scheduler.try_submit(DbId::Fund, "straggler").err(),
        Some(SubmitError::ShuttingDown)
    );
    assert_eq!(
        scheduler.submit(DbId::Fund, "straggler").err(),
        Some(SubmitError::ShuttingDown)
    );
    // …but every request accepted before shutdown was drained and
    // answered exactly, never dropped.
    for (question, ticket) in questions.iter().zip(tickets) {
        assert_eq!(&*ticket.wait(), reference(&engine, DbId::Stock, question));
    }
    // Idempotent: a second shutdown (and the implicit one in Drop) is a
    // no-op, not a double-join.
    scheduler.shutdown();
}

#[test]
fn ticket_polling_delivers_the_answer_exactly_once() {
    let engine = engine();
    let scheduler = BatchScheduler::new(
        Arc::clone(&engine),
        None,
        None,
        BatchConfig {
            max_batch: 2,
            flush: Duration::from_micros(100),
            workers: 1,
            queue_cap: 8,
        },
    );
    let question = "which macro indicator rose last quarter";
    let ticket = scheduler.try_submit(DbId::Macro, question).expect("empty queue accepts");
    // Poll like the serving event loop does: spin until the worker
    // delivers, then the slot is empty forever after.
    let answer = loop {
        if let Some(answer) = ticket.try_answer() {
            break answer;
        }
        std::thread::yield_now();
    };
    assert_eq!(&*answer, reference(&engine, DbId::Macro, question));
    assert!(ticket.try_answer().is_none(), "an answer is delivered exactly once");
}
