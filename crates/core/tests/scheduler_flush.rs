//! Regression tests for the [`BatchScheduler`]'s flush-deadline
//! anchoring (crates/core/src/batch.rs).
//!
//! Pre-fix, the flush deadline was armed when the worker started
//! *waiting*, not when the first request of the batch was *enqueued*: an
//! idle worker re-armed the deadline without holding a batch, so a
//! request landing just before a timeout wakeup inherited a nearly
//! expired deadline and was solo-flushed after far less than
//! [`BatchConfig::flush`]. Both tests below first let the worker go idle
//! past a full flush window (the state that armed the stale deadline)
//! and then prove the next request still gets its entire window:
//! measured wall time for a solo request, and an actually coalesced
//! micro-batch for a slow second submitter.

use bull::{DbId, Lang};
use finsql_core::batch::{BatchConfig, BatchScheduler};
use finsql_core::metrics::EvalMetrics;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One engine for every test in this file — building it trains the full
/// pipeline, so share it instead of paying that per test.
fn engine() -> Arc<FinSql> {
    static ENGINE: OnceLock<Arc<FinSql>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        let ds = bull::build(bull::DEFAULT_SEED);
        Arc::new(FinSql::build(
            &ds,
            &simllm::profiles::LLAMA2_13B,
            FinSqlConfig::standard(Lang::En),
        ))
    }))
}

/// The per-question reference answer the scheduler must reproduce.
fn reference(engine: &FinSql, db: DbId, question: &str) -> String {
    let mut rng = engine.question_rng(db, question);
    engine.answer(db, question, &mut rng)
}

/// Parks the scheduler's worker long enough that a stale pre-fix
/// deadline (armed while idling) would have already expired.
fn idle_past_one_window(scheduler: &BatchScheduler, engine: &FinSql, flush: Duration) {
    let warmup = "list all fund names";
    assert_eq!(&*scheduler.answer(DbId::Fund, warmup), reference(engine, DbId::Fund, warmup));
    std::thread::sleep(flush + flush / 2);
}

#[test]
fn solo_request_waits_the_full_flush_window() {
    let engine = engine();
    let flush = Duration::from_millis(300);
    let scheduler = BatchScheduler::new(
        Arc::clone(&engine),
        None,
        None,
        BatchConfig { max_batch: 8, flush, workers: 1, queue_cap: 16 },
    );
    idle_past_one_window(&scheduler, &engine, flush);

    let question = "how many funds have an open redemption status";
    let start = Instant::now();
    let answer = scheduler.answer(DbId::Fund, question);
    let elapsed = start.elapsed();
    assert_eq!(&*answer, reference(&engine, DbId::Fund, question));
    // The batch stayed open for the whole window before the solo flush —
    // an inherited stale deadline would have flushed almost immediately.
    assert!(
        elapsed >= flush,
        "solo request flushed after {elapsed:?}, before its {flush:?} window closed"
    );
}

#[test]
fn slow_second_submitter_joins_the_first_request_batch() {
    let engine = engine();
    let flush = Duration::from_millis(400);
    let metrics = Arc::new(EvalMetrics::new());
    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&engine),
        None,
        Some(Arc::clone(&metrics)),
        BatchConfig { max_batch: 2, flush, workers: 1, queue_cap: 16 },
    ));
    idle_past_one_window(&scheduler, &engine, flush);

    let first_q = "what is the average management fee across funds";
    let second_q = "which fund manager has the longest tenure";
    let first = {
        let scheduler = Arc::clone(&scheduler);
        std::thread::spawn(move || {
            let start = Instant::now();
            let answer = scheduler.answer(DbId::Fund, first_q);
            (answer, start.elapsed())
        })
    };
    // The second submitter is slow: it arrives mid-window. A worker that
    // kept the first request's window open coalesces both into one
    // micro-batch; a worker on a stale deadline has already solo-flushed.
    std::thread::sleep(Duration::from_millis(150));
    let second_answer = scheduler.answer(DbId::Fund, second_q);
    let (first_answer, first_elapsed) = first.join().expect("first submitter panicked");

    assert_eq!(&*first_answer, reference(&engine, DbId::Fund, first_q));
    assert_eq!(&*second_answer, reference(&engine, DbId::Fund, second_q));
    assert!(
        first_elapsed >= Duration::from_millis(150),
        "first request answered after {first_elapsed:?} — it cannot have waited for the second"
    );
    let snap = metrics.snapshot();
    assert_eq!(
        snap.max_batch, 2,
        "the slow second submitter must coalesce into the first request's open batch"
    );
}
