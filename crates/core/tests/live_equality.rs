//! Differential mutation harness for the live-data append path
//! (crates/core/src/live.rs, crates/sqlengine/src/wal.rs).
//!
//! The claim under test: a system that absorbs appends *incrementally*
//! (`FinSql::absorb_appends` over the WAL tail) is indistinguishable,
//! answer for answer and byte for byte, from a cold system rebuilt from
//! scratch off the replayed change log — at every epoch, through every
//! serving path (fresh, cached, micro-batched, coalescing scheduler),
//! across batch sizes 1/3/8 and scheduler worker counts 1/3.
//!
//! `random_interleavings_match_cold_rebuild_at_every_epoch` drives a
//! seeded pseudo-random script of append and serve operations against a
//! live engine while a shadow engine follows by replay + from-scratch
//! rebuild; every serve is compared against the shadow. The shared
//! answer cache additionally gets *exact* hit accounting: a question is
//! expected to hit if and only if it was cached since the last epoch
//! bump, so a single stale (or missing) hit fails the run.

use bull::{BullDataset, DbId, Lang, Split};
use finsql_core::batch::{BatchConfig, BatchScheduler};
use finsql_core::cache::{Answerer, AnswerCache};
use finsql_core::live::{evaluate_ex_live, LiveConfig};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SEED: u64 = bull::DEFAULT_SEED;

/// The live system, its shadow, and the bookkeeping that makes every
/// serve a differential check.
struct Harness {
    ds: BullDataset,
    cold_ds: BullDataset,
    /// `Option` only so the scheduler pass can move the engine into an
    /// `Arc` and recover it afterwards; always `Some` between ops.
    live: Option<FinSql>,
    cold: FinSql,
    cache: AnswerCache,
    /// Slate indices cached since the last epoch bump — the exact set of
    /// questions a cached serve is allowed (and required) to hit on.
    warm: HashSet<usize>,
    slate: Vec<(DbId, String)>,
    appends: usize,
    served: usize,
}

impl Harness {
    fn build() -> Harness {
        let ds = BullDataset::generate(SEED);
        let cold_ds = BullDataset::generate(SEED);
        let config = FinSqlConfig::standard(Lang::En);
        let live = FinSql::build(&ds, &simllm::profiles::LLAMA2_13B, config);
        let cold = FinSql::build(&cold_ds, &simllm::profiles::LLAMA2_13B, config);
        let slate: Vec<(DbId, String)> = DbId::ALL
            .into_iter()
            .flat_map(|db| {
                ds.examples_for(db, Split::Dev)
                    .into_iter()
                    .take(8)
                    .map(move |e| (db, e.question(Lang::En).to_string()))
                    .collect::<Vec<_>>()
            })
            .collect();
        Harness {
            ds,
            cold_ds,
            live: Some(live),
            cold,
            cache: AnswerCache::unbounded(),
            warm: HashSet::new(),
            slate,
            appends: 0,
            served: 0,
        }
    }

    /// Appends minted ticks to one database through the validated live
    /// path and lets the live system absorb the WAL tail incrementally.
    /// The shadow is deliberately *not* advanced here — it catches up
    /// lazily before the next comparison, so serves exercise arbitrary
    /// replay distances.
    fn append(&mut self, db: DbId, seed: u64, rows_per_table: usize) {
        let ticks = self.ds.mint_ticks(db, seed, rows_per_table);
        self.appends += ticks.len();
        self.ds.db_mut(db).apply_changes(ticks).expect("minted ticks are valid");
        assert!(
            self.live.as_mut().expect("engine parked").absorb_appends(db, self.ds.db(db)),
            "absorb_appends must report work for a non-empty tail"
        );
        self.warm.clear();
    }

    /// Replays the live change logs onto the shadow and rebuilds its
    /// data-derived artifacts from scratch, then proves both systems
    /// agree on where they are: same per-database epochs, same
    /// whole-system fingerprint.
    fn catch_up_cold(&mut self) {
        for db in DbId::ALL {
            self.cold_ds.db_mut(db).replay(self.ds.db(db).change_log()).expect("replay");
            self.cold.rebuild_data(db, self.cold_ds.db(db));
            assert_eq!(self.cold_ds.db(db).epoch(), self.ds.db(db).epoch());
        }
        assert_eq!(
            self.live.as_ref().expect("engine parked").config_fingerprint(),
            self.cold.config_fingerprint(),
            "incremental absorption and cold rebuild landed on different fingerprints"
        );
    }

    fn reference(&self, i: usize) -> String {
        let (db, q) = &self.slate[i];
        self.cold.answer_fresh(*db, q, None)
    }

    fn serve_fresh(&mut self, indices: &[usize]) {
        self.catch_up_cold();
        for &i in indices {
            let (db, q) = &self.slate[i];
            assert_eq!(
                self.live.as_ref().expect("engine parked").answer_fresh(*db, q, None),
                self.reference(i),
                "fresh serve diverged from cold rebuild ({db}: {q})"
            );
            self.served += 1;
        }
    }

    /// Cached serve with exact hit accounting: the hit-count delta must
    /// equal the number of indices cached since the last epoch bump —
    /// one stale hit (or one missing warm hit) over the whole run fails.
    fn serve_cached(&mut self, indices: &[usize]) {
        self.catch_up_cold();
        // Simulate the lookup sequence: an index drawn twice in one
        // serve misses (and fills) on first sight, hits on the second.
        let mut sim = self.warm.clone();
        let mut expected_hits = 0u64;
        for i in indices {
            if !sim.insert(*i) {
                expected_hits += 1;
            }
        }
        let hits_before = self.cache.stats().hits;
        for &i in indices {
            let (db, q) = &self.slate[i];
            let answer =
                self.live.as_ref().expect("engine parked").answer_cached(&self.cache, *db, q, None);
            assert_eq!(
                &*answer,
                self.reference(i),
                "cached serve diverged from cold rebuild ({db}: {q})"
            );
            self.warm.insert(i);
            self.served += 1;
        }
        assert_eq!(
            self.cache.stats().hits - hits_before,
            expected_hits,
            "cache hits disagree with the epoch bookkeeping — a stale entry was served \
             or a warm entry missed"
        );
    }

    fn serve_batched(&mut self, db: DbId, batch: usize) {
        self.catch_up_cold();
        let indices: Vec<usize> =
            (0..self.slate.len()).filter(|&i| self.slate[i].0 == db).collect();
        for chunk in indices.chunks(batch) {
            let questions: Vec<&str> = chunk.iter().map(|&i| self.slate[i].1.as_str()).collect();
            let answers =
                self.live.as_ref().expect("engine parked").answer_batch(db, &questions);
            for (&i, answer) in chunk.iter().zip(&answers) {
                assert_eq!(
                    answer,
                    &self.reference(i),
                    "batched serve (size {batch}) diverged from cold rebuild ({db}: {})",
                    self.slate[i].1
                );
                self.served += 1;
            }
        }
    }

    /// Serves every slate question through a coalescing scheduler fed by
    /// `workers` concurrent submitters, then recovers the engine.
    fn serve_scheduler(&mut self, workers: usize, batch: usize) {
        self.catch_up_cold();
        let refs: Vec<String> = (0..self.slate.len()).map(|i| self.reference(i)).collect();
        let slate = std::mem::take(&mut self.slate);
        let live = Arc::new(self.live.take().expect("engine parked"));
        {
            let scheduler = BatchScheduler::new(
                Arc::clone(&live),
                None,
                None,
                BatchConfig {
                    max_batch: batch,
                    flush: Duration::from_millis(2),
                    workers,
                    queue_cap: 64,
                },
            );
            let answers: Mutex<Vec<Option<std::sync::Arc<str>>>> =
                Mutex::new(vec![None; slate.len()]);
            let next = std::sync::atomic::AtomicUsize::new(0);
            crossbeam::scope(|scope| {
                for _ in 0..workers.max(1) {
                    scope.spawn(|_| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= slate.len() {
                            break;
                        }
                        let (db, q) = &slate[i];
                        let answer = scheduler.answer(*db, q);
                        answers.lock().expect("lock")[i] = Some(answer);
                    });
                }
            })
            .expect("submitter panicked");
            let answers = answers.into_inner().expect("lock");
            for (i, answer) in answers.into_iter().enumerate() {
                assert_eq!(
                    &*answer.expect("scheduler answered"),
                    refs[i],
                    "scheduler serve ({workers} workers, batch {batch}) diverged ({}: {})",
                    slate[i].0,
                    slate[i].1
                );
                self.served += 1;
            }
        }
        self.live = match Arc::try_unwrap(live) {
            Ok(engine) => Some(engine),
            Err(_) => unreachable!("scheduler drop joins its workers"),
        };
        self.slate = slate;
    }

    fn random_indices(&self, rng: &mut StdRng, max: usize) -> Vec<usize> {
        let n = rng.gen_range(1..=max.min(self.slate.len()));
        (0..n).map(|_| rng.gen_range(0..self.slate.len())).collect()
    }
}

/// The main drill: a seeded pseudo-random interleaving of appends and
/// serves, with forced coverage of every batch size and worker count
/// the issue names, differentially checked against the shadow at every
/// step.
#[test]
fn random_interleavings_match_cold_rebuild_at_every_epoch() {
    let mut h = Harness::build();
    let mut rng = StdRng::seed_from_u64(0x11FE_DA7A);
    let batch_sizes = [1usize, 3, 8];
    let worker_counts = [1usize, 3];

    // Pre-append sanity: with no inserts, live and cold are the same
    // system — fingerprints equal, answers equal (the "tables stay
    // byte-identical when nothing changes" case).
    h.serve_fresh(&(0..h.slate.len()).collect::<Vec<_>>());

    for step in 0u64..36 {
        match rng.gen_range(0..10) {
            0..=2 => {
                let db = DbId::ALL[rng.gen_range(0..3)];
                let rows = rng.gen_range(1..=2);
                h.append(db, 0x7100 + step, rows);
            }
            3..=4 => {
                let indices = h.random_indices(&mut rng, 6);
                h.serve_fresh(&indices);
            }
            5..=7 => {
                let indices = h.random_indices(&mut rng, 8);
                h.serve_cached(&indices);
            }
            8 => {
                let db = DbId::ALL[rng.gen_range(0..3)];
                let batch = batch_sizes[rng.gen_range(0..batch_sizes.len())];
                h.serve_batched(db, batch);
            }
            _ => {
                let workers = worker_counts[rng.gen_range(0..worker_counts.len())];
                let batch = batch_sizes[rng.gen_range(0..batch_sizes.len())];
                h.serve_scheduler(workers, batch);
            }
        }
    }

    // Forced coverage: every batch size and worker count at the final
    // (deepest) epoch, after one more append round touching every db.
    for (i, db) in DbId::ALL.into_iter().enumerate() {
        h.append(db, 0x7F00 + i as u64, 2);
    }
    for batch in batch_sizes {
        for db in DbId::ALL {
            h.serve_batched(db, batch);
        }
    }
    for workers in worker_counts {
        h.serve_scheduler(workers, 3);
    }
    let all: Vec<usize> = (0..h.slate.len()).collect();
    h.serve_cached(&all);
    h.serve_cached(&all);

    assert!(h.appends >= 10, "drill applied only {} change records", h.appends);
    assert!(h.served >= 200, "drill served only {} answers", h.served);
    assert!(
        h.ds.db(DbId::Fund).epoch().0 > 0
            && h.ds.db(DbId::Stock).epoch().0 > 0
            && h.ds.db(DbId::Macro).epoch().0 > 0,
        "every database must have moved past epoch zero"
    );
}

/// The packaged scenario (`evaluate_ex_live`) holds its own invariants
/// on a small configuration: per-round epoch monotonicity, exact warm
/// and cold cache passes, and the served-answer count.
#[test]
fn evaluate_ex_live_scenario_is_green() {
    let mut ds = BullDataset::generate(SEED);
    let config = FinSqlConfig::standard(Lang::En);
    let system = FinSql::build(&ds, &simllm::profiles::LLAMA2_13B, config);
    let cfg = LiveConfig {
        epochs: 2,
        rows_per_table: 2,
        questions_per_db: 3,
        tick_seed: 0xBEE5,
        batch: 3,
        workers: 2,
    };
    let (_system, outcome) = evaluate_ex_live(&mut ds, system, SEED, &cfg, None);

    assert_eq!(outcome.rounds.len(), cfg.epochs + 1);
    let slate = 3 * cfg.questions_per_db;
    for (round, report) in outcome.rounds.iter().enumerate() {
        assert_eq!(report.ex.total, slate, "round {round} scored the wrong slate");
        assert_eq!(report.first_pass_hits, 0, "round {round} served a stale cache entry");
        assert_eq!(report.second_pass_hits, slate as u64, "round {round} warm pass missed");
        // fresh + 2 cached passes + batched + scheduler = 5 passes.
        assert_eq!(report.served, slate * 5);
        if round > 0 {
            let prev = &outcome.rounds[round - 1];
            for (now, before) in report.epochs.iter().zip(&prev.epochs) {
                assert!(now > before, "round {round} did not advance every epoch");
            }
        } else {
            assert_eq!(report.epochs, [0, 0, 0], "round 0 must serve the base snapshot");
        }
    }
    assert!(outcome.change_records >= cfg.epochs * 3);
    assert!(outcome.appended_rows >= outcome.change_records);
    assert_eq!(outcome.served, slate * 5 * (cfg.epochs + 1));
    assert_eq!(outcome.pooled_ex().total, slate * (cfg.epochs + 1));
}
