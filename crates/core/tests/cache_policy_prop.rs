//! Property and differential tests for the segmented-LRU + TinyLFU
//! cache policy (crates/core/src/cache.rs, crates/core/src/tinylfu.rs).
//!
//! The claims under test:
//!
//! 1. **Segment bounds**: under any workload the protected segment never
//!    exceeds its per-shard cap, and total residency never exceeds the
//!    shard-rounded capacity — for both policies.
//! 2. **Sketch order preservation**: halving the frequency sketch keeps
//!    the relative order of any two keys' estimates (ties may form, but
//!    never invert).
//! 3. **Admission determinism**: rebuilding a cache and replaying the
//!    same operation sequence 20 times lands on identical statistics and
//!    identical residency probes — the admission duel has no hidden
//!    state beyond the replayed operations.
//! 4. **One-shot flood (adversarial)**: a hot key followed by a flood of
//!    cold one-shot keys survives under SLRU+TinyLFU but is provably
//!    evicted by plain LRU — the scan-resistance the admission filter
//!    exists for.
//! 5. **Policy neutrality (differential)**: every answer served by a
//!    real trained system through a capped LRU cache, a capped
//!    SLRU+TinyLFU cache, and no cache at all is byte-identical — the
//!    policy decides residency, never bytes.

use bull::{DbId, Lang, Split};
use finsql_core::cache::{AnswerCache, Answerer, CachePolicy, ConfigFingerprint};
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use finsql_core::tinylfu::FrequencySketch;
use proptest::prelude::*;
use std::sync::OnceLock;

const FP: ConfigFingerprint = ConfigFingerprint(0x5EED);

fn policy() -> impl Strategy<Value = CachePolicy> {
    prop_oneof![Just(CachePolicy::Lru), Just(CachePolicy::SlruTinyLfu)]
}

/// One replayable cache operation over a small key universe.
#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u8),
    Insert(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![(0u8..60).prop_map(Op::Get), (0u8..60).prop_map(Op::Insert)],
        1..200,
    )
}

fn apply(cache: &AnswerCache, op: Op) {
    let key = |k: u8| format!("question {k}");
    match op {
        Op::Get(k) => {
            cache.get(DbId::Fund, &key(k), FP);
        }
        Op::Insert(k) => {
            cache.insert(DbId::Fund, &key(k), FP, format!("SELECT {k}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Claim 1: per-segment capacity bounds hold under arbitrary
    /// get/insert interleavings, for both policies.
    #[test]
    fn segment_bounds_hold_under_arbitrary_workloads(
        cap in 1usize..64,
        policy in policy(),
        ops in ops(),
    ) {
        let cache = AnswerCache::with_policy(cap, policy);
        let shard_cap = cache.shard_cap().expect("capped cache has a shard cap");
        for op in ops {
            apply(&cache, op);
            let stats = cache.stats();
            let shards = AnswerCache::shard_count();
            prop_assert!(
                stats.entries <= shard_cap * shards,
                "{} entries over the {}-shard bound {}",
                stats.entries, shards, shard_cap * shards
            );
            prop_assert!(
                stats.protected_entries
                    <= AnswerCache::protected_shard_cap(shard_cap) * shards,
                "protected segment over its bound: {} > {} per shard x {}",
                stats.protected_entries,
                AnswerCache::protected_shard_cap(shard_cap),
                shards
            );
            prop_assert!(stats.protected_entries <= stats.entries);
            if policy == CachePolicy::Lru {
                prop_assert_eq!(
                    stats.protected_entries, 0,
                    "plain LRU has no protected segment"
                );
            }
        }
    }

    /// Claim 2: halving preserves the relative order of estimates. A
    /// strictly-more-frequent key must never estimate *below* a less
    /// frequent one after any number of halvings (ties are allowed —
    /// 4-bit counters saturate and halving truncates).
    #[test]
    fn sketch_halving_preserves_relative_frequency_order(
        hot in any::<u64>(),
        gap in 1u64..u64::MAX,
        hot_n in 2u32..14,
        cold_frac in 0u32..2,
        halvings in 1usize..4,
    ) {
        let cold = hot.wrapping_add(gap); // distinct from hot by construction
        let mut sketch = FrequencySketch::new(256);
        let cold_n = hot_n * cold_frac / 2;
        for _ in 0..hot_n {
            sketch.record(hot);
        }
        for _ in 0..cold_n {
            sketch.record(cold);
        }
        // Count-min collisions can already tie the two estimates; the
        // claim is only about runs where an order exists beforehand.
        if sketch.estimate(hot) > sketch.estimate(cold) {
            for _ in 0..halvings {
                sketch.halve();
                prop_assert!(
                    sketch.estimate(hot) >= sketch.estimate(cold),
                    "halving inverted the order: hot {} < cold {}",
                    sketch.estimate(hot),
                    sketch.estimate(cold)
                );
            }
        }
    }

    /// Claim 3: admission is deterministic — 20 rebuilds replaying the
    /// same operation sequence produce identical counters and identical
    /// residency probes for every key in the universe.
    #[test]
    fn admission_is_deterministic_across_rebuilds(
        cap in 1usize..48,
        policy in policy(),
        ops in ops(),
    ) {
        let run = || {
            let cache = AnswerCache::with_policy(cap, policy);
            for &op in &ops {
                apply(&cache, op);
            }
            let stats = cache.stats();
            let resident: Vec<bool> = (0u8..60)
                .map(|k| {
                    // len() probes residency without touching the
                    // stats/sketch the way get() would; compare via a
                    // second insert's outcome instead: a resident key
                    // refreshes (admitted, evicted 0).
                    cache
                        .insert(DbId::Fund, &format!("question {k}"), FP, format!("SELECT {k}"))
                        .admitted
                })
                .collect();
            (
                stats.hits,
                stats.misses,
                stats.inserts,
                stats.evictions,
                stats.admission_rejected,
                stats.promotions,
                stats.demotions,
                stats.entries,
                stats.protected_entries,
                resident,
            )
        };
        let first = run();
        for rebuild in 1..20 {
            let again = run();
            prop_assert_eq!(&again, &first, "rebuild {} diverged", rebuild);
        }
    }
}

/// Claim 4, pinned rather than sampled: the adversarial one-shot flood.
/// A key heated by repeated gets survives a flood of cold one-shot
/// inserts under SLRU+TinyLFU (the flood keys lose the admission duel),
/// while plain LRU provably evicts it (recency is all it sees).
#[test]
fn one_shot_flood_differential_between_policies() {
    let hot = "hot question";
    let hot_answer = "SELECT hot";
    let mut survived = Vec::new();
    for policy in CachePolicy::ALL {
        // Capacity 16 = 1 entry per shard: the hot key's own shard can
        // hold exactly one entry, so any admitted flood key that routes
        // there must displace it.
        let cache = AnswerCache::with_policy(16, policy);
        cache.insert(DbId::Fund, hot, FP, hot_answer);
        for _ in 0..6 {
            assert!(cache.get(DbId::Fund, hot, FP).is_some(), "hot key warm-up must hit");
        }
        // 64 cold keys: ~4 per shard in expectation, so the hot shard
        // sees several flood candidates whatever the hash layout.
        for k in 0..64 {
            let q = format!("one shot flood {k}");
            cache.get(DbId::Fund, &q, FP);
            cache.insert(DbId::Fund, &q, FP, format!("SELECT {k}"));
        }
        survived.push(cache.get(DbId::Fund, hot, FP).as_deref() == Some(hot_answer));
    }
    assert!(
        !survived[0],
        "plain LRU kept the hot key through a 4x-capacity one-shot flood — \
         the adversarial scenario no longer discriminates"
    );
    assert!(
        survived[1],
        "SLRU+TinyLFU lost the hot key to one-shot flood traffic — admission filtering failed"
    );
}

/// Claim 5: the cross-policy differential over a real trained system.
/// The same dev slate served through a tightly capped LRU cache, a
/// tightly capped SLRU+TinyLFU cache (admission rejections guaranteed by
/// the cap), and fresh with no cache must be byte-identical everywhere.
#[test]
fn every_policy_serves_the_uncached_bytes() {
    static SYS: OnceLock<(bull::BullDataset, FinSql)> = OnceLock::new();
    let (ds, sys) = SYS.get_or_init(|| {
        let ds = bull::build(bull::DEFAULT_SEED);
        let sys = FinSql::build(&ds, &simllm::profiles::LLAMA2_13B, FinSqlConfig::standard(Lang::En));
        (ds, sys)
    });
    let slate: Vec<(DbId, &str)> = DbId::ALL
        .into_iter()
        .flat_map(|db| {
            ds.examples_for(db, Split::Dev)
                .into_iter()
                .take(20)
                .map(move |e| (db, e.question(Lang::En)))
        })
        .collect();
    let fresh: Vec<String> = slate.iter().map(|(db, q)| sys.answer_fresh(*db, q, None)).collect();
    for policy in CachePolicy::ALL {
        // Cap well below the slate so eviction (and, under SlruTinyLfu,
        // admission rejection) actually fires mid-run.
        let cache = AnswerCache::with_policy(16, policy);
        for round in 0..3 {
            for ((db, q), want) in slate.iter().zip(&fresh) {
                let got = sys.answer_cached(&cache, *db, q, None);
                assert_eq!(
                    &*got, want,
                    "{policy} diverged from the uncached path (round {round}, {db}: {q})"
                );
            }
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "{policy}: the cap must force evictions for this test");
        if policy == CachePolicy::SlruTinyLfu {
            assert!(
                stats.admission_rejected > 0,
                "SlruTinyLfu at 60-question slate vs 16-entry cap must reject some candidates"
            );
        }
    }
}
