//! Property tests pinning the pruned-retrieval contract: with the
//! inverted n-gram index attached, prototype retrieval and the SQL it
//! emits are **bitwise identical** to the full matrix sweep — over
//! arbitrary question subsets, every batch size the engine uses, all
//! three databases, and both the cached and uncached answer paths. Plus
//! the adversarial case: a question whose terms miss every posting list
//! must fall back to the full sweep, never "prototype 0 wins".
//!
//! The certificate in [`simllm::PrototypeMatrix::ranked_pruned`] is what
//! makes these properties hold by construction; these tests are the
//! regression net that keeps index or bound changes honest.

use bull::{BullDataset, DbId, Lang, Split};
use finsql_core::cache::AnswerCache;
use finsql_core::pipeline::{FinSql, FinSqlConfig};
use proptest::prelude::*;
use simllm::{BatchItem, GenConfig, SqlGenerator};
use std::sync::OnceLock;

struct Ctx {
    ds: BullDataset,
    system: FinSql,
}

/// One trained engine (and its dataset) for every property — training is
/// far too expensive to repeat per proptest case.
fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let ds = bull::build(bull::DEFAULT_SEED);
        let system = FinSql::build(
            &ds,
            &simllm::profiles::LLAMA2_13B,
            FinSqlConfig::standard(Lang::En),
        );
        Ctx { ds, system }
    })
}

fn dev_questions(db: DbId) -> Vec<&'static str> {
    ctx().ds.examples_for(db, Split::Dev).into_iter().map(|e| e.question(Lang::En)).collect()
}

fn gen_config(system: &FinSql) -> GenConfig {
    GenConfig {
        n_samples: system.config.n_candidates,
        temperature: system.config.temperature,
        skeleton_temperature: None,
    }
}

fn any_db() -> impl Strategy<Value = DbId> {
    (0usize..DbId::ALL.len()).prop_map(|i| DbId::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Certified pruned top-2 == full-sweep top-2, bitwise: same argmax
    /// index, same runner-up, and bit-equal f32 scores.
    #[test]
    fn pruned_ranking_is_bitwise_identical(db in any_db(), offset in 0usize..512) {
        let Ctx { system, .. } = ctx();
        let rt = system.runtime(db);
        let qs = dev_questions(db);
        let offset = offset % qs.len();
        let slice: Vec<&str> = qs.iter().cycle().skip(offset).take(16).copied().collect();
        let embs = system.base.embed_batch(&slice, Some(&rt.plugin.lora));
        for (q, emb) in slice.iter().zip(&embs) {
            let full = rt.matrix.ranked(emb);
            let cands = rt.proto_index.candidates(&rt.proto_index.terms(q));
            if let Some(top2) = rt.matrix.ranked_pruned(emb, &cands) {
                prop_assert_eq!(top2.len(), 2);
                for (p, f) in top2.iter().zip(&full) {
                    prop_assert_eq!(p.0, f.0, "argmax/runner-up index diverged on {:?}", q);
                    prop_assert_eq!(
                        p.1.to_bits(), f.1.to_bits(),
                        "score bits diverged on {:?}", q
                    );
                }
            }
            // `None` is the certified-refusal path: the caller falls back
            // to `ranked`, which is the reference itself.
        }
    }

    /// Emitted SQL with the index == emitted SQL from the full sweep,
    /// per question and through `generate_batch` at every batch size the
    /// engine uses — over arbitrary dev-question subsets.
    #[test]
    fn emitted_sql_is_identical_at_every_batch_size(db in any_db(), offset in 0usize..512) {
        let Ctx { system, .. } = ctx();
        let rt = system.runtime(db);
        let cfg = gen_config(system);
        let qs = dev_questions(db);
        let full_gen =
            SqlGenerator::with_matrix(&system.base, &rt.plugin, &rt.matrix, system.profile);
        let pruned_gen =
            SqlGenerator::with_matrix(&system.base, &rt.plugin, &rt.matrix, system.profile)
                .with_index(&rt.proto_index);
        for &size in &[1usize, 3, 7, 64] {
            let slice: Vec<&str> =
                qs.iter().cycle().skip(offset % qs.len()).take(size).copied().collect();
            let linked = system.linker.link_batch(&slice, &rt.link_matrix);
            let schemas: Vec<_> = linked
                .iter()
                .map(|l| l.project(&rt.schema, system.config.k_tables, system.config.k_columns))
                .collect();
            // Per-question reference: the full sweep.
            let reference: Vec<Vec<String>> = slice
                .iter()
                .zip(&schemas)
                .map(|(q, s)| {
                    let mut rng = system.question_rng(db, q);
                    full_gen.generate(q, s, &rt.values, cfg, &mut rng)
                })
                .collect();
            // Pruned, per question.
            for ((q, s), want) in slice.iter().zip(&schemas).zip(&reference) {
                let mut rng = system.question_rng(db, q);
                let got = pruned_gen.generate(q, s, &rt.values, cfg, &mut rng);
                prop_assert_eq!(&got, want, "pruned generate diverged on {:?}", q);
            }
            // Pruned, through the batched path.
            let items: Vec<BatchItem<'_>> = slice
                .iter()
                .zip(&schemas)
                .map(|(q, s)| BatchItem { question: q, prompt_schema: s })
                .collect();
            let mut rngs: Vec<_> = slice.iter().map(|q| system.question_rng(db, q)).collect();
            let batched = pruned_gen.generate_batch(&items, &rt.values, cfg, &mut rngs);
            for ((got, _), want) in batched.iter().zip(&reference) {
                prop_assert_eq!(got, want, "pruned generate_batch diverged at size {}", size);
            }
        }
    }

    /// The cached answer path (cold fill + warm hit) and the uncached
    /// path agree byte for byte — the index sits under both.
    #[test]
    fn cached_and_uncached_answers_agree(db in any_db(), offset in 0usize..512) {
        let Ctx { system, .. } = ctx();
        let qs = dev_questions(db);
        let slice: Vec<&str> =
            qs.iter().cycle().skip(offset % qs.len()).take(8).copied().collect();
        let uncached = system.answer_batch_with_metrics(db, &slice, None);
        let cache = AnswerCache::unbounded();
        let cold = system.answer_batch_cached(&cache, db, &slice, None);
        let warm = system.answer_batch_cached(&cache, db, &slice, None);
        let cold: Vec<&str> = cold.iter().map(|a| &**a).collect();
        let warm: Vec<&str> = warm.iter().map(|a| &**a).collect();
        let uncached: Vec<&str> = uncached.iter().map(String::as_str).collect();
        prop_assert_eq!(&cold, &uncached, "cold cached pass diverged from uncached");
        prop_assert_eq!(&warm, &uncached, "warm cached pass diverged from uncached");
    }
}

/// Adversarial: a question sharing no token or trigram with any indexed
/// retrieval text has an empty candidate set. The generator must fall
/// back to the full sweep — the emitted SQL matches the unindexed
/// generator, and is *not* whatever prototype 0 would produce.
#[test]
fn empty_posting_lists_fall_back_to_the_full_sweep() {
    let Ctx { system, .. } = ctx();
    // No token of length ≥ 1 below appears in any skeleton or training
    // question; every trigram probe misses too.
    let adversarial = "zq xv qqj vxk zzx";
    let mut nonzero_argmax = false;
    for db in DbId::ALL {
        let rt = system.runtime(db);
        let terms = rt.proto_index.terms(adversarial);
        let cands = rt.proto_index.candidates(&terms);
        assert!(
            cands.is_empty(),
            "{db}: adversarial question matched posting lists: {cands:?}"
        );
        let emb = system.base.embed(adversarial, Some(&rt.plugin.lora));
        let full = rt.matrix.ranked(&emb);
        nonzero_argmax |= full[0].0 != 0;
        // Empty candidates can never certify.
        assert!(rt.matrix.ranked_pruned(&emb, &cands).is_none());

        let linked = system.linker.link_batch(&[adversarial], &rt.link_matrix);
        let schema =
            linked[0].project(&rt.schema, system.config.k_tables, system.config.k_columns);
        let cfg = gen_config(system);
        let full_gen =
            SqlGenerator::with_matrix(&system.base, &rt.plugin, &rt.matrix, system.profile);
        let pruned_gen =
            SqlGenerator::with_matrix(&system.base, &rt.plugin, &rt.matrix, system.profile)
                .with_index(&rt.proto_index);
        let (_, fallback_before) = rt.proto_index.stats.snapshot();
        let mut rng = system.question_rng(db, adversarial);
        let want = full_gen.generate(adversarial, &schema, &rt.values, cfg, &mut rng);
        let mut rng = system.question_rng(db, adversarial);
        let got = pruned_gen.generate(adversarial, &schema, &rt.values, cfg, &mut rng);
        assert_eq!(got, want, "{db}: empty-candidate fallback diverged from the full sweep");
        let (_, fallback_after) = rt.proto_index.stats.snapshot();
        assert!(
            fallback_after > fallback_before,
            "{db}: the empty-candidate path must record a full-sweep fallback"
        );
    }
    // Sanity that the equality above is not vacuous: for at least one
    // database the true argmax is not prototype 0, so an index that
    // "returned prototype 0" on empty candidates would have failed.
    assert!(nonzero_argmax, "adversarial argmax was 0 everywhere — pick a different string");
}
