//! Property tests for the serving layer: the configuration fingerprint
//! that keys the answer cache, and the cache's own bookkeeping.
//!
//! The safety claim the cache rests on is that *no false hit is
//! possible*: any single configuration-knob mutation must change the
//! fingerprint, and the cache must never return an entry stored under a
//! different fingerprint, database, or question. These properties pin
//! that down over arbitrary configuration draws — no trained system
//! needed, the fingerprint is a pure function of the knobs.

use augment::AugmentationFlags;
use bull::{DbId, Lang};
use crossenc::InferenceMode;
use finsql_core::cache::{AnswerCache, CachePolicy, FingerprintBuilder};
use finsql_core::pipeline::{fingerprint_config, fingerprint_profile, fingerprint_runtime};
use finsql_core::{CalibrationConfig, FinSqlConfig};
use proptest::prelude::*;
use simllm::noise::NoiseRates;
use simllm::BaseModelProfile;
use sqlengine::DataEpoch;

fn lang() -> impl Strategy<Value = Lang> {
    prop_oneof![Just(Lang::En), Just(Lang::Cn)]
}

fn link_mode() -> impl Strategy<Value = InferenceMode> {
    prop_oneof![Just(InferenceMode::Serial), Just(InferenceMode::Parallel)]
}

fn cache_policy() -> impl Strategy<Value = CachePolicy> {
    prop_oneof![Just(CachePolicy::Lru), Just(CachePolicy::SlruTinyLfu)]
}

fn config() -> impl Strategy<Value = FinSqlConfig> {
    (
        (lang(), any::<bool>(), any::<bool>(), any::<bool>(), 0usize..10, 0u64..1000),
        (any::<bool>(), any::<bool>(), any::<bool>()),
        (1usize..10, 1usize..16, 1usize..9, 0.0f64..2.0, 0u64..(u64::MAX / 2)),
        link_mode(),
        cache_policy(),
    )
        .prop_map(
            |(
                (lang, cot, synonyms, skeleton, synonyms_per_question, aug_seed),
                (repair, self_consistency, alignment),
                (k_tables, k_columns, n_candidates, temperature, seed),
                link_mode,
                cache_policy,
            )| FinSqlConfig {
                lang,
                augmentation: AugmentationFlags {
                    cot,
                    synonyms,
                    skeleton,
                    synonyms_per_question,
                    seed: aug_seed,
                },
                calibration: CalibrationConfig { repair, self_consistency, alignment },
                k_tables,
                k_columns,
                n_candidates,
                temperature,
                seed,
                link_mode,
                cache_policy,
            },
        )
}

fn fp(config: &FinSqlConfig) -> u64 {
    fingerprint_config(FingerprintBuilder::new("finsql"), config).finish().0
}

/// Every answer-affecting knob of [`FinSqlConfig`], mutable one at a
/// time. Keep in sync with `fingerprint_config` — a knob hashed there
/// must be mutated here, or the no-false-hit property has a blind spot.
const KNOBS: usize = 14;

fn mutate_knob(config: &FinSqlConfig, knob: usize) -> FinSqlConfig {
    let mut c = *config;
    match knob {
        0 => c.lang = if c.lang == Lang::En { Lang::Cn } else { Lang::En },
        1 => c.augmentation.cot = !c.augmentation.cot,
        2 => c.augmentation.synonyms = !c.augmentation.synonyms,
        3 => c.augmentation.skeleton = !c.augmentation.skeleton,
        4 => c.augmentation.synonyms_per_question += 1,
        5 => c.augmentation.seed += 1,
        6 => c.calibration.repair = !c.calibration.repair,
        7 => c.calibration.self_consistency = !c.calibration.self_consistency,
        8 => c.calibration.alignment = !c.calibration.alignment,
        9 => c.k_tables += 1,
        10 => c.k_columns += 1,
        11 => c.n_candidates += 1,
        12 => c.temperature += 0.125,
        13 => c.seed += 1,
        _ => unreachable!("knob index out of range"),
    }
    c
}

fn profile_fp(profile: &BaseModelProfile) -> u64 {
    fingerprint_profile(FingerprintBuilder::new("profile"), profile).finish().0
}

fn db_id() -> impl Strategy<Value = DbId> {
    prop_oneof![Just(DbId::Fund), Just(DbId::Stock), Just(DbId::Macro)]
}

/// The full three-runtime chain [`FinSql::config_fingerprint`] folds
/// after the config and profile slots, with the plugin identity slots
/// held fixed and only the per-database epochs varying.
fn chain_fp(epochs: [u64; 3]) -> u64 {
    let mut b = FingerprintBuilder::new("finsql");
    for (db, epoch) in DbId::ALL.into_iter().zip(epochs) {
        b = fingerprint_runtime(b, db, "plugin", 400, 24, true, DataEpoch(epoch));
    }
    b.finish().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The fingerprint is a pure function of the knobs.
    #[test]
    fn fingerprint_is_deterministic(c in config()) {
        prop_assert_eq!(fp(&c), fp(&c));
    }

    /// `link_mode` is deliberately *not* an answer-affecting knob: every
    /// inference mode produces bit-identical rankings, so toggling it
    /// must keep cached answers valid — the fingerprint must not move.
    #[test]
    fn link_mode_does_not_move_the_fingerprint(c in config()) {
        let mut flipped = c;
        flipped.link_mode = match c.link_mode {
            InferenceMode::Serial => InferenceMode::Parallel,
            InferenceMode::Parallel => InferenceMode::Serial,
        };
        prop_assert_eq!(fp(&c), fp(&flipped));
    }

    /// `cache_policy` is deliberately *not* an answer-affecting knob
    /// either: the eviction/admission policy can change only *which*
    /// entries stay resident — hit or miss — never an answer's bytes, so
    /// flipping it must keep every cached answer valid.
    #[test]
    fn cache_policy_does_not_move_the_fingerprint(c in config()) {
        let mut flipped = c;
        flipped.cache_policy = match c.cache_policy {
            CachePolicy::Lru => CachePolicy::SlruTinyLfu,
            CachePolicy::SlruTinyLfu => CachePolicy::Lru,
        };
        prop_assert_eq!(fp(&c), fp(&flipped));
    }

    /// Any single knob mutation changes the fingerprint — the property
    /// that makes a stale-config cache hit structurally impossible.
    #[test]
    fn single_knob_mutation_changes_fingerprint(c in config(), knob in 0usize..KNOBS) {
        let mutated = mutate_knob(&c, knob);
        prop_assert!(
            fp(&c) != fp(&mutated),
            "knob {} mutated without changing the fingerprint",
            knob
        );
    }

    /// Mutating two *different* knobs cannot cancel out either: both
    /// mutants differ from the original and from each other.
    #[test]
    fn distinct_knob_mutations_stay_distinct(
        c in config(),
        a in 0usize..KNOBS,
        offset in 1usize..KNOBS,
    ) {
        let b = (a + offset) % KNOBS;
        let ma = mutate_knob(&c, a);
        let mb = mutate_knob(&c, b);
        prop_assert!(fp(&ma) != fp(&c));
        prop_assert!(fp(&mb) != fp(&c));
        prop_assert!(fp(&ma) != fp(&mb), "knobs {} and {} collided", a, b);
    }

    /// Every behavioural field of the base-model profile participates.
    #[test]
    fn profile_fields_all_feed_the_fingerprint(
        slot in 0.0f64..1.0,
        join in 0.0f64..1.0,
        slip in 0.0f64..1.0,
        field in 0usize..4,
    ) {
        let base = BaseModelProfile {
            name: "prop-model",
            slot_skill: slot,
            join_skill: join,
            skel_slip: slip,
            noise: NoiseRates { typo: 0.01, double_eq: 0.01, drop_on: 0.01, misalign: 0.01, value: 0.01 },
        };
        let mut mutated = base;
        match field {
            0 => mutated.slot_skill += 0.125,
            1 => mutated.join_skill += 0.125,
            2 => mutated.skel_slip += 0.125,
            3 => mutated.noise.typo += 0.125,
            _ => unreachable!(),
        }
        prop_assert!(profile_fp(&base) != profile_fp(&mutated));
        let renamed = BaseModelProfile { name: "prop-model-b", ..base };
        prop_assert!(profile_fp(&base) != profile_fp(&renamed));
    }

    /// The cache returns exactly what was stored under a key and never
    /// serves across fingerprints, databases, or questions.
    #[test]
    fn cache_never_crosses_keys(
        c in config(),
        knob in 0usize..KNOBS,
        question in "[a-z ]{1,24}",
        answer in "SELECT [a-z]{1,12}",
    ) {
        use finsql_core::ConfigFingerprint;
        let cache = AnswerCache::unbounded();
        let key = ConfigFingerprint(fp(&c));
        let other = ConfigFingerprint(fp(&mutate_knob(&c, knob)));
        cache.insert(DbId::Fund, &question, key, answer.clone());
        let got = cache.get(DbId::Fund, &question, key);
        prop_assert_eq!(got.as_deref(), Some(answer.as_str()));
        prop_assert_eq!(cache.get(DbId::Fund, &question, other), None);
        prop_assert_eq!(cache.get(DbId::Stock, &question, key), None);
        let longer = format!("{question}?");
        prop_assert_eq!(cache.get(DbId::Fund, &longer, key), None);
    }

    /// Bumping a runtime's [`DataEpoch`] always moves its fingerprint
    /// contribution, whatever the surrounding plugin identity — the
    /// data-state half of the no-stale-hit property.
    #[test]
    fn epoch_bump_always_moves_the_fingerprint(
        db in db_id(),
        name in "[a-z]{1,12}",
        n_examples in 0usize..512,
        n_prototypes in 0usize..64,
        cot in any::<bool>(),
        epoch in 0u64..(u64::MAX / 2),
        bump in 1u64..1_000,
    ) {
        let at = |e: u64| {
            fingerprint_runtime(
                FingerprintBuilder::new("rt"), db, &name, n_examples, n_prototypes, cot,
                DataEpoch(e),
            )
            .finish()
            .0
        };
        prop_assert_eq!(at(epoch), at(epoch), "epoch slot must be deterministic");
        prop_assert!(
            at(epoch) != at(epoch + bump),
            "epoch bump {} -> {} left the fingerprint unchanged",
            epoch,
            epoch + bump
        );
    }

    /// In the chained three-runtime fingerprint, bumping *any one*
    /// database's epoch moves the final digest — an append to one
    /// database invalidates every cached answer, including the other
    /// databases' (the cache key is the whole-system fingerprint).
    #[test]
    fn epoch_bump_in_any_runtime_moves_the_chained_fingerprint(
        es in (0u64..10_000, 0u64..10_000, 0u64..10_000),
        which in 0usize..3,
        bump in 1u64..100,
    ) {
        let epochs = [es.0, es.1, es.2];
        let mut bumped = epochs;
        bumped[which] += bump;
        prop_assert!(
            chain_fp(epochs) != chain_fp(bumped),
            "bumping runtime {}'s epoch did not move the chained fingerprint",
            which
        );
    }

    /// The cache mechanics of the same claim, counter-checked: an entry
    /// stored pre-bump is unreachable post-bump (a recorded miss, zero
    /// hits), while the pre-bump key itself still serves.
    #[test]
    fn no_pre_bump_cache_entry_is_served_post_bump(
        es in (0u64..10_000, 0u64..10_000, 0u64..10_000),
        which in 0usize..3,
        question in "[a-z ]{1,24}",
        answer in "SELECT [a-z]{1,12}",
    ) {
        use finsql_core::ConfigFingerprint;
        let epochs = [es.0, es.1, es.2];
        let mut bumped = epochs;
        bumped[which] += 1;
        let pre = ConfigFingerprint(chain_fp(epochs));
        let post = ConfigFingerprint(chain_fp(bumped));
        let cache = AnswerCache::unbounded();
        cache.insert(DbId::Fund, &question, pre, answer.clone());
        prop_assert_eq!(cache.get(DbId::Fund, &question, post), None);
        let stats = cache.stats();
        prop_assert_eq!(stats.hits, 0u64, "post-bump lookup must not hit the pre-bump entry");
        prop_assert_eq!(stats.misses, 1u64);
        let got = cache.get(DbId::Fund, &question, pre);
        prop_assert_eq!(got.as_deref(), Some(answer.as_str()));
        prop_assert_eq!(cache.stats().hits, 1u64, "the pre-bump key itself still serves");
    }

    /// Under any capacity cap, policy, and insertion sequence, residency
    /// never exceeds the cap's shard-rounded bound and the counters
    /// balance: entries == inserts - evictions (rejected candidates are
    /// counted separately, as `admission_rejected`, never as inserts).
    #[test]
    fn capped_cache_respects_capacity(
        cap in 1usize..40,
        policy in cache_policy(),
        keys in proptest::collection::vec("[a-z]{1,12}", 1..80),
    ) {
        use finsql_core::ConfigFingerprint;
        let cache = AnswerCache::with_policy(cap, policy);
        let mut rejected = 0u64;
        for k in &keys {
            let outcome = cache.insert(DbId::Macro, k, ConfigFingerprint(7), k.to_uppercase());
            if !outcome.admitted {
                rejected += 1;
            }
        }
        let stats = cache.stats();
        // Capacity is enforced per shard (cap/16 rounded up each).
        let bound = cap.div_ceil(16) * 16;
        prop_assert!(stats.entries <= bound, "{} entries over bound {}", stats.entries, bound);
        prop_assert_eq!(stats.entries as u64, stats.inserts - stats.evictions);
        // The outcome the caller saw matches the counter the stats report
        // (duplicate keys refresh in place: admitted, but not an insert).
        prop_assert_eq!(stats.admission_rejected, rejected);
        prop_assert!(stats.inserts + rejected <= keys.len() as u64);
        if policy == CachePolicy::Lru {
            prop_assert_eq!(stats.admission_rejected, 0u64, "plain LRU never rejects");
        }
        // Whatever is resident is correct.
        for k in &keys {
            if let Some(v) = cache.get(DbId::Macro, k, ConfigFingerprint(7)) {
                prop_assert_eq!(&*v, k.to_uppercase());
            }
        }
    }
}
